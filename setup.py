"""Setuptools shim.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs require, so we keep a classic ``setup.py`` to allow
``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
