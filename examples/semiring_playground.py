"""Scenario: graph algorithms as sparse linear algebra (GraphBLAS style).

Demonstrates the paper's Section III-A directly: the same masked
matrix-vector products LAGraph builds its kernels from, written by hand.

* a push BFS level is literally ``q'<!pi> = q' * A`` over ``any_secondi``;
* single-source shortest paths relax over the ``min_plus`` tropical
  semiring;
* triangle counting is the masked product ``C<L> = L * U'`` over
  ``plus_pair``;
* a custom semiring (max_times, a "widest path" variant) shows the
  engine is not limited to the built-ins.

Usage::

    python examples/semiring_playground.py
"""

from __future__ import annotations

import numpy as np

from repro import build_graph, weighted_version
from repro.semiring import (
    ANY_SECONDI,
    MAX,
    MIN_PLUS,
    PLUS_PAIR,
    TIMES_OP,
    Matrix,
    Vector,
    mxm_masked,
    reduce_matrix,
    semiring,
    vxm,
)


def bfs_by_hand(graph, source: int) -> np.ndarray:
    """The LAGraph BFS kernel, written out step by step."""
    n = graph.num_vertices
    adjacency = Matrix.from_graph(graph)
    pi = Vector.from_entries(n, np.array([source]), np.array([float(source)]))
    q = pi.dup()
    level = 0
    while q.nvals:
        level += 1
        # THE paper's expression: q'<!pi> = q' * A  (any_secondi semiring).
        q = vxm(q, adjacency, ANY_SECONDI, mask=pi, complement=True)
        pi.assign_vector(q)  # pi<q> = q
        print(f"  level {level}: discovered {q.nvals} vertices")
    parents = np.full(n, -1, dtype=np.int64)
    idx, vals = pi.entries()
    parents[idx] = vals.astype(np.int64)
    return parents


def main() -> None:
    graph = build_graph("kron", scale=9)
    source = int(np.flatnonzero(graph.out_degrees > 0)[0])

    print("push BFS as masked vector-matrix products:")
    parents = bfs_by_hand(graph, source)
    print(f"  -> reached {int((parents >= 0).sum())} of {graph.num_vertices}\n")

    print("SSSP relaxation over the min-plus tropical semiring:")
    weighted = weighted_version(graph)
    adjacency = Matrix.from_graph(weighted, use_weights=True)
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = Vector.from_entries(n, np.array([source]), np.array([0.0]))
    sweeps = 0
    while frontier.nvals:
        sweeps += 1
        relaxed = vxm(frontier, adjacency, MIN_PLUS)
        idx, vals = relaxed.entries()
        improved = vals < dist[idx]
        dist[idx[improved]] = vals[improved]
        frontier = Vector.from_entries(n, idx[improved], vals[improved])
    print(f"  converged after {sweeps} min-plus sweeps; "
          f"max distance {np.nanmax(dist[np.isfinite(dist)]):.0f}\n")

    print("triangle counting as  L = tril(A); U = triu(A); C<L> = L*U'; sum(C):")
    undirected = Matrix.from_graph(graph.to_undirected())
    lower = undirected.select_lower_triangle()
    upper = undirected.select_upper_triangle()
    closed = mxm_masked(lower, upper.T, PLUS_PAIR, mask=lower)
    print(f"  -> {int(reduce_matrix(closed))} triangles\n")

    print("custom semiring (max_times - widest multiplicative path step):")
    max_times = semiring(MAX, TIMES_OP)
    reliability = Vector.from_entries(n, np.array([source]), np.array([1.0]))
    step = vxm(reliability, adjacency, max_times)
    print(f"  one step reaches {step.nvals} vertices; "
          f"best single-hop weight {step.reduce(MAX):.0f}")


if __name__ == "__main__":
    main()
