"""Scenario: route planning and bottleneck analysis on a road network.

This exercises the workload class the paper's Road graph represents:
high-diameter, bounded-degree planar topology where per-round overheads
dominate.  The script

1. computes service areas (SSSP travel times) from a handful of depots;
2. finds structurally critical junctions with betweenness centrality;
3. checks network connectivity (is every address reachable?);
4. compares a bulk-synchronous and an asynchronous framework on the same
   queries — the paper's headline Road effect.

Usage::

    python examples/road_network_analysis.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_graph, weighted_version
from repro.core import counters
from repro.core.spec import DELTA_BY_GRAPH, SourcePicker
from repro.frameworks import RunContext, get


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    graph = build_graph("road", scale=scale)
    network = weighted_version(graph)  # weights = travel times
    print(f"road network: {graph.num_vertices} junctions, {graph.num_edges} road segments")

    ctx = RunContext(graph_name="road", delta=DELTA_BY_GRAPH["road"])
    picker = SourcePicker(network)
    depots = picker.next_sources(3)
    gap = get("gap")

    # 1. Service areas: travel time from each depot.
    for depot in depots:
        start = time.perf_counter()
        times = gap.sssp(network, int(depot), ctx)
        elapsed = time.perf_counter() - start
        reachable = np.isfinite(times)
        print(
            f"  depot {int(depot):>6}: serves {int(reachable.sum())} junctions, "
            f"median travel time {np.median(times[reachable]):.0f}, "
            f"computed in {elapsed * 1e3:.1f} ms"
        )

    # 2. Critical junctions: betweenness from sampled roots.
    roots = picker.next_sources(4)
    centrality = gap.betweenness(graph, roots, ctx)
    top = np.argsort(centrality)[::-1][:5]
    print("  most critical junctions (approx. betweenness):",
          ", ".join(f"{int(v)} ({centrality[v]:.0f})" for v in top))

    # 3. Connectivity: stranded junctions.
    components = gap.connected_components(graph, ctx)
    labels, sizes = np.unique(components, return_counts=True)
    stranded = graph.num_vertices - int(sizes.max())
    print(f"  connectivity: {labels.size} components; {stranded} junctions "
          f"outside the main network")

    # 4. Framework contrast on the high-diameter topology.
    print("\nscheduling comparison on this high-diameter network (BFS):")
    source = int(depots[0])
    for fw_name in ("gap", "galois", "graphit", "suitesparse"):
        framework = get(fw_name)
        with counters.counting() as work:
            start = time.perf_counter()
            framework.bfs(graph, source, ctx)
            elapsed = time.perf_counter() - start
        style = "async worklist" if (fw_name == "galois") else "level-synchronous"
        print(
            f"  {fw_name:<12} {elapsed * 1e3:7.2f} ms  rounds={work.rounds:<5} "
            f"edges={work.edges_examined:<8} ({style})"
        )
    print("\nNote the round counts: Road's diameter forces hundreds of tiny "
          "frontiers, the effect Section V-A of the paper attributes Road's "
          "difficulty to.")

    # Frontier trace: the workload-characterization view of the same fact.
    from repro.core.workload import sparkline, trace_bfs

    trace = trace_bfs(graph, source)
    print(
        f"\nfrontier trace from junction {source}: {trace.num_rounds} rounds, "
        f"peak frontier {trace.peak_frontier} "
        f"({trace.pull_rounds} would run bottom-up)"
    )
    print("  " + sparkline(trace.frontier_sizes()))


if __name__ == "__main__":
    main()
