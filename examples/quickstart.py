"""Quickstart: run all six GAP kernels on one graph with one framework.

Usage::

    python examples/quickstart.py [framework] [graph] [scale]

Defaults: the GAP reference implementations on the Kronecker graph at
2**12 vertices.  Outputs one line per kernel with its result summary,
wall-clock time, and work counters.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_graph, weighted_version
from repro.core import counters
from repro.core.spec import DELTA_BY_GRAPH, SourcePicker
from repro.frameworks import RunContext, get


def main() -> None:
    fw_name = sys.argv[1] if len(sys.argv) > 1 else "gap"
    graph_name = sys.argv[2] if len(sys.argv) > 2 else "kron"
    scale = int(sys.argv[3]) if len(sys.argv) > 3 else 12

    framework = get(fw_name)
    print(f"framework: {framework.attributes.full_name}")
    print(f"graph: {graph_name} at 2**{scale} vertices")

    graph = build_graph(graph_name, scale=scale)
    weighted = weighted_version(graph)
    undirected = graph.to_undirected() if graph.directed else graph
    picker = SourcePicker(graph)
    source = picker.next_source()
    roots = picker.next_sources(4)
    ctx = RunContext(graph_name=graph_name, delta=DELTA_BY_GRAPH.get(graph_name, 16))

    def timed(label: str, fn, describe) -> None:
        with counters.counting() as work:
            start = time.perf_counter()
            output = fn()
            elapsed = time.perf_counter() - start
        print(
            f"  {label:<5} {elapsed * 1e3:8.2f} ms   {describe(output):<40} "
            f"edges={work.edges_examined} rounds={work.rounds} "
            f"iters={work.iterations}"
        )

    timed(
        "bfs",
        lambda: framework.bfs(graph, source, ctx),
        lambda p: f"reached {int((p >= 0).sum())} vertices from {source}",
    )
    timed(
        "sssp",
        lambda: framework.sssp(weighted, source, ctx),
        lambda d: f"max finite distance {np.nanmax(d[np.isfinite(d)]):.0f}",
    )
    timed(
        "pr",
        lambda: framework.pagerank(graph, ctx),
        lambda s: f"top score {s.max():.2e} at vertex {int(s.argmax())}",
    )
    timed(
        "cc",
        lambda: framework.connected_components(graph, ctx),
        lambda c: f"{len(np.unique(c))} weakly connected components",
    )
    timed(
        "bc",
        lambda: framework.betweenness(graph, roots, ctx),
        lambda s: f"most central vertex {int(s.argmax())}",
    )
    timed(
        "tc",
        lambda: framework.triangle_count(undirected, ctx),
        lambda t: f"{t} triangles",
    )


if __name__ == "__main__":
    main()
