"""Scenario: structural analysis of a web crawl.

Exercises the paper's Web workload class (power-law with locality, the
topology GraphIt's cache discussion singles out) together with the
beyond-GAP extension kernels that LDBC Graphalytics adds:

1. extended topology statistics (reciprocity, assortativity, clustering)
   across the whole corpus — the quantities behind Table I's classes;
2. site communities via CDLP (community detection by label propagation);
3. page neighborhood density via LCC (local clustering coefficient);
4. hub identification via PageRank on the crawl.

Usage::

    python examples/web_structure_analysis.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_corpus, build_graph
from repro.extensions import cdlp, lcc
from repro.frameworks import get
from repro.graphs import summarize


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13

    print("extended topology statistics across the corpus:")
    for name, graph in build_corpus(scale=min(scale, 12)).items():
        row = summarize(graph, name).as_row()
        print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

    web = build_graph("web", scale=scale)
    print(f"\nweb crawl: {web.num_vertices} pages, {web.num_edges} links")

    # 2. Communities.
    start = time.perf_counter()
    communities = cdlp(web, max_iterations=10)
    elapsed = time.perf_counter() - start
    labels, sizes = np.unique(communities, return_counts=True)
    big = np.sort(sizes)[::-1][:5]
    print(
        f"communities (CDLP, {elapsed * 1e3:.1f} ms): {labels.size} total; "
        f"largest sites: {', '.join(str(int(s)) for s in big)} pages"
    )

    # 3. Neighborhood density.
    start = time.perf_counter()
    coefficients = lcc(web)
    elapsed = time.perf_counter() - start
    dense = int(np.argmax(coefficients))
    print(
        f"local clustering (LCC, {elapsed * 1e3:.1f} ms): mean "
        f"{coefficients.mean():.4f}; densest neighborhood at page {dense} "
        f"({coefficients[dense]:.2f})"
    )

    # 4. Hubs.
    scores = get("gap").pagerank(web)
    hubs = np.argsort(scores)[::-1][:5]
    print(
        "top pages by PageRank: "
        + ", ".join(f"{int(p)} ({scores[p]:.1e})" for p in hubs)
    )
    # Hub pages should sit in large communities.
    hub_communities = communities[hubs]
    community_size = dict(zip(labels.tolist(), sizes.tolist()))
    print(
        "  their community sizes: "
        + ", ".join(str(community_size[int(c)]) for c in hub_communities)
    )


if __name__ == "__main__":
    main()
