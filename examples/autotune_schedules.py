"""Scenario: let the autotuner find per-graph GraphIt schedules.

The paper notes GraphIt ships an OpenTuner-based autotuner that "finds
high-performance schedules quickly".  This study runs our miniature of it
on BFS for each corpus graph and compares three schedules per graph:

* the Baseline default (hybrid direction),
* the paper team's hand-picked Optimized schedule,
* the autotuner's pick.

Tuning time is excluded from the reported kernel times, as the Optimized
rule set allows.

Usage::

    python examples/autotune_schedules.py [scale] [budget]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_corpus
from repro.core.spec import SourcePicker
from repro.graphit import baseline_schedule, graphit_bfs, optimized_schedule
from repro.graphitc import autotune


def timed_bfs(graph, source, schedule) -> float:
    """Best-of-3 wall time for one schedule."""
    best = np.inf
    for _ in range(3):
        start = time.perf_counter()
        graphit_bfs(graph, source, schedule)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 12

    for name, graph in build_corpus(scale=scale).items():
        source = SourcePicker(graph).next_source()
        reference = graphit_bfs(graph, source, baseline_schedule("bfs"))

        def run(schedule):
            parents = graphit_bfs(graph, source, schedule)
            assert np.array_equal(parents >= 0, reference >= 0)

        tuning = autotune(run, budget=budget, fixed={"num_segments": 0})
        default_seconds = timed_bfs(graph, source, baseline_schedule("bfs"))
        hand_seconds = timed_bfs(graph, source, optimized_schedule("bfs", name))
        tuned_seconds = timed_bfs(graph, source, tuning.best_schedule)
        choice = tuning.best_schedule
        print(
            f"{name:<8} default {default_seconds * 1e3:6.2f} ms | "
            f"hand-tuned {hand_seconds * 1e3:6.2f} ms | "
            f"autotuned {tuned_seconds * 1e3:6.2f} ms "
            f"({tuning.evaluations} evals -> {choice.direction.value}, "
            f"{choice.frontier.value} frontier, dedup={choice.deduplicate})"
        )


if __name__ == "__main__":
    main()
