"""Regenerate the paper's Tables I-V for this reproduction.

Runs the full benchmark campaign (6 frameworks x 6 kernels x 5 graphs x 2
rule sets, with verification) and prints every table in the paper's
structure.  Results are also saved as JSON for EXPERIMENTS.md.

Usage::

    python examples/report_tables.py [scale] [output.json]

Default scale is the corpus default (2**13 vertices, ~1 minute); pass a
smaller scale for a quick look.
"""

from __future__ import annotations

import sys
import time

from repro.core import BenchmarkSpec, run_suite
from repro.core.comparison import (
    agreement_summary,
    compare_table5,
    framework_rank_correlation,
)
from repro.core.programmability import programmability_table
from repro.core.tables import (
    render,
    stability_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.frameworks import all_frameworks
from repro.generators import DEFAULT_SCALE, GRAPH_NAMES, build_corpus


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SCALE
    output = sys.argv[2] if len(sys.argv) > 2 else None

    corpus = build_corpus(scale=scale)
    print(render(table1_rows(corpus), "Table I: graphs (generated analog vs paper)"))
    print(render(table2_rows(), "Table II: framework attributes"))
    print(render(table3_rows(), "Table III: algorithms per framework"))

    from repro.core.memory import framework_footprints

    footprint_rows = [e.as_row() for e in framework_footprints(corpus["kron"], weighted=True)]
    print(render(footprint_rows,
                 "Graph storage footprint on kron (the paper's 32- vs 64-bit index point)"))

    spec = BenchmarkSpec(scale=scale)
    start = time.time()
    results = run_suite(
        all_frameworks().values(),
        GRAPH_NAMES,
        spec=spec,
        progress=lambda label: print(f"\r  running {label:<50}", end="", flush=True),
    )
    print(f"\rcampaign finished in {time.time() - start:.0f}s"
          f" ({len(results)} cells, all outputs verified)          ")
    if output:
        results.save_json(output)
        print(f"raw results saved to {output}")

    graphs = list(GRAPH_NAMES)
    print(render(table4_rows(results, graphs), "Table IV: fastest times (seconds) and winners"))
    print(render(table5_rows(results, graphs), "Table V: speedup over GAP reference (percent)"))

    print(render(stability_rows(results, graphs),
                 "Timing stability (coefficient of variation across trials)"))

    comparisons = compare_table5(results)
    summary = agreement_summary(comparisons)
    print("Shape agreement with the paper's Table V "
          f"(direction of each cell, parity dead-band):")
    print(f"  overall: {summary['direction_agreement']:.1%} of "
          f"{summary['cells']} cells")
    print("  per kernel:",
          {k: round(v, 2) for k, v in summary["per_kernel"].items()})
    print("  per framework:",
          {k: round(v, 2) for k, v in summary["per_framework"].items()})
    print("  rank correlation (Spearman) per framework:",
          {k: round(v, 2) for k, v in framework_rank_correlation(comparisons).items()})
    print()
    print(render(programmability_table(),
                 "Programmability (logical SLOC per kernel, this reproduction)"))


if __name__ == "__main__":
    main()
