"""Scenario: influence and community structure in a social network.

This exercises the paper's Twitter/Kron workload class: scale-free,
low-diameter graphs where degree skew (celebrity vertices) dominates.
The script

1. ranks influencers with PageRank (and shows Jacobi vs Gauss-Seidel
   convergence behaviour, Section V-D);
2. measures local cohesion with triangle counting, showing the degree-
   relabel heuristic's effect on skewed graphs (Section V-F);
3. sizes the audience reachable from a seed user (BFS with direction
   optimization — the classic scale-free traversal).

Usage::

    python examples/social_network_analysis.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import build_graph
from repro.core import counters
from repro.core.spec import SourcePicker
from repro.frameworks import RunContext, get
from repro.gapbs.tc import triangle_count as gap_tc


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    graph = build_graph("twitter", scale=scale)
    ctx = RunContext(graph_name="twitter")
    print(
        f"social graph: {graph.num_vertices} users, {graph.num_edges} follow "
        f"links, max followers {int(graph.in_degrees.max())}"
    )

    # 1. Influence ranking, two convergence disciplines.
    print("\ninfluence (PageRank), Jacobi vs Gauss-Seidel:")
    for fw_name, discipline in (("gap", "Jacobi"), ("galois", "Gauss-Seidel")):
        framework = get(fw_name)
        with counters.counting() as work:
            start = time.perf_counter()
            scores = framework.pagerank(graph, ctx)
            elapsed = time.perf_counter() - start
        top = np.argsort(scores)[::-1][:3]
        print(
            f"  {discipline:<13} {elapsed * 1e3:7.2f} ms  "
            f"iterations={work.iterations:<3} top users: "
            + ", ".join(f"{int(u)}" for u in top)
        )

    # 2. Cohesion: triangles, with and without the relabel heuristic.
    undirected = graph.to_undirected()
    print("\ncohesion (triangle counting) on the symmetrized graph:")
    for relabel in (True, False):
        with counters.counting() as work:
            start = time.perf_counter()
            triangles = gap_tc(undirected, force_relabel=relabel)
            elapsed = time.perf_counter() - start
        label = "with degree relabel" if relabel else "without relabel"
        print(
            f"  {label:<22} {elapsed * 1e3:8.2f} ms  "
            f"wedges examined={work.edges_examined:>9}  triangles={triangles}"
        )

    # 3. Reach of a seed user.
    seed = int(SourcePicker(graph).next_source())
    with counters.counting() as work:
        parents = get("gap").bfs(graph, seed, ctx)
    audience = int((parents >= 0).sum()) - 1
    print(
        f"\nreach: user {seed} can reach {audience} users "
        f"({100.0 * audience / graph.num_vertices:.1f}% of the network) in "
        f"{work.rounds} hops of spreading; direction optimization switched "
        f"{int(work.extras.get('direction_switches', 0))} time(s)"
    )


if __name__ == "__main__":
    main()
