"""Scenario: the direction-optimization story, traced across the corpus.

Beamer's direction-optimizing BFS — the algorithm every framework in the
paper uses for BFS — wins by switching to bottom-up exactly when the
frontier is huge.  This study makes the mechanism visible per graph:

1. per-round frontier traces with the push/pull window marked;
2. edge work across the alpha switch threshold (pure push vs hybrid);
3. the topology contrast: where the optimization pays off (scale-free
   graphs) and where it cannot (Road's always-tiny frontiers).

Usage::

    python examples/direction_optimization_study.py [scale]
"""

from __future__ import annotations

import sys

from repro import build_corpus
from repro.core.spec import SourcePicker
from repro.core.sweeps import direction_threshold_sweep
from repro.core.workload import sparkline, trace_bfs


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    corpus = build_corpus(scale=scale)

    print("frontier traces (one char per round, height = frontier size):")
    for name, graph in corpus.items():
        source = SourcePicker(graph).next_source()
        trace = trace_bfs(graph, source)
        window = "".join(
            "^" if r.direction == "pull" else "-" for r in trace.rounds
        )
        if len(window) > 60:
            step = len(window) / 60
            window = "".join(window[int(i * step)] for i in range(60))
        print(f"  {name:<8} rounds={trace.num_rounds:<4} "
              f"peak={trace.peak_frontier:<6} pull_rounds={trace.pull_rounds}")
        print(f"           {sparkline(trace.frontier_sizes())}")
        print(f"           {window}   (^ = bottom-up window)")

    print("\nedge work vs alpha (push->pull switch threshold), kron:")
    for row in direction_threshold_sweep(corpus["kron"]):
        label = "pure push" if row["alpha"] == 0 else f"alpha={row['alpha']}"
        print(
            f"  {label:<10} edges={row['edges']:>9}  rounds={row['rounds']:<3}"
            f"  switched={row['switched']}  {row['seconds'] * 1e3:7.2f} ms"
        )

    print("\nedge work vs alpha, road (the optimization has nothing to bite):")
    for row in direction_threshold_sweep(corpus["road"], alphas=(0, 15)):
        label = "pure push" if row["alpha"] == 0 else f"alpha={row['alpha']}"
        print(
            f"  {label:<10} edges={row['edges']:>9}  rounds={row['rounds']:<4}"
            f"  {row['seconds'] * 1e3:7.2f} ms"
        )


if __name__ == "__main__":
    main()
