"""Tests for file-backed dataset ingestion: registry, cache, service.

The identity invariant under test throughout: a dataset is its *bytes*.
Renaming a file must keep hitting every cache (content digest unchanged);
editing a file must miss everywhere (graph cache, memo index, journal
fingerprint) even when the path is unchanged.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core import BenchmarkSpec, run_suite
from repro.core.runner import build_case
from repro.errors import GraphFormatError, ServiceError, UnknownGraphError
from repro.frameworks import Mode, get
from repro.generators import build_graph
from repro.graphs import GraphCache
from repro.graphs.datasets import (
    DatasetInfo,
    dataset_digest,
    dataset_identity,
    graph_identities,
    is_dataset_ref,
    list_datasets,
    load_dataset_graph,
    resolve,
)
from repro.store.cellindex import normalize_cell_key

FIXTURE = Path(__file__).parent / "fixtures" / "demo.mtx"


@pytest.fixture()
def mtx_file(tmp_path) -> Path:
    path = tmp_path / "demo.mtx"
    shutil.copy(FIXTURE, path)
    return path


class TestResolve:
    def test_ref_syntax(self):
        assert is_dataset_ref("file:/x/y.el")
        assert is_dataset_ref("dataset:road-usa")
        assert not is_dataset_ref("road")
        assert not is_dataset_ref("file:")
        assert not is_dataset_ref("dataset:")

    def test_file_ref(self, mtx_file):
        info = resolve(f"file:{mtx_file}")
        assert isinstance(info, DatasetInfo)
        assert info.format == "mtx"
        assert info.name == "demo"
        assert info.size_bytes == mtx_file.stat().st_size
        assert info.identity == dataset_identity(info.digest)
        provenance = info.provenance()
        assert provenance["digest"] == info.digest
        assert provenance["format"] == "mtx"

    def test_load(self, mtx_file):
        graph = resolve(f"file:{mtx_file}").load()
        assert graph.num_vertices == 12
        assert not graph.directed
        assert load_dataset_graph(f"file:{mtx_file}") == graph
        # build_graph delegates refs to the dataset loader.
        assert build_graph(f"file:{mtx_file}") == graph

    def test_missing_file(self, tmp_path):
        with pytest.raises(UnknownGraphError):
            resolve(f"file:{tmp_path / 'nope.mtx'}")

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "graph.csv"
        path.write_text("0,1\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            resolve(f"file:{path}")

    def test_registry_dir(self, mtx_file, tmp_path):
        registry = tmp_path / "registry"
        registry.mkdir()
        shutil.copy(mtx_file, registry / "demo.mtx")
        info = resolve("dataset:demo", dataset_dir=registry)
        assert info.name == "demo"
        assert info.digest == dataset_digest(mtx_file)
        names = [entry.name for entry in list_datasets(dataset_dir=registry)]
        assert names == ["demo"]

    def test_unregistered_name(self, tmp_path):
        registry = tmp_path / "empty"
        registry.mkdir()
        with pytest.raises(UnknownGraphError):
            resolve("dataset:demo", dataset_dir=registry)


class TestDigest:
    def test_rename_keeps_digest(self, mtx_file, tmp_path):
        digest = dataset_digest(mtx_file)
        renamed = tmp_path / "other-name.mtx"
        mtx_file.rename(renamed)
        assert dataset_digest(renamed) == digest

    def test_edit_changes_digest(self, mtx_file):
        before = dataset_digest(mtx_file)
        mtx_file.write_text(
            mtx_file.read_text(encoding="ascii") + "% edited\n", encoding="ascii"
        )
        assert dataset_digest(mtx_file) != before

    def test_graph_identities(self, mtx_file):
        ref = f"file:{mtx_file}"
        identities, provenance = graph_identities(["urand", ref])
        assert identities["urand"] == "urand"
        assert identities[ref] == dataset_identity(dataset_digest(mtx_file))
        assert set(provenance) == {ref}
        assert provenance[ref]["digest"] == dataset_digest(mtx_file)

    def test_normalize_cell_key(self, mtx_file):
        ref = f"file:{mtx_file}"
        _, provenance = graph_identities([ref])
        key = (ref, "baseline", "bfs", "gap")
        normalized = normalize_cell_key(key, provenance)
        assert normalized[0].startswith("file:sha256:")
        assert normalized[1:] == key[1:]
        # Generator names and absent provenance pass through unchanged.
        assert normalize_cell_key(("urand",) + key[1:], provenance)[0] == "urand"
        assert normalize_cell_key(key, None) == key


class TestGraphCacheKeying:
    def test_case_cached_by_digest(self, mtx_file, tmp_path):
        ref = f"file:{mtx_file}"
        cache = GraphCache(tmp_path / "cache")
        spec = BenchmarkSpec(scale=5, trials={"bfs": 1})
        case = build_case(ref, spec, cache)
        digest = dataset_digest(mtx_file)
        assert cache.load_dataset_views(digest, spec.seed) is not None
        # A renamed copy of the same bytes hits the same cache entry.
        renamed = tmp_path / "renamed.mtx"
        shutil.copy(mtx_file, renamed)
        again = build_case(f"file:{renamed}", spec, cache)
        assert again.graph == case.graph
        # Edited bytes key a different entry.
        mtx_file.write_text(
            mtx_file.read_text(encoding="ascii") + "% edited\n", encoding="ascii"
        )
        assert cache.load_dataset_views(dataset_digest(mtx_file), spec.seed) is None

    def test_seed_keys_weights(self, mtx_file, tmp_path):
        cache = GraphCache(tmp_path / "cache")
        ref = f"file:{mtx_file}"
        case0 = build_case(ref, BenchmarkSpec(scale=5, seed=0), cache)
        case1 = build_case(ref, BenchmarkSpec(scale=5, seed=1), cache)
        assert case0.weighted != case1.weighted


class TestRunSuite:
    def test_parallel_campaign_on_file_graph(self, mtx_file, tmp_path):
        ref = f"file:{mtx_file}"
        spec = BenchmarkSpec(scale=5, trials={"bfs": 1, "cc": 1}, jobs=2)
        results = run_suite(
            [get("gap")],
            [ref],
            kernels=["bfs", "cc"],
            modes=[Mode("baseline")],
            spec=spec,
            cache=GraphCache(tmp_path / "cache"),
        )
        assert len(results) == 2
        assert not results.failures()
        provenance = results.meta["datasets"]
        assert provenance[ref]["digest"] == dataset_digest(mtx_file)


@pytest.mark.tier2
class TestServiceIngestion:
    def _service(self, tmp_path):
        from repro.service import BenchmarkService

        return BenchmarkService(
            archive_dir=tmp_path / "archive", cache_dir=tmp_path / "graphs", jobs=1
        )

    def _request(self, ref):
        from repro.service import CampaignRequest

        return CampaignRequest(
            graphs=(ref,),
            kernels=("bfs",),
            frameworks=("gap",),
            modes=("baseline",),
            scale=5,
        )

    @staticmethod
    def _done(events):
        return [e for e in events if e["event"] == "done"][0]

    def test_identical_bytes_memoize_across_submissions(self, mtx_file, tmp_path):
        svc = self._service(tmp_path)
        try:
            ref = f"file:{mtx_file}"
            first = self._done(svc.submit_collect(self._request(ref)))
            assert first["executed"] == 1 and first["hits"] == 0
            second = self._done(svc.submit_collect(self._request(ref)))
            assert second["executed"] == 0 and second["hits"] == 1

            # Same bytes under a new path: content identity still hits.
            renamed = tmp_path / "renamed.mtx"
            shutil.copy(mtx_file, renamed)
            moved = self._done(svc.submit_collect(self._request(f"file:{renamed}")))
            assert moved["executed"] == 0 and moved["hits"] == 1
        finally:
            svc.shutdown()

    def test_edited_file_re_executes(self, mtx_file, tmp_path):
        svc = self._service(tmp_path)
        try:
            ref = f"file:{mtx_file}"
            first = self._done(svc.submit_collect(self._request(ref)))
            assert first["executed"] == 1
            mtx_file.write_text(
                mtx_file.read_text(encoding="ascii") + "% edited\n",
                encoding="ascii",
            )
            edited = self._done(svc.submit_collect(self._request(ref)))
            assert edited["executed"] == 1 and edited["hits"] == 0
        finally:
            svc.shutdown()

    def test_unresolvable_ref_is_structured_error(self, tmp_path):
        svc = self._service(tmp_path)
        try:
            events = svc.submit_collect(
                self._request(f"file:{tmp_path / 'gone.mtx'}")
            )
            assert events[0]["event"] == "error"
            assert "dataset" in events[0]["message"]
        finally:
            svc.shutdown()

    def test_protocol_rejects_non_ref_junk(self):
        from repro.service import CampaignRequest

        with pytest.raises(ServiceError):
            CampaignRequest(
                graphs=("not-a-graph",),
                kernels=("bfs",),
                frameworks=("gap",),
            )


class TestCLI:
    def test_datasets_describe(self, mtx_file, capsys):
        from repro.__main__ import main

        assert main(["datasets", f"file:{mtx_file}"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert dataset_digest(mtx_file)[:16] in out

    def test_datasets_stats(self, mtx_file, capsys):
        from repro.__main__ import main

        assert main(["datasets", f"file:{mtx_file}", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "n=12" in out

    def test_datasets_registry_listing(self, mtx_file, tmp_path, capsys):
        from repro.__main__ import main

        registry = tmp_path / "registry"
        registry.mkdir()
        shutil.copy(mtx_file, registry / "demo.mtx")
        assert main(["datasets", "--dataset-dir", str(registry)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_run_rejects_missing_file(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--graphs",
                    f"file:{tmp_path / 'gone.mtx'}",
                    "--kernels",
                    "bfs",
                    "--frameworks",
                    "gap",
                ]
            )
