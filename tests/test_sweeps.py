"""Tests for the parameter-sweep library API."""

import numpy as np

from repro.core.sweeps import delta_sweep, direction_threshold_sweep, scale_sweep
from repro.frameworks import get


class TestDeltaSweep:
    def test_rows_cover_requested_deltas(self, corpus):
        rows = delta_sweep(corpus["road"], deltas=(8, 128), repeats=1)
        assert [row["delta"] for row in rows] == [8, 128]
        assert all(row["seconds"] > 0 for row in rows)

    def test_small_delta_more_rounds_on_road(self, corpus):
        rows = delta_sweep(corpus["road"], deltas=(4, 1024), repeats=1)
        by_delta = {row["delta"]: row for row in rows}
        assert by_delta[4]["rounds"] > by_delta[1024]["rounds"]

    def test_accepts_preweighted_graph(self, weighted_corpus):
        rows = delta_sweep(weighted_corpus["kron"], deltas=(16,), repeats=1)
        assert rows[0]["edges"] > 0


class TestDirectionSweep:
    def test_pure_push_never_switches(self, corpus):
        # alpha=0 disables the bottom-up switch: pure top-down traversal.
        rows = direction_threshold_sweep(corpus["kron"], alphas=(0,), repeats=1)
        assert rows[0]["switched"] == 0

    def test_hybrid_examines_fewer_edges_than_push(self, corpus):
        rows = direction_threshold_sweep(corpus["kron"], alphas=(0, 15), repeats=1)
        by_alpha = {row["alpha"]: row for row in rows}
        assert by_alpha[15]["edges"] < by_alpha[0]["edges"]

    def test_all_settings_traverse_same_graph(self, corpus):
        # Sanity: the sweep itself must not change reachability.
        graph = corpus["urand"]
        from repro.core.spec import SourcePicker
        from repro.gapbs.bfs import direction_optimizing_bfs

        source = SourcePicker(graph, 0).next_source()
        a = direction_optimizing_bfs(graph, source, alpha=0)
        b = direction_optimizing_bfs(graph, source, alpha=256)
        assert np.array_equal(a >= 0, b >= 0)


class TestScaleSweep:
    def test_rows_grow_with_scale(self):
        gap = get("gap")
        rows = scale_sweep(
            "kron", lambda g: gap.connected_components(g), scales=(8, 10), repeats=1
        )
        assert rows[0]["vertices"] < rows[1]["vertices"]
        assert rows[0]["edges"] < rows[1]["edges"]

    def test_kernel_receives_each_graph(self):
        seen = []
        scale_sweep("urand", lambda g: seen.append(g.num_vertices), scales=(8, 9), repeats=1)
        # repeats=1 means one invocation per scale.
        assert seen == [256, 512]
