"""Tests for repro.semiring.ops (monoids, binary ops, semirings)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.semiring import (
    ANY,
    ANY_SECONDI,
    FIRST,
    FIRSTI,
    MIN,
    MIN_PLUS,
    PAIR,
    PLUS,
    PLUS_PAIR,
    SECOND,
    SECONDI,
    TIMES_OP,
    semiring,
)


class TestBinaryOps:
    def test_first_second(self):
        x = np.array([1.0, 2.0])
        y = np.array([3.0, 4.0])
        assert FIRST.apply(x, y).tolist() == [1.0, 2.0]
        assert SECOND.apply(x, y).tolist() == [3.0, 4.0]

    def test_pair_is_one(self):
        x = np.array([9.0, 9.0])
        assert PAIR.apply(x, x).tolist() == [1, 1]

    def test_times(self):
        assert TIMES_OP.apply(np.array([2.0]), np.array([3.0])).tolist() == [6.0]

    def test_positional_ops(self):
        x = np.array([0.0, 0.0])
        ix = np.array([7, 8])
        iy = np.array([5, 6])
        assert FIRSTI.apply(x, x, ix=ix, iy=iy).tolist() == [7, 8]
        assert SECONDI.apply(x, x, ix=ix, iy=iy).tolist() == [5, 6]

    def test_positional_requires_indices(self):
        with pytest.raises(InvalidValueError):
            SECONDI.apply(np.array([1.0]), np.array([1.0]))

    def test_positional_flag(self):
        assert SECONDI.positional and FIRSTI.positional
        assert not FIRST.positional


class TestMonoids:
    def test_segment_reduce_min(self):
        keys = np.array([2, 1, 2, 1])
        vals = np.array([5.0, 3.0, 1.0, 9.0])
        out_keys, out_vals = MIN.segment_reduce(keys, vals)
        assert out_keys.tolist() == [1, 2]
        assert out_vals.tolist() == [3.0, 1.0]

    def test_segment_reduce_plus(self):
        keys = np.array([0, 0, 1])
        vals = np.array([1.0, 2.0, 4.0])
        _, out_vals = PLUS.segment_reduce(keys, vals)
        assert out_vals.tolist() == [3.0, 4.0]

    def test_segment_reduce_any_takes_first(self):
        keys = np.array([3, 3, 3])
        vals = np.array([7.0, 8.0, 9.0])
        out_keys, out_vals = ANY.segment_reduce(keys, vals)
        assert out_keys.tolist() == [3]
        assert out_vals[0] == 7.0

    def test_segment_reduce_empty(self):
        keys = np.array([], dtype=np.int64)
        vals = np.array([])
        out_keys, out_vals = PLUS.segment_reduce(keys, vals)
        assert out_keys.size == 0 and out_vals.size == 0

    def test_accumulate_into_min(self):
        target = np.array([10.0, 10.0])
        MIN.accumulate_into(target, np.array([0, 0, 1]), np.array([3.0, 5.0, 2.0]))
        assert target.tolist() == [3.0, 2.0]

    def test_identity_values(self):
        assert MIN.identity == np.inf
        assert PLUS.identity == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(-100, 100)), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_reduce_matches_python(self, items):
        keys = np.array([k for k, _ in items], dtype=np.int64)
        vals = np.array([v for _, v in items])
        out_keys, out_vals = MIN.segment_reduce(keys, vals)
        expected = {}
        for k, v in items:
            expected[k] = min(expected.get(k, np.inf), v)
        assert out_keys.tolist() == sorted(expected)
        for k, v in zip(out_keys.tolist(), out_vals.tolist()):
            assert v == expected[k]


class TestSemirings:
    def test_names(self):
        assert MIN_PLUS.name == "min_plus"
        assert ANY_SECONDI.name == "any_secondi"
        assert PLUS_PAIR.name == "plus_pair"

    def test_constructor(self):
        sr = semiring(MIN, SECOND)
        assert sr.add is MIN and sr.multiply is SECOND
