"""Tests for the injectable I/O fault shim (:mod:`repro.resilience.iofaults`)."""

from __future__ import annotations

import errno
import json

import pytest

from repro.resilience.iofaults import (
    IOFaultSpec,
    clear_io_plan,
    fired_io_faults,
    install_io_plan,
    io_faults,
    parse_io_plan,
    shim_fsync,
    shim_replace,
    shim_write,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_io_plan()
    yield
    clear_io_plan()


class TestSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown I/O fault kind"):
            IOFaultSpec("disk-melts")

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="unknown I/O operation"):
            IOFaultSpec("enospc", operation="mmap")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            IOFaultSpec("enospc", count=-1)

    def test_kind_restricts_operations(self):
        # fsync-fail can never fire on a write; torn-write never on fsync.
        assert not IOFaultSpec("fsync-fail").applies_to("write", "x")
        assert IOFaultSpec("fsync-fail").applies_to("fsync", "x")
        assert not IOFaultSpec("torn-write").applies_to("fsync", "x")
        assert IOFaultSpec("enospc").applies_to("replace", "x")

    def test_path_substring_match(self):
        spec = IOFaultSpec("enospc", path="cell_index")
        assert spec.applies_to("write", "/data/archive/cell_index.jsonl")
        assert not spec.applies_to("write", "/data/archive/runs/manifest.json")

    def test_parse_round_trips_as_dict(self):
        plan = parse_io_plan(
            '[{"kind": "torn-write", "path": "journal", "count": 3},'
            ' {"kind": "enospc", "repeat": true}]'
        )
        assert plan[0] == IOFaultSpec("torn-write", path="journal", count=3)
        assert plan[1].repeat
        assert parse_io_plan(json.dumps([s.as_dict() for s in plan])) == plan

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError, match="JSON list"):
            parse_io_plan('{"kind": "enospc"}')
        with pytest.raises(ValueError, match="needs at least a 'kind'"):
            parse_io_plan('[{"path": "x"}]')


class TestCoordinates:
    def test_counted_write_fires_exactly_once(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("enospc", count=2)])
        with path.open("wb") as stream:
            shim_write(stream, b"a", path)  # call 0
            shim_write(stream, b"b", path)  # call 1
            with pytest.raises(OSError) as exc:
                shim_write(stream, b"c", path)  # call 2: fires
            assert exc.value.errno == errno.ENOSPC
            shim_write(stream, b"d", path)  # call 3: past the coordinate
        assert path.read_bytes() == b"abd"
        assert len(fired_io_faults()) == 1

    def test_repeat_keeps_firing(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("enospc", count=1, repeat=True)])
        with path.open("wb") as stream:
            shim_write(stream, b"a", path)
            for _ in range(3):
                with pytest.raises(OSError):
                    shim_write(stream, b"x", path)
        assert path.read_bytes() == b"a"
        assert len(fired_io_faults()) == 3

    def test_counters_are_per_fault_slot(self, tmp_path):
        # Two faults aimed at different files advance independently.
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        install_io_plan(
            [IOFaultSpec("enospc", path="a.bin"), IOFaultSpec("enospc", path="b.bin", count=1)]
        )
        with a.open("wb") as stream:
            with pytest.raises(OSError):
                shim_write(stream, b"1", a)
        with b.open("wb") as stream:
            shim_write(stream, b"1", b)
            with pytest.raises(OSError):
                shim_write(stream, b"2", b)

    def test_context_manager_restores_previous_plan(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("enospc", repeat=True)])
        with io_faults():  # empty scoped plan: faults suspended
            with path.open("wb") as stream:
                shim_write(stream, b"ok", path)
        with path.open("ab") as stream:
            with pytest.raises(OSError):
                shim_write(stream, b"x", path)

    def test_env_plan_reaches_the_shim(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_IO_FAULTS", '[{"kind": "enospc", "path": "f.bin"}]'
        )
        path = tmp_path / "f.bin"
        with path.open("wb") as stream:
            with pytest.raises(OSError) as exc:
                shim_write(stream, b"x", path)
        assert exc.value.errno == errno.ENOSPC


class TestShimBehavior:
    def test_torn_write_leaves_a_strict_prefix(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("torn-write")])
        payload = b'{"digest": "abcdef", "run_id": "r1"}\n'
        with path.open("wb") as stream:
            with pytest.raises(OSError) as exc:
                shim_write(stream, payload, path)
        assert exc.value.errno == errno.EIO
        torn = path.read_bytes()
        assert 0 < len(torn) < len(payload)
        assert payload.startswith(torn)
        assert not torn.endswith(b"\n")  # the newline never lands

    def test_bit_flip_succeeds_silently(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("bit-flip")])
        payload = b"0123456789"
        with path.open("wb") as stream:
            shim_write(stream, payload, path)  # no exception: silent damage
        written = path.read_bytes()
        assert len(written) == len(payload)
        assert written != payload
        diff = [i for i in range(len(payload)) if written[i] != payload[i]]
        assert len(diff) == 1
        assert fired_io_faults()[0]["kind"] == "bit-flip"

    def test_fsync_fail_raises_after_flush(self, tmp_path):
        path = tmp_path / "f.bin"
        install_io_plan([IOFaultSpec("fsync-fail")])
        with path.open("wb") as stream:
            shim_write(stream, b"data", path)
            with pytest.raises(OSError) as exc:
                shim_fsync(stream, path)
        assert exc.value.errno == errno.EIO
        # The data reached the page cache (flushed), just not the platter.
        assert path.read_bytes() == b"data"

    def test_replace_enospc_keyed_on_destination(self, tmp_path):
        src = tmp_path / "staged.json"
        dst = tmp_path / "final.json"
        src.write_text("payload")
        install_io_plan([IOFaultSpec("enospc", path="final.json")])
        with pytest.raises(OSError) as exc:
            shim_replace(src, dst)
        assert exc.value.errno == errno.ENOSPC
        assert src.exists() and not dst.exists()

    def test_no_plan_is_a_passthrough(self, tmp_path):
        path = tmp_path / "f.bin"
        with path.open("wb") as stream:
            shim_write(stream, b"abc", path)
            shim_fsync(stream, path)
        shim_replace(path, tmp_path / "g.bin")
        assert (tmp_path / "g.bin").read_bytes() == b"abc"
        assert fired_io_faults() == []
