"""Resilience semantics under batched dispatch.

Batching changes the failure surface: a worker now holds several cells
at once, so every resilience guarantee must be re-proven per *batch
member*, not per dispatch.  Tier-1 guarantees pinned here:

* a worker crash mid-batch loses only the in-flight cell — completed
  members keep their results, unstarted members are re-dispatched and
  complete normally;
* with retries enabled, the lost member is re-executed on a replacement
  worker while its batch siblings are not run twice;
* a circuit breaker opening prunes its combo's cells out of *queued*
  batches individually — sibling cells of other combos in the same
  batch still execute;
* ``--resume`` skips completed batch members: a journal written by an
  interrupted batched campaign pre-fills exactly the settled cells, and
  the resumed run re-executes only the rest.
"""

import pytest

from repro.core import BenchmarkSpec, run_suite
from repro.errors import CellFailedError
from repro.frameworks import KERNELS, Mode
from repro.gapbs import GAPReference
from repro.resilience.faults import CRASH_EXIT_CODE, FaultSpec

ONE_TRIAL = {k: 1 for k in KERNELS}


def _spec(**overrides):
    defaults = dict(scale=8, trials=ONE_TRIAL)
    defaults.update(overrides)
    return BenchmarkSpec(**defaults)


def _campaign(spec, kernels, graphs=("kron",), jobs=2, **kw):
    return run_suite(
        [GAPReference()],
        list(graphs),
        kernels=list(kernels),
        modes=[Mode.BASELINE],
        spec=spec,
        jobs=jobs,
        **kw,
    )


def test_worker_crash_mid_batch_loses_only_the_in_flight_cell():
    # One batch of three cells: [bfs, cc, pr].  The crash fires on cc, so
    # bfs has already been reported (synchronously) and pr is still
    # unstarted in the dead worker's batch tail.
    spec = _spec(
        batch_size=3,
        faults=(FaultSpec(kind="crash", kernel="cc", attempts=(0,)),),
    )
    results = _campaign(spec, ("bfs", "cc", "pr"))
    by_kernel = {r.kernel: r for r in results}
    assert by_kernel["bfs"].ok and by_kernel["bfs"].attempts == 1
    crashed = by_kernel["cc"]
    assert crashed.status == "error" and crashed.attempts == 1
    assert f"exit code {CRASH_EXIT_CODE}" in crashed.error
    # The tail member was re-dispatched, not lost with the worker.
    assert by_kernel["pr"].ok and by_kernel["pr"].attempts == 1


def test_crashed_batch_member_is_retried_without_rerunning_siblings():
    spec = _spec(
        batch_size=3,
        retries=1,
        faults=(FaultSpec(kind="crash", kernel="cc", attempts=(0,)),),
    )
    results = _campaign(spec, ("bfs", "cc", "pr"))
    by_kernel = {r.kernel: r for r in results}
    assert all(r.ok for r in results)
    assert by_kernel["cc"].attempts == 2  # lost once, re-run once
    assert by_kernel["bfs"].attempts == 1
    assert by_kernel["pr"].attempts == 1


def test_breaker_prunes_combo_cells_from_queued_batches_individually():
    # Canonical order over 3 graphs x (cc, pr) with batch_size=2 gives
    # batches [kron/cc, kron/pr], [road/cc, road/pr], [urand/cc, urand/pr].
    # Two workers take the first two batches; the third is still queued
    # when kron/cc's failure opens the cc breaker.  urand/cc must be
    # pruned out of the queued batch as 'skipped' while its sibling
    # urand/pr still runs.
    spec = _spec(
        batch_size=2,
        breaker_threshold=1,
        faults=(FaultSpec(kind="error", kernel="cc"),),
    )
    results = _campaign(spec, ("cc", "pr"), graphs=("kron", "road", "urand"))
    by_key = {(r.graph, r.kernel): r for r in results}
    assert len(results) == 6
    assert by_key[("kron", "cc")].status == "error"
    # road/cc was already in a worker's hands when the breaker opened:
    # in-flight batch members are never clawed back, they run and fail.
    assert by_key[("road", "cc")].status == "error"
    skipped = by_key[("urand", "cc")]
    assert skipped.status == "skipped" and "circuit breaker" in skipped.error
    # Sibling cells of the pruned combo survived in every batch.
    assert all(by_key[(g, "pr")].ok for g in ("kron", "road", "urand"))
    assert results.meta["resilience"]["skipped_cells"] == 1


def test_resume_skips_completed_batch_members(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    # A single batch [bfs, cc, pr] under strict mode: bfs settles into the
    # journal, cc's injected failure aborts the campaign, pr never settles.
    spec = _spec(
        batch_size=3,
        faults=(FaultSpec(kind="error", kernel="cc", attempts=(0,)),),
    )
    with pytest.raises(CellFailedError):
        _campaign(
            spec, ("bfs", "cc", "pr"), strict=True, journal=str(journal)
        )
    journaled = journal.read_bytes().splitlines()
    assert len(journaled) == 2  # header + the one settled batch member

    # Resume without the fault.  The bfs poison fault proves the resumed
    # run trusts the journal: if bfs were re-executed it would fail.
    resumed_spec = _spec(
        batch_size=3,
        faults=(FaultSpec(kind="error", kernel="bfs"),),
    )
    results = _campaign(
        resumed_spec,
        ("bfs", "cc", "pr"),
        journal=str(journal),
        resume=True,
    )
    by_kernel = {r.kernel: r for r in results}
    assert len(results) == 3
    assert by_kernel["bfs"].ok  # restored from the journal, not re-run
    assert by_kernel["cc"].ok and by_kernel["pr"].ok
    assert results.meta["resilience"]["resumed_cells"] == 1


def test_resume_skips_completed_batch_members_threads_pool(tmp_path):
    """The same journal round-trips between pool flavors: a campaign
    interrupted under the process pool resumes under the thread pool."""
    journal = tmp_path / "campaign.jsonl"
    spec = _spec(
        batch_size=3,
        faults=(FaultSpec(kind="error", kernel="cc", attempts=(0,)),),
    )
    with pytest.raises(CellFailedError):
        _campaign(
            spec, ("bfs", "cc", "pr"), strict=True, journal=str(journal)
        )

    resumed_spec = _spec(
        batch_size=3, pool="threads", faults=(FaultSpec(kind="error", kernel="bfs"),)
    )
    results = _campaign(
        resumed_spec,
        ("bfs", "cc", "pr"),
        journal=str(journal),
        resume=True,
    )
    assert len(results) == 3 and all(r.ok for r in results)
