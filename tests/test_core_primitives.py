"""Tests for shared core primitives: bitmap, nputil, hooking, counters."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import counters
from repro.core.bitmap import Bitmap
from repro.core.hooking import compress, converge, hook_pass, majority_component
from repro.core.nputil import expand_frontier, expand_frontier_weighted, row_slices


class TestBitmap:
    def test_set_and_contains(self):
        b = Bitmap(8)
        b.set(np.array([1, 5]))
        assert b.contains(np.array([0, 1, 5])).tolist() == [False, True, True]
        assert 5 in b and 0 not in b

    def test_scalar_contains(self):
        b = Bitmap(4)
        b.set(2)
        assert b.contains(2) is True

    def test_clear(self):
        b = Bitmap.from_indices(8, np.array([1, 2, 3]))
        b.clear(np.array([2]))
        assert b.to_indices().tolist() == [1, 3]
        b.clear()
        assert b.count() == 0

    def test_count_and_len(self):
        b = Bitmap.from_indices(8, np.array([0, 7]))
        assert b.count() == len(b) == 2

    def test_swap(self):
        a = Bitmap.from_indices(4, np.array([0]))
        b = Bitmap.from_indices(4, np.array([1, 2]))
        a.swap(b)
        assert a.to_indices().tolist() == [1, 2]
        assert b.to_indices().tolist() == [0]


class TestExpandFrontier:
    def test_matches_manual(self, tiny_graph):
        srcs, tgts = expand_frontier(
            tiny_graph.indptr, tiny_graph.indices, np.array([0, 2])
        )
        assert srcs.tolist() == [0, 0, 2]
        assert tgts.tolist() == [1, 2, 3]

    def test_empty_frontier(self, tiny_graph):
        srcs, tgts = expand_frontier(
            tiny_graph.indptr, tiny_graph.indices, np.empty(0, dtype=np.int64)
        )
        assert srcs.size == tgts.size == 0

    def test_isolated_vertices(self, tiny_graph):
        srcs, tgts = expand_frontier(
            tiny_graph.indptr, tiny_graph.indices, np.array([4])
        )
        assert srcs.size == 0

    def test_weighted(self):
        from repro.generators import build_graph, weighted_version

        g = weighted_version(build_graph("road", scale=7))
        v = int(np.flatnonzero(g.out_degrees > 0)[0])
        srcs, tgts, weights = expand_frontier_weighted(
            g.indptr, g.indices, g.weights, np.array([v])
        )
        assert np.array_equal(tgts, g.neighbors(v))
        assert np.array_equal(weights, g.neighbor_weights(v))

    def test_row_slices(self, tiny_graph):
        slices = row_slices(tiny_graph.indptr, tiny_graph.indices, np.array([0, 1]))
        assert slices[0].tolist() == [1, 2]
        assert slices[1].tolist() == [2]

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_expansion_preserves_degree_sum(self, seed):
        from repro.generators import build_graph

        g = build_graph("kron", scale=7, seed=seed % 5)
        rng = np.random.default_rng(seed)
        frontier = np.unique(rng.integers(0, g.num_vertices, size=10))
        srcs, tgts = expand_frontier(g.indptr, g.indices, frontier)
        assert srcs.size == int(g.out_degrees[frontier].sum())


class TestHooking:
    def test_compress_resolves_chains(self):
        comp = np.array([1, 2, 2])
        compress(comp)
        assert comp.tolist() == [2, 2, 2]

    def test_hook_pass_merges(self):
        comp = np.arange(4)
        changed = hook_pass(comp, np.array([0]), np.array([3]))
        assert changed
        compress(comp)
        assert comp[0] == comp[3]

    def test_hook_pass_empty(self):
        comp = np.arange(3)
        assert not hook_pass(comp, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_converge_path(self):
        n = 20
        comp = np.arange(n)
        src = np.arange(n - 1)
        dst = np.arange(1, n)
        converge(comp, src, dst)
        assert (comp == 0).all()

    def test_converge_two_components(self):
        comp = np.arange(6)
        converge(comp, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        assert comp[0] == comp[1] == comp[2] == 0
        assert comp[3] == comp[4] == comp[5] == 3

    def test_majority_component(self):
        comp = np.array([0] * 90 + [5] * 10)
        rng = np.random.default_rng(0)
        assert majority_component(comp, rng) == 0

    def test_majority_empty(self):
        assert majority_component(np.empty(0, dtype=np.int64), np.random.default_rng(0)) == 0


class TestCounters:
    def test_nested_counting_isolated(self):
        with counters.counting() as outer:
            counters.add_edges(5)
            with counters.counting() as inner:
                counters.add_edges(3)
        assert outer.edges_examined == 5
        assert inner.edges_examined == 3

    def test_noop_outside_context(self):
        counters.add_edges(100)  # must not raise
        counters.add_round()
        counters.note("x")

    def test_all_channels(self):
        with counters.counting() as work:
            counters.add_edges(2)
            counters.add_vertices(3)
            counters.add_round()
            counters.add_iteration()
            counters.note("k", 2.0)
            counters.note("k", 1.0)
        assert work.edges_examined == 2
        assert work.vertices_touched == 3
        assert work.rounds == 1
        assert work.iterations == 1
        assert work.extras["k"] == 3.0
