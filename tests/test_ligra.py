"""Tests for the Ligra-style extension framework."""

import networkx as nx
import numpy as np
import pytest

from repro.core import counters
from repro.frameworks import FRAMEWORK_NAMES, get
from repro.generators import weighted_version
from repro.ligra import VertexSubset, edge_map, vertex_map


class TestVertexSubset:
    def test_sparse_and_dense_agree(self):
        sparse = VertexSubset.from_ids(8, np.array([1, 5]))
        dense = VertexSubset.from_dense(sparse.dense())
        assert sparse.ids().tolist() == dense.ids().tolist()
        assert sparse.size() == dense.size() == 2

    def test_single(self):
        vs = VertexSubset.single(4, 2)
        assert vs.ids().tolist() == [2]

    def test_empty_falsy(self):
        assert not VertexSubset.from_ids(4, np.empty(0, dtype=np.int64))

    def test_duplicates_removed(self):
        assert VertexSubset.from_ids(4, np.array([1, 1, 1])).size() == 1


class TestEdgeMap:
    def test_sparse_and_dense_modes_visit_same_edges(self, tiny_graph):
        def collect(store):
            def update(sources, targets):
                store.extend(zip(sources.tolist(), targets.tolist()))
                return np.ones(targets.size, dtype=bool)

            return update

        seen_sparse, seen_dense = [], []
        frontier = VertexSubset.from_ids(7, np.array([0, 1]))
        edge_map(tiny_graph, frontier, collect(seen_sparse), threshold=1)
        edge_map(tiny_graph, frontier, collect(seen_dense), threshold=10**9)
        assert sorted(set(seen_sparse)) == sorted(set(seen_dense))

    def test_direction_choice_recorded(self, corpus):
        graph = corpus["kron"]
        hub = int(np.argmax(graph.out_degrees))
        small = VertexSubset.single(graph.num_vertices, hub)

        def update(sources, targets):
            return np.zeros(targets.size, dtype=bool)

        # use_dense triggers when out_volume > |E| // threshold, so a tiny
        # threshold forces sparse and a huge one forces dense.
        with counters.counting() as work:
            edge_map(graph, small, update, threshold=1)  # force sparse
        assert work.extras.get("edge_map_sparse") == 1
        everything = VertexSubset.from_ids(
            graph.num_vertices, np.arange(graph.num_vertices)
        )
        with counters.counting() as work:
            edge_map(graph, everything, update, threshold=10**9)  # force dense
        assert work.extras.get("edge_map_dense") == 1

    def test_cond_prunes(self, tiny_graph):
        allowed = np.zeros(7, dtype=bool)
        allowed[2] = True
        seen = []

        def update(sources, targets):
            seen.extend(targets.tolist())
            return np.ones(targets.size, dtype=bool)

        out = edge_map(
            tiny_graph,
            VertexSubset.from_ids(7, np.array([0, 1])),
            update,
            cond=lambda v: allowed[v],
        )
        assert set(seen) == {2}
        assert out.ids().tolist() == [2]

    def test_vertex_map_filters(self):
        vs = VertexSubset.from_ids(6, np.array([0, 1, 2, 3]))
        evens = vertex_map(vs, lambda ids: ids % 2 == 0)
        assert evens.ids().tolist() == [0, 2]

    def test_vertex_map_none_keeps_subset(self):
        vs = VertexSubset.from_ids(6, np.array([0, 1]))
        assert vertex_map(vs, lambda ids: None) is vs


class TestLigraKernels:
    """Full cross-checks against the reference on the whole corpus."""

    def test_bfs(self, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        ligra = get("ligra")
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        parents = ligra.bfs(graph, source)
        depths = nx.single_source_shortest_path_length(nx_corpus[name], source)
        assert set(np.flatnonzero(parents >= 0).tolist()) == set(depths)

    def test_sssp(self, corpus_graph):
        name, graph = corpus_graph
        weighted = weighted_version(graph)
        source = int(np.flatnonzero(weighted.out_degrees > 0)[0])
        reference = get("gap").sssp(weighted, source)
        dist = get("ligra").sssp(weighted, source)
        assert np.array_equal(
            np.nan_to_num(dist, posinf=-1.0), np.nan_to_num(reference, posinf=-1.0)
        )

    def test_cc(self, corpus_graph):
        _, graph = corpus_graph
        reference = get("gap").connected_components(graph)
        labels = get("ligra").connected_components(graph)
        _, ref_ids = np.unique(reference, return_inverse=True)
        _, our_ids = np.unique(labels, return_inverse=True)
        assert np.array_equal(ref_ids, our_ids)

    def test_pr(self, corpus_graph):
        _, graph = corpus_graph
        reference = get("gap").pagerank(graph, tolerance=1e-10, max_iterations=300)
        scores = get("ligra").pagerank(graph, tolerance=1e-10, max_iterations=300)
        assert np.abs(scores - reference).max() < 1e-6

    def test_bc(self, corpus_graph):
        _, graph = corpus_graph
        sources = np.flatnonzero(graph.out_degrees > 0)[:4]
        reference = get("gap").betweenness(graph, sources)
        scores = get("ligra").betweenness(graph, sources)
        assert np.allclose(scores, reference)

    def test_tc(self, corpus_graph):
        _, graph = corpus_graph
        assert get("ligra").triangle_count(graph) == get("gap").triangle_count(graph)


class TestRegistryExtension:
    def test_paper_set_unchanged(self):
        assert "ligra" not in FRAMEWORK_NAMES
        assert len(FRAMEWORK_NAMES) == 6

    def test_extended_set_includes_ligra(self):
        from repro.frameworks import EXTENDED_FRAMEWORK_NAMES

        assert "ligra" in EXTENDED_FRAMEWORK_NAMES

    def test_harness_accepts_ligra(self):
        from repro.core import BenchmarkSpec, GraphCase, run_cell
        from repro.frameworks import Mode

        case = GraphCase.build("kron", scale=8)
        spec = BenchmarkSpec(scale=8, trials={"bfs": 1})
        result = run_cell(get("ligra"), "bfs", case, Mode.BASELINE, spec)
        assert result.framework == "ligra"
        assert result.verified
