"""Tests for the persistent cell-level memoization index."""

from __future__ import annotations

import json

import pytest

from repro.core.results import ResultSet, RunResult
from repro.core.spec import BenchmarkSpec
from repro.errors import ArchiveError
from repro.frameworks import Mode
from repro.store import RunArchive
from repro.store.cellindex import (
    CELL_INDEX_VERSION,
    CellIndex,
    cell_digest,
    comparable_environment,
    identity_hasher,
    spec_identity,
)
from repro.store.environment import COMPARABILITY_KEYS, fingerprint

CELL = ("kron", "baseline", "bfs", "gap")


def _result(graph="kron", kernel="bfs", framework="gap", status="ok"):
    return RunResult(
        framework=framework,
        kernel=kernel,
        graph=graph,
        mode=Mode.BASELINE,
        trial_seconds=[1.0] if status == "ok" else [],
        status=status,
    )


class TestDigest:
    def test_topology_outside_the_digest(self):
        serial = BenchmarkSpec(scale=8, jobs=1, pool="process")
        fanout = BenchmarkSpec(scale=8, jobs=4, pool="threads", batch_size=7)
        assert cell_digest(serial, CELL) == cell_digest(fanout, CELL)

    def test_measurement_knobs_inside_the_digest(self):
        base = BenchmarkSpec(scale=8)
        assert cell_digest(base, CELL) != cell_digest(BenchmarkSpec(scale=9), CELL)
        assert cell_digest(base, CELL) != cell_digest(
            BenchmarkSpec(scale=8, seed=1), CELL
        )
        assert cell_digest(base, CELL) != cell_digest(
            BenchmarkSpec(scale=8, trial_timeout=5.0), CELL
        )

    def test_distinct_cells_distinct_digests(self):
        spec = BenchmarkSpec(scale=8)
        other = ("kron", "baseline", "cc", "gap")
        assert cell_digest(spec, CELL) != cell_digest(spec, other)

    def test_hasher_prefix_equals_direct_form(self):
        spec = BenchmarkSpec(scale=8)
        hasher = identity_hasher(spec)
        assert cell_digest(None, CELL, hasher=hasher) == cell_digest(spec, CELL)
        # The hasher is reusable: copy() semantics keep the prefix intact.
        other = ("kron", "baseline", "cc", "gap")
        assert cell_digest(None, other, hasher=hasher) == cell_digest(spec, other)

    def test_environment_participates_via_comparability_slice(self):
        spec = BenchmarkSpec(scale=8)
        env = comparable_environment()
        assert set(env) == set(COMPARABILITY_KEYS)
        changed = dict(fingerprint())
        changed["numpy"] = "0.0.0-different"
        assert cell_digest(spec, CELL) != cell_digest(spec, CELL, environment=changed)

    def test_git_sha_does_not_cold_start_the_cache(self):
        spec = BenchmarkSpec(scale=8)
        moved = dict(fingerprint())
        moved["git_sha"] = "f" * 12
        assert cell_digest(spec, CELL) == cell_digest(spec, CELL, environment=moved)

    def test_spec_identity_strips_only_topology(self):
        spec = BenchmarkSpec(scale=8, jobs=3, pool="threads", batch_size=2)
        identity = spec_identity(spec)
        assert "jobs" not in identity
        assert "pool" not in identity
        assert "batch_size" not in identity
        assert identity["scale"] == 8


class TestCellIndex:
    def test_round_trip_and_reload(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            index.add("d2", "run-b", ("kron", "baseline", "cc", "gap"))
            assert index.run_id_for("d1") == "run-a"
            assert "d2" in index
            assert len(index) == 2
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-a"
            assert reloaded.get("d2")["cell"] == ["kron", "baseline", "cc", "gap"]

    def test_header_carries_schema_version(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["cell_index_version"] == CELL_INDEX_VERSION
        # The header line is checksummed like every other record.
        from repro.store.integrity import verify_line

        assert "crc" in first and verify_line(first)

    def test_add_is_idempotent(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            before = path.stat().st_size
            index.add("d1", "run-a", CELL)
            assert path.stat().st_size == before

    def test_remap_appends_and_latest_wins(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            index.add("d1", "run-b", CELL)
            assert index.run_id_for("d1") == "run-b"
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-b"

    def test_torn_trailing_line_discarded(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
        with open(path, "ab") as stream:
            stream.write(b'{"digest": "d2", "run_id": "run')  # no newline
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-a"
            assert "d2" not in reloaded

    def test_corrupt_interior_line_is_an_error(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            # A second entry keeps the corrupted line *interior*: later
            # appends succeeded after it, so it is corruption, not a torn
            # tail.
            index.add("d2", "run-b", ("kron", "baseline", "cc", "gap"))
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"digest"', b'"digest', 1))
        with pytest.raises(ArchiveError, match="rebuild"):
            CellIndex(path)

    def test_corrupt_final_line_discarded_like_torn_tail(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            index.add("d2", "run-b", ("kron", "baseline", "cc", "gap"))
        raw = path.read_bytes()
        # Flip one byte inside the *last* line's payload: the record was
        # flushed but its checksum no longer matches — the writer died
        # between payload and fsync, so the entry was never promised.
        lines = raw.rstrip(b"\n").split(b"\n")
        lines[-1] = lines[-1].replace(b"run-b", b"run-X")
        path.write_bytes(b"\n".join(lines) + b"\n")
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-a"
            assert "d2" not in reloaded

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        path.write_text('{"cell_index_version": 999}\n')
        with pytest.raises(ArchiveError, match="version"):
            CellIndex(path)

    def test_add_many_batches_in_one_append(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            count = index.add_many(
                [
                    ("d1", "run-a", CELL),
                    ("d2", "run-a", ("kron", "baseline", "cc", "gap")),
                    ("d1", "run-a", CELL),  # duplicate within the batch
                ]
            )
        assert count == 2

    def test_rebuild_from_archive(self, tmp_path):
        archive = RunArchive(tmp_path)
        spec = BenchmarkSpec(scale=8)
        results = ResultSet(
            [_result(), _result(kernel="cc")],
            meta={"environment": fingerprint()},
        )
        record = archive.archive_run(results, spec=spec)
        index = CellIndex.for_archive(archive)
        indexed = index.rebuild_from_archive(archive)
        assert indexed == 2
        digest = cell_digest(spec, CELL)
        assert index.run_id_for(digest) == record.run_id
        index.close()

    def test_rebuild_skips_runs_without_spec(self, tmp_path):
        archive = RunArchive(tmp_path)
        archive.archive_run(ResultSet([_result()]))  # no spec
        index = CellIndex.for_archive(archive)
        assert index.rebuild_from_archive(archive) == 0
        index.close()


class TestDeriveSkipsFailedCells:
    def test_rebuild_indexes_only_ok_cells(self, tmp_path):
        # The service only indexes and serves *ok* cells; a rebuild that
        # resurrected error/timeout cells would promise hits the server
        # must then refuse (and re-execute as a surprise miss).
        archive = RunArchive(tmp_path)
        spec = BenchmarkSpec(scale=8)
        results = ResultSet(
            [
                _result(),
                _result(kernel="cc", status="error"),
                _result(kernel="pr", status="timeout"),
            ],
            meta={"environment": fingerprint()},
        )
        record = archive.archive_run(results, spec=spec)
        with CellIndex.for_archive(archive) as index:
            assert index.rebuild_from_archive(archive) == 1
            assert index.run_id_for(cell_digest(spec, CELL)) == record.run_id
            for kernel in ("cc", "pr"):
                bad = ("kron", "baseline", kernel, "gap")
                assert cell_digest(spec, bad) not in index


class TestConcurrentWriterTornTail:
    """Two uncoordinated writer processes, one killed mid-line.

    Writer A's append tears (power loss mid-write: a prefix lands, the
    newline never does).  Writer B then opens the same file: its load
    discards A's torn tail in memory, but append mode writes at the
    *physical* EOF — B's first line fuses with A's torn prefix into one
    garbled interior line.  The next reader must refuse to trust the
    file, and self-healing must converge back to exactly what the
    archive can prove.
    """

    def _writer(self, tmp_path, body, faults=None):
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = {k: v for k, v in os.environ.items() if k != "REPRO_IO_FAULTS"}
        env["PYTHONPATH"] = src
        if faults is not None:
            env["REPRO_IO_FAULTS"] = faults
        prelude = (
            "from repro.store.cellindex import CellIndex\n"
            f"index = CellIndex({str(str(tmp_path / 'cell_index.jsonl'))!r})\n"
        )
        return subprocess.run(
            [sys.executable, "-c", prelude + body],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )

    def test_reader_recovers_and_rebuild_converges(self, tmp_path):
        from repro.store.integrity import open_self_healing_index, quarantine_count

        archive = RunArchive(tmp_path)
        spec = BenchmarkSpec(scale=8)
        results = ResultSet(
            [_result(), _result(kernel="cc")],
            meta={"environment": fingerprint()},
        )
        record = archive.archive_run(results, spec=spec)
        with CellIndex.for_archive(archive) as index:
            index.rebuild_from_archive(archive)
        path = tmp_path / "cell_index.jsonl"
        clean_size = path.stat().st_size

        # Writer A: the very first append in its process tears.
        proc_a = self._writer(
            tmp_path,
            "try:\n"
            "    index.add('a' * 12, 'run-a', ('g', 'm', 'k', 'f'))\n"
            "except OSError:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(1)\n",
            faults='[{"kind": "torn-write", "path": "cell_index"}]',
        )
        assert proc_a.returncode == 0, proc_a.stderr
        raw = path.read_bytes()
        assert len(raw) > clean_size  # a prefix landed...
        assert not raw.endswith(b"\n")  # ...but the newline never did

        # Writer B: loads fine (torn tail discarded in memory) and keeps
        # appending — at the physical EOF, fusing with A's torn prefix.
        proc_b = self._writer(
            tmp_path,
            "index.add('b' * 12, 'run-b', ('g', 'm', 'k', 'f'))\n"
            "index.add('c' * 12, 'run-c', ('g', 'm', 'k', 'f'))\n"
            "index.close()\n",
        )
        assert proc_b.returncode == 0, proc_b.stderr

        # The fused line is now interior: a plain reader must refuse it.
        with pytest.raises(ArchiveError, match="corrupt|checksum"):
            CellIndex(path)

        # Self-healing quarantines the damaged file and rebuilds exactly
        # the archive's provable cells; B's unproven entries are gone.
        index, heal = open_self_healing_index(archive)
        try:
            assert heal is not None
            assert heal["reindexed_cells"] == 2
            assert quarantine_count(archive.root) == 1
            digest = cell_digest(spec, CELL)
            assert index.run_id_for(digest) == record.run_id
            assert "b" * 12 not in index
            assert "c" * 12 not in index
        finally:
            index.close()
        # Healing converges: the rebuilt index replays cleanly.
        CellIndex(path).close()
