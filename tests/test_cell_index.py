"""Tests for the persistent cell-level memoization index."""

from __future__ import annotations

import json

import pytest

from repro.core.results import ResultSet, RunResult
from repro.core.spec import BenchmarkSpec
from repro.errors import ArchiveError
from repro.frameworks import Mode
from repro.store import RunArchive
from repro.store.cellindex import (
    CELL_INDEX_VERSION,
    CellIndex,
    cell_digest,
    comparable_environment,
    identity_hasher,
    spec_identity,
)
from repro.store.environment import COMPARABILITY_KEYS, fingerprint

CELL = ("kron", "baseline", "bfs", "gap")


def _result(graph="kron", kernel="bfs", framework="gap", status="ok"):
    return RunResult(
        framework=framework,
        kernel=kernel,
        graph=graph,
        mode=Mode.BASELINE,
        trial_seconds=[1.0] if status == "ok" else [],
        status=status,
    )


class TestDigest:
    def test_topology_outside_the_digest(self):
        serial = BenchmarkSpec(scale=8, jobs=1, pool="process")
        fanout = BenchmarkSpec(scale=8, jobs=4, pool="threads", batch_size=7)
        assert cell_digest(serial, CELL) == cell_digest(fanout, CELL)

    def test_measurement_knobs_inside_the_digest(self):
        base = BenchmarkSpec(scale=8)
        assert cell_digest(base, CELL) != cell_digest(BenchmarkSpec(scale=9), CELL)
        assert cell_digest(base, CELL) != cell_digest(
            BenchmarkSpec(scale=8, seed=1), CELL
        )
        assert cell_digest(base, CELL) != cell_digest(
            BenchmarkSpec(scale=8, trial_timeout=5.0), CELL
        )

    def test_distinct_cells_distinct_digests(self):
        spec = BenchmarkSpec(scale=8)
        other = ("kron", "baseline", "cc", "gap")
        assert cell_digest(spec, CELL) != cell_digest(spec, other)

    def test_hasher_prefix_equals_direct_form(self):
        spec = BenchmarkSpec(scale=8)
        hasher = identity_hasher(spec)
        assert cell_digest(None, CELL, hasher=hasher) == cell_digest(spec, CELL)
        # The hasher is reusable: copy() semantics keep the prefix intact.
        other = ("kron", "baseline", "cc", "gap")
        assert cell_digest(None, other, hasher=hasher) == cell_digest(spec, other)

    def test_environment_participates_via_comparability_slice(self):
        spec = BenchmarkSpec(scale=8)
        env = comparable_environment()
        assert set(env) == set(COMPARABILITY_KEYS)
        changed = dict(fingerprint())
        changed["numpy"] = "0.0.0-different"
        assert cell_digest(spec, CELL) != cell_digest(spec, CELL, environment=changed)

    def test_git_sha_does_not_cold_start_the_cache(self):
        spec = BenchmarkSpec(scale=8)
        moved = dict(fingerprint())
        moved["git_sha"] = "f" * 12
        assert cell_digest(spec, CELL) == cell_digest(spec, CELL, environment=moved)

    def test_spec_identity_strips_only_topology(self):
        spec = BenchmarkSpec(scale=8, jobs=3, pool="threads", batch_size=2)
        identity = spec_identity(spec)
        assert "jobs" not in identity
        assert "pool" not in identity
        assert "batch_size" not in identity
        assert identity["scale"] == 8


class TestCellIndex:
    def test_round_trip_and_reload(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            index.add("d2", "run-b", ("kron", "baseline", "cc", "gap"))
            assert index.run_id_for("d1") == "run-a"
            assert "d2" in index
            assert len(index) == 2
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-a"
            assert reloaded.get("d2")["cell"] == ["kron", "baseline", "cc", "gap"]

    def test_header_carries_schema_version(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"cell_index_version": CELL_INDEX_VERSION}

    def test_add_is_idempotent(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            before = path.stat().st_size
            index.add("d1", "run-a", CELL)
            assert path.stat().st_size == before

    def test_remap_appends_and_latest_wins(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
            index.add("d1", "run-b", CELL)
            assert index.run_id_for("d1") == "run-b"
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-b"

    def test_torn_trailing_line_discarded(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
        with open(path, "ab") as stream:
            stream.write(b'{"digest": "d2", "run_id": "run')  # no newline
        with CellIndex(path) as reloaded:
            assert reloaded.run_id_for("d1") == "run-a"
            assert "d2" not in reloaded

    def test_corrupt_interior_line_is_an_error(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.add("d1", "run-a", CELL)
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"digest"', b'"digest', 1))
        with pytest.raises(ArchiveError, match="rebuild"):
            CellIndex(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        path.write_text('{"cell_index_version": 999}\n')
        with pytest.raises(ArchiveError, match="version"):
            CellIndex(path)

    def test_add_many_batches_in_one_append(self, tmp_path):
        path = tmp_path / "cell_index.jsonl"
        with CellIndex(path) as index:
            count = index.add_many(
                [
                    ("d1", "run-a", CELL),
                    ("d2", "run-a", ("kron", "baseline", "cc", "gap")),
                    ("d1", "run-a", CELL),  # duplicate within the batch
                ]
            )
        assert count == 2

    def test_rebuild_from_archive(self, tmp_path):
        archive = RunArchive(tmp_path)
        spec = BenchmarkSpec(scale=8)
        results = ResultSet(
            [_result(), _result(kernel="cc")],
            meta={"environment": fingerprint()},
        )
        record = archive.archive_run(results, spec=spec)
        index = CellIndex.for_archive(archive)
        indexed = index.rebuild_from_archive(archive)
        assert indexed == 2
        digest = cell_digest(spec, CELL)
        assert index.run_id_for(digest) == record.run_id
        index.close()

    def test_rebuild_skips_runs_without_spec(self, tmp_path):
        archive = RunArchive(tmp_path)
        archive.archive_run(ResultSet([_result()]))  # no spec
        index = CellIndex.for_archive(archive)
        assert index.rebuild_from_archive(archive) == 0
        index.close()
