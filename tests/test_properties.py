"""Tests for repro.graphs.properties (the Table I characterization)."""

import numpy as np
import networkx as nx

from repro.graphs import (
    CSRGraph,
    analyze,
    approximate_diameter,
    classify_degree_distribution,
    undirected_bfs_depths,
)
from .conftest import to_networkx


class TestClassifier:
    def test_bounded_small_max(self):
        degrees = np.full(1000, 3)
        assert classify_degree_distribution(degrees) == "bounded"

    def test_power_heavy_tail(self):
        rng = np.random.default_rng(0)
        degrees = rng.zipf(1.8, size=2000)
        assert classify_degree_distribution(degrees) == "power"

    def test_normal_poisson(self):
        rng = np.random.default_rng(0)
        degrees = rng.poisson(16, size=2000)
        assert classify_degree_distribution(degrees) == "normal"

    def test_empty(self):
        assert classify_degree_distribution(np.array([])) == "bounded"

    def test_corpus_classes(self, corpus):
        expected = {
            "road": "bounded",
            "twitter": "power",
            "web": "power",
            "kron": "power",
            "urand": "normal",
        }
        for name, graph in corpus.items():
            assert (
                classify_degree_distribution(graph.out_degrees) == expected[name]
            ), name


class TestBFSDepths:
    def test_matches_networkx_undirected_distances(self, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        oracle = nx_corpus[name].to_undirected() if graph.directed else nx_corpus[name]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        depths = undirected_bfs_depths(graph, source)
        lengths = nx.single_source_shortest_path_length(oracle, source)
        for vertex, distance in lengths.items():
            assert depths[vertex] == distance

    def test_unreached_marked(self, tiny_graph):
        depths = undirected_bfs_depths(tiny_graph, 5)
        assert depths[0] == -1
        assert depths[6] == 1


class TestDiameter:
    def test_path_graph(self):
        n = 50
        g = CSRGraph.from_arrays(
            n, np.arange(n - 1), np.arange(1, n), directed=False
        )
        assert approximate_diameter(g) == n - 1

    def test_lower_bounds_true_diameter(self):
        # A cycle: true diameter n//2; double sweep finds exactly that.
        n = 40
        src = np.arange(n)
        dst = (src + 1) % n
        g = CSRGraph.from_arrays(n, src, dst, directed=False)
        approx = approximate_diameter(g)
        assert 1 <= approx <= n // 2
        assert approx == n // 2  # double sweep is exact on a cycle

    def test_deterministic(self, corpus_graph):
        _, graph = corpus_graph
        assert approximate_diameter(graph, seed=3) == approximate_diameter(
            graph, seed=3
        )

    def test_empty_graph(self):
        g = CSRGraph.from_arrays(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert approximate_diameter(g) == 0


class TestAnalyze:
    def test_road_has_largest_diameter(self, corpus):
        diameters = {
            name: analyze(graph, name).approx_diameter
            for name, graph in corpus.items()
        }
        assert diameters["road"] == max(diameters.values())
        # Web sits between road and the low-diameter graphs, as in Table I
        # (strictly so at benchmark scale; >= at this test scale).
        assert diameters["web"] >= diameters["kron"]

    def test_row_fields(self, corpus):
        row = analyze(corpus["kron"], "kron").as_row()
        assert row["Name"] == "kron"
        assert row["Directed"] == "N"
        assert row["Degree Distribution"] == "power"

    def test_directedness_recorded(self, corpus):
        assert analyze(corpus["road"], "road").directed
        assert not analyze(corpus["urand"], "urand").directed
