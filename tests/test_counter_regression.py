"""Counter regression tests: instrumentation must not silently rot.

The work counters are the machine-independent half of every comparison in
this repo (edges examined, rounds, iterations).  A framework that stops
reporting into them would silently degrade the work-efficiency tables to
zeros, so this module pins, for every registered framework, that BFS and
CC on a fixed graph actually populate them with sane values.
"""

import pytest

from repro.core import BenchmarkSpec, GraphCase, SourcePicker, counters, run_cell
from repro.frameworks import KERNELS, Mode, RunContext, get
from repro.frameworks.registry import EXTENDED_FRAMEWORK_NAMES

COUNTER_SCALE = 7


@pytest.fixture(scope="module")
def case():
    return GraphCase.build("kron", scale=COUNTER_SCALE)


@pytest.fixture(scope="module")
def source(case):
    return SourcePicker(case.graph, seed=0).next_source()


@pytest.mark.parametrize("framework_name", EXTENDED_FRAMEWORK_NAMES)
def test_bfs_populates_counters(case, source, framework_name):
    framework = get(framework_name)
    with counters.counting() as work:
        framework.bfs(case.graph, source, RunContext())
    assert work.edges_examined > 0, f"{framework_name} BFS reported no edges"
    # A BFS does at least one frontier round and at most |V| of them.
    assert 0 < work.rounds <= case.graph.num_vertices


@pytest.mark.parametrize("framework_name", EXTENDED_FRAMEWORK_NAMES)
def test_cc_populates_counters(case, framework_name):
    framework = get(framework_name)
    with counters.counting() as work:
        framework.connected_components(case.graph, RunContext())
    assert work.edges_examined > 0, f"{framework_name} CC reported no edges"
    # CC progresses in rounds (label prop / SV) or sweeps (Afforest, FastSV).
    passes = work.rounds + work.iterations
    assert 0 < passes <= case.graph.num_vertices


@pytest.mark.parametrize("framework_name", EXTENDED_FRAMEWORK_NAMES)
def test_run_cell_records_bfs_counters(case, framework_name):
    """The counters must survive the runner and land on the RunResult."""
    spec = BenchmarkSpec(scale=COUNTER_SCALE, trials={k: 1 for k in KERNELS})
    result = run_cell(get(framework_name), "bfs", case, Mode.BASELINE, spec)
    assert result.edges_examined > 0
    assert result.rounds > 0


def test_counters_isolated_between_runs(case, source):
    """A second run must not inherit the first run's counts."""
    framework = get("gap")
    with counters.counting() as first:
        framework.bfs(case.graph, source, RunContext())
    with counters.counting() as second:
        framework.bfs(case.graph, source, RunContext())
    assert second.edges_examined == first.edges_examined
    assert second.rounds == first.rounds


class TestEarlyExitPull:
    """The optimized pull step must report *less* work, not different answers.

    ``gapbs.bfs.pull_step`` historically scanned every unvisited vertex's
    whole in-adjacency even after finding a frontier parent.  The substrate's
    chunked early exit stops each row at its first hit; these pins assert the
    parents are identical and the edge count strictly drops (the whole point
    of the optimization), and that Baseline mode keeps full-scan counts.
    """

    def test_early_exit_same_parents_fewer_edges(self, case, source):
        from repro.gapbs.bfs import direction_optimizing_bfs

        with counters.counting() as full:
            parents_full = direction_optimizing_bfs(
                case.graph, source, pull_early_exit=False
            )
        with counters.counting() as fast:
            parents_fast = direction_optimizing_bfs(
                case.graph, source, pull_early_exit=True
            )
        assert (parents_full == parents_fast).all()
        assert fast.rounds == full.rounds
        assert fast.edges_examined < full.edges_examined, (
            "early-exit pull must strictly reduce edges examined on kron "
            f"(got {fast.edges_examined} vs full {full.edges_examined})"
        )

    def test_mode_selects_scan_policy(self, case, source):
        from repro.frameworks import Mode

        framework = get("gap")
        with counters.counting() as baseline:
            framework.bfs(case.graph, source, RunContext(mode=Mode.BASELINE))
        with counters.counting() as optimized:
            framework.bfs(case.graph, source, RunContext(mode=Mode.OPTIMIZED))
        # Baseline keeps the paper-parity full scan; Optimized may not
        # exceed it and on kron must beat it.
        assert optimized.edges_examined < baseline.edges_examined


def _sync_pull_bfs_variants():
    """The non-GAP sync-pull BFS entry points that grew early-exit pulls."""
    from repro.galois.bfs import sync_bfs
    from repro.gkc.bfs import gkc_bfs
    from repro.nwgraph.bfs import nwgraph_bfs

    return [("galois", sync_bfs), ("gkc", gkc_bfs), ("nwgraph", nwgraph_bfs)]


class TestSyncPullEarlyExit:
    """Satellite pins: galois/gkc/nwgraph sync pulls share the kernel.

    Each framework's pull now goes through ``la.spmv.masked_pull_claim``;
    Optimized mode flips on the chunked early exit.  These pins assert,
    per framework, that the early-exit pull finds byte-identical parents
    while examining strictly fewer edges on kron (where nearly every
    pulled row has a frontier in-neighbor in its first few in-edges),
    and that the adapters key the policy off the run mode.
    """

    @pytest.mark.parametrize(
        "name,bfs_fn",
        _sync_pull_bfs_variants(),
        ids=[n for n, _ in _sync_pull_bfs_variants()],
    )
    def test_same_parents_strictly_fewer_edges(self, case, source, name, bfs_fn):
        with counters.counting() as full:
            parents_full = bfs_fn(case.graph, source, pull_early_exit=False)
        with counters.counting() as fast:
            parents_fast = bfs_fn(case.graph, source, pull_early_exit=True)
        assert (parents_full == parents_fast).all(), name
        assert fast.rounds == full.rounds, name
        assert fast.edges_examined < full.edges_examined, (
            f"{name}: early-exit pull must strictly reduce edges examined "
            f"(got {fast.edges_examined} vs full {full.edges_examined})"
        )

    @pytest.mark.parametrize("framework_name", ["gkc", "nwgraph"])
    def test_adapter_mode_selects_scan_policy(self, case, source, framework_name):
        framework = get(framework_name)
        with counters.counting() as baseline:
            parents_base = framework.bfs(
                case.graph, source, RunContext(mode=Mode.BASELINE)
            )
        with counters.counting() as optimized:
            parents_opt = framework.bfs(
                case.graph, source, RunContext(mode=Mode.OPTIMIZED)
            )
        assert (parents_base == parents_opt).all()
        assert optimized.edges_examined < baseline.edges_examined

    def test_galois_adapter_optimized_uses_early_exit(self, case, source):
        """Galois' Optimized scheduling picks sync BFS on kron (low diameter);
        the sync path must then run the early-exit pull."""
        from repro.galois.bfs import sync_bfs

        framework = get("galois")
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="kron")
        with counters.counting() as adapter:
            parents_adapter = framework.bfs(case.graph, source, ctx)
        with counters.counting() as direct:
            parents_direct = sync_bfs(case.graph, source, pull_early_exit=True)
        assert (parents_adapter == parents_direct).all()
        assert adapter.edges_examined == direct.edges_examined
