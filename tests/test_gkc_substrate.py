"""Tests for GKC's substrate pieces: local buffers and the TC batcher."""

import numpy as np

from repro.core import counters
from repro.gkc import LocalBuffer
from repro.gkc.tc import gkc_tc
from repro.graphs import CSRGraph


class TestLocalBuffer:
    def test_accumulates_and_drains(self):
        buf = LocalBuffer(capacity=100)
        buf.push(np.array([1, 2]))
        buf.push(np.array([3]))
        assert len(buf) == 3
        assert buf.drain().tolist() == [1, 2, 3]
        assert len(buf) == 0

    def test_flush_at_capacity(self):
        buf = LocalBuffer(capacity=2)
        with counters.counting() as work:
            buf.push(np.array([1, 2, 3]))  # exceeds capacity: flushes
            buf.push(np.array([4]))
        assert work.extras.get("buffer_flushes", 0) >= 1
        assert buf.drain().tolist() == [1, 2, 3, 4]

    def test_empty_push_is_noop(self):
        buf = LocalBuffer()
        buf.push(np.empty(0, dtype=np.int64))
        assert len(buf) == 0
        assert buf.drain().size == 0

    def test_double_drain(self):
        buf = LocalBuffer()
        buf.push(np.array([1]))
        buf.drain()
        assert buf.drain().size == 0


class TestGkcTcBatching:
    def test_block_budget_invariance(self, triangle_graph):
        """The wedge-block budget must not change the count."""
        import repro.gkc.tc as tc_module

        original = tc_module.WEDGE_BLOCK
        try:
            for budget in (4, 64, 1 << 20):
                tc_module.WEDGE_BLOCK = budget
                assert gkc_tc(triangle_graph) == 5
        finally:
            tc_module.WEDGE_BLOCK = original

    def test_two_sided_expansion_matches_reference(self, corpus):
        from repro.gapbs.tc import triangle_count as gap_tc

        for name in ("kron", "urand", "web"):
            graph = corpus[name]
            undirected = graph.to_undirected() if graph.directed else graph
            assert gkc_tc(undirected) == gap_tc(undirected), name

    def test_path_graph_no_triangles(self):
        n = 32
        path = CSRGraph.from_arrays(
            n, np.arange(n - 1), np.arange(1, n), directed=False
        )
        assert gkc_tc(path) == 0

    def test_wedge_work_bounded_by_one_sided(self, corpus):
        """Two-sided expansion must never examine more wedges than the
        one-sided (GAP-style) enumeration."""
        from repro.gapbs.tc import triangle_count as gap_tc

        graph = corpus["twitter"].to_undirected()
        with counters.counting() as two_sided:
            gkc_tc(graph)
        with counters.counting() as one_sided:
            gap_tc(graph)
        assert two_sided.edges_examined <= one_sided.edges_examined
