"""Property tests for the shared first-writer-wins idiom.

Before the substrate, five frameworks each carried their own copy of::

    fresh, first = np.unique(targets, return_index=True)
    state[fresh] = values[first]

``repro.la.frontier`` centralizes it with a sort-free engine (reversed
fancy assignment) next to the original as reference.  These tests drive
both engines with adversarial duplicate orderings — the exact situations
where last-writer-wins semantics would silently produce a *valid-looking*
but different parent tree — and require bit-identical results.
"""

import numpy as np
import pytest

from repro.la import (
    claim_first_writer,
    first_occurrence_mask,
    relax_minimum,
    unique_ids,
    use_substrate,
)

N = 64


def _engines(fn, *args):
    """Run ``fn`` under both engines on fresh copies of mutable args."""
    results = []
    for flag in (True, False):
        copied = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
        with use_substrate(flag):
            out = fn(*copied)
        results.append((out, copied))
    return results


ADVERSARIAL_KEYS = [
    np.array([3, 3, 3, 3], dtype=np.int64),               # one key, all dupes
    np.array([5, 4, 3, 2, 1, 0], dtype=np.int64),         # reverse sorted
    np.array([0, 1, 0, 1, 0, 1], dtype=np.int64),         # interleaved
    np.array([7, 2, 7, 2, 9, 7, 2, 9], dtype=np.int64),   # repeated clusters
    np.array([N - 1, 0, N - 1, 0], dtype=np.int64),       # extremes
]


class TestClaimFirstWriter:
    @pytest.mark.parametrize("keys", ADVERSARIAL_KEYS)
    def test_first_value_wins(self, keys):
        values = np.arange(keys.size, dtype=np.int64) + 100
        for out, (state, *_rest) in _engines(
            lambda s, k, v: claim_first_writer(s, k, v, N),
            np.full(N, -1, dtype=np.int64), keys, values,
        ):
            for key in np.unique(keys):
                first = int(np.flatnonzero(keys == key)[0])
                assert state[key] == values[first], (key, state[key])

    @pytest.mark.parametrize("seed", range(8))
    def test_engines_identical_on_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, N, size=rng.integers(1, 4 * N))
        values = rng.integers(0, 1000, size=keys.size)
        (fresh_o, (state_o, *_)), (fresh_r, (state_r, *_)) = _engines(
            lambda s, k, v: claim_first_writer(s, k, v, N),
            np.full(N, -1, dtype=np.int64), keys, values,
        )
        np.testing.assert_array_equal(fresh_o, fresh_r)
        np.testing.assert_array_equal(state_o, state_r)

    def test_returns_sorted_unique_written_keys(self):
        state = np.full(N, -1, dtype=np.int64)
        keys = np.array([9, 1, 9, 5, 1], dtype=np.int64)
        fresh = claim_first_writer(state, keys, keys * 10, N)
        np.testing.assert_array_equal(fresh, [1, 5, 9])

    def test_empty(self):
        state = np.full(N, -1, dtype=np.int64)
        out = claim_first_writer(
            state, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), N
        )
        assert out.size == 0
        assert np.all(state == -1)


class TestFirstOccurrenceMask:
    @pytest.mark.parametrize("keys", ADVERSARIAL_KEYS)
    def test_marks_exactly_first_occurrences(self, keys):
        for out, _args in _engines(lambda k: first_occurrence_mask(k, N), keys):
            expected = np.zeros(keys.size, dtype=bool)
            _, first = np.unique(keys, return_index=True)
            expected[first] = True
            np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_engines_identical_on_random_batches(self, seed):
        rng = np.random.default_rng(100 + seed)
        keys = rng.integers(0, N, size=rng.integers(1, 4 * N))
        (mask_o, _), (mask_r, _) = _engines(
            lambda k: first_occurrence_mask(k, N), keys
        )
        np.testing.assert_array_equal(mask_o, mask_r)

    def test_empty(self):
        assert first_occurrence_mask(np.empty(0, dtype=np.int64), N).size == 0


class TestUniqueIds:
    @pytest.mark.parametrize("keys", ADVERSARIAL_KEYS)
    def test_matches_np_unique(self, keys):
        for out, _args in _engines(lambda k: unique_ids(k, N), keys):
            np.testing.assert_array_equal(out, np.unique(keys))

    def test_empty(self):
        assert unique_ids(np.empty(0, dtype=np.int64), N).size == 0


class TestRelaxMinimum:
    @pytest.mark.parametrize("seed", range(4))
    def test_engines_identical(self, seed):
        rng = np.random.default_rng(200 + seed)
        targets = rng.integers(0, N, size=96)
        candidates = rng.random(96) * 10
        (imp_o, (dist_o, *_)), (imp_r, (dist_r, *_)) = _engines(
            lambda d, t, c: relax_minimum(d, t, c, N),
            np.full(N, np.inf), targets, candidates,
        )
        np.testing.assert_array_equal(imp_o, imp_r)
        np.testing.assert_array_equal(dist_o, dist_r)

    def test_keeps_minimum_per_target(self):
        dist = np.full(N, np.inf)
        targets = np.array([4, 4, 4], dtype=np.int64)
        candidates = np.array([3.0, 1.0, 2.0])
        improved = relax_minimum(dist, targets, candidates, N)
        np.testing.assert_array_equal(improved, [4])
        assert dist[4] == 1.0
