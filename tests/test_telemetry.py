"""Tests for the telemetry & fault-isolation layer.

Covers the span tracer (nesting, status capture, JSONL sink), the
per-trial deadline (signal and monotonic-fallback paths), the runner
wire-up (phase spans, counters, peak memory), and the acceptance
scenario: a suite run where one framework's kernel raises completes all
other cells, records the failure as a structured ``error`` trial in the
JSONL trace and the report failure table, and exits nonzero only under
``--strict``.
"""

import dataclasses
import signal
import threading
import time

import pytest

from repro.core import (
    BenchmarkSpec,
    GraphCase,
    JsonlSink,
    Telemetry,
    TrialDeadline,
    read_trace,
    run_cell,
    run_suite,
)
from repro.core.report import results_to_markdown
from repro.core.tables import failure_rows, trial_statistics_rows
from repro.core.telemetry import quantile
from repro.errors import TrialTimeoutError, VerificationError
from repro.frameworks import KERNELS, Mode, RunContext
from repro.gapbs import GAPReference

TINY_SPEC = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})


@pytest.fixture(scope="module")
def case():
    return GraphCase.build("kron", scale=8)


class FaultyCC(GAPReference):
    """Test-only framework whose CC kernel always raises."""

    attributes = dataclasses.replace(GAPReference.attributes, name="faulty")

    def connected_components(self, graph, ctx=RunContext()):
        raise RuntimeError("injected fault")


class SleepyCC(GAPReference):
    """Test-only framework whose CC kernel hangs past any sane deadline."""

    attributes = dataclasses.replace(GAPReference.attributes, name="sleepy")

    def connected_components(self, graph, ctx=RunContext()):
        time.sleep(5.0)
        return super().connected_components(graph, ctx)


class TestSpans:
    def test_nesting_and_timing(self):
        tel = Telemetry()
        with tel.span("outer", label="x") as outer:
            with tel.span("inner"):
                pass
        assert tel.spans == [outer]
        assert outer.status == "ok"
        assert outer.wall_seconds >= 0
        assert outer.child("inner") is not None
        assert outer.attributes["label"] == "x"

    def test_exception_marks_error_and_propagates(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("boom"):
                raise ValueError("nope")
        span = tel.spans[0]
        assert span.status == "error"
        assert span.error["type"] == "ValueError"
        assert "nope" in span.error["message"]
        assert "ValueError" in span.error["traceback"]

    def test_timeout_status(self):
        tel = Telemetry()
        with pytest.raises(TrialTimeoutError):
            with tel.span("slow"):
                raise TrialTimeoutError("budget gone")
        assert tel.spans[0].status == "timeout"

    def test_current_span(self):
        tel = Telemetry()
        assert tel.current() is None
        with tel.span("a") as a:
            assert tel.current() is a
        assert tel.current() is None

    def test_summary_counts_and_percentiles(self):
        tel = Telemetry()
        with tel.span("fine", framework="gap"):
            pass
        with pytest.raises(RuntimeError):
            with tel.span("bad", framework="gkc"):
                raise RuntimeError("x")
        summary = tel.summary()
        assert summary["spans"] == 2
        assert summary["by_status"] == {"ok": 1, "error": 1}
        assert summary["failures"][0]["framework"] == "gkc"
        assert summary["p50_seconds"] >= 0

    def test_quantile(self):
        assert quantile([], 0.5) != quantile([], 0.5)  # NaN
        assert quantile([3.0], 0.95) == 3.0
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert quantile([1.0, 2.0], 0.5) == pytest.approx(1.5)


class TestJsonlSink:
    def test_stream_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"a": 1})
        sink.write({"b": [1, 2]})
        sink.close()
        assert read_trace(path) == [{"a": 1}, {"b": [1, 2]}]

    def test_telemetry_streams_top_level_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(sink=path) as tel:
            with tel.span("cell", kernel="bfs"):
                with tel.span("inner"):
                    pass
        records = read_trace(path)
        assert len(records) == 1  # nested span rides inside the cell record
        assert records[0]["span"] == "cell"
        assert records[0]["kernel"] == "bfs"
        assert records[0]["children"][0]["span"] == "inner"


class BlockedAlarmCC(GAPReference):
    """Overruns the deadline with SIGALRM blocked, like one long C call.

    The pending signal only delivers once the mask is lifted, so the
    deadline fires far past its budget — the shape of a kernel stuck in a
    single NumPy operation, made deterministic.
    """

    attributes = dataclasses.replace(GAPReference.attributes, name="blocked")

    def connected_components(self, graph, ctx=RunContext()):
        signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        try:
            time.sleep(0.3)
        finally:
            signal.pthread_sigmask(signal.SIG_UNBLOCK, {signal.SIGALRM})
        return super().connected_components(graph, ctx)


class TestTrialDeadline:
    def test_disabled_is_noop(self):
        with TrialDeadline(None):
            pass
        with TrialDeadline(0):
            time.sleep(0.01)

    def test_fast_block_passes(self):
        with TrialDeadline(5.0):
            pass

    def test_signal_interrupts_hung_block(self):
        started = time.monotonic()
        with pytest.raises(TrialTimeoutError):
            with TrialDeadline(0.05):
                time.sleep(5.0)
        assert time.monotonic() - started < 1.0  # interrupted, not post-hoc

    def test_monotonic_fallback_off_main_thread(self):
        """Without signals the deadline still converts overruns to timeouts."""
        caught = []

        def overrun():
            try:
                with TrialDeadline(0.01):
                    time.sleep(0.05)
            except TrialTimeoutError as exc:
                caught.append(exc)

        worker = threading.Thread(target=overrun)
        worker.start()
        worker.join()
        assert len(caught) == 1
        assert "post-hoc" in str(caught[0])

    def test_overrun_classified_interrupted_when_signal_lands(self):
        deadline = TrialDeadline(0.05)
        with pytest.raises(TrialTimeoutError):
            with deadline:
                time.sleep(5.0)
        overrun = deadline.last_overrun
        assert overrun is not None
        assert overrun["interrupted"] is True
        assert overrun["mechanism"] == "signal"
        assert overrun["elapsed_seconds"] >= overrun["budget_seconds"]

    def test_overrun_classified_uninterrupted_when_signal_blocked(self):
        """A blocked SIGALRM models a trial stuck in one long C call."""
        deadline = TrialDeadline(0.05)
        with pytest.raises(TrialTimeoutError):
            with deadline:
                signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
                try:
                    time.sleep(0.3)
                finally:
                    signal.pthread_sigmask(
                        signal.SIG_UNBLOCK, {signal.SIGALRM}
                    )
        overrun = deadline.last_overrun
        assert overrun is not None
        assert overrun["interrupted"] is False
        assert overrun["elapsed_seconds"] > overrun["budget_seconds"]

    def test_overrun_classified_posthoc_off_main_thread(self):
        overruns = []

        def run():
            deadline = TrialDeadline(0.01)
            try:
                with deadline:
                    time.sleep(0.05)
            except TrialTimeoutError:
                overruns.append(deadline.last_overrun)

        worker = threading.Thread(target=run)
        worker.start()
        worker.join()
        assert overruns[0]["mechanism"] == "posthoc"
        assert overruns[0]["interrupted"] is False

    def test_within_budget_leaves_no_overrun(self):
        deadline = TrialDeadline(5.0)
        with deadline:
            pass
        assert deadline.last_overrun is None


class TestRunnerWireUp:
    def test_cell_span_structure(self, case):
        tel = Telemetry()
        result = run_cell(GAPReference(), "bfs", case, Mode.BASELINE, TINY_SPEC,
                          telemetry=tel)
        assert result.status == "ok" and result.ok
        span = tel.spans[-1]
        assert span.name == "cell"
        assert span.status == "ok"
        assert span.attributes["framework"] == "gap"
        assert span.attributes["kernel"] == "bfs"
        assert span.child("prepare") is not None
        assert span.child("verify") is not None
        assert len(span.trials) == 1
        assert span.trials[0]["status"] == "ok"
        assert span.trials[0]["wall_seconds"] > 0
        assert "source" in span.trials[0]
        assert span.counters["edges_examined"] > 0

    def test_peak_memory_tracked_on_request(self, case):
        tel = Telemetry(track_memory=True)
        run_cell(GAPReference(), "pr", case, Mode.BASELINE, TINY_SPEC, telemetry=tel)
        assert tel.spans[-1].peak_mem_bytes > 0

    def test_failing_cell_records_error_span_then_raises(self, case):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            run_cell(FaultyCC(), "cc", case, Mode.BASELINE, TINY_SPEC, telemetry=tel)
        span = tel.spans[-1]
        assert span.status == "error"
        assert span.error["type"] == "RuntimeError"
        assert span.attributes["phase"] == "kernel"
        assert span.trials[0]["status"] == "error"

    def test_verification_failure_attributed_to_verify_phase(self, case):
        class WrongTC(GAPReference):
            def triangle_count(self, graph, ctx=RunContext()):
                return super().triangle_count(graph, ctx) + 7

        tel = Telemetry()
        with pytest.raises(VerificationError):
            run_cell(WrongTC(), "tc", case, Mode.BASELINE, TINY_SPEC, telemetry=tel)
        span = tel.spans[-1]
        assert span.status == "error"
        assert span.attributes["phase"] == "verify"

    def test_timeout_cell_records_timeout_span(self, case):
        spec = BenchmarkSpec(scale=8, trials={"cc": 1}, trial_timeout=0.05)
        tel = Telemetry()
        with pytest.raises(TrialTimeoutError):
            run_cell(SleepyCC(), "cc", case, Mode.BASELINE, spec, telemetry=tel)
        span = tel.spans[-1]
        assert span.status == "timeout"
        # SleepyCC sleeps in Python, so the signal interrupted it near its
        # budget — no uninterrupted-overrun warning is warranted.
        assert span.warnings == []

    def test_uninterrupted_overrun_warns_on_cell_span(self, case):
        """Serial mode documents the soft-deadline gap on the span.

        An in-process deadline cannot interrupt a trial stuck in one long
        C call; when such a trial finally ends far past its budget, the
        cell span must carry a structured warning so trace readers know
        the recorded timeout was not enforced at the budget.
        """
        spec = BenchmarkSpec(scale=8, trials={"cc": 1}, trial_timeout=0.05)
        tel = Telemetry()
        with pytest.raises(TrialTimeoutError):
            run_cell(
                BlockedAlarmCC(), "cc", case, Mode.BASELINE, spec, telemetry=tel
            )
        span = tel.spans[-1]
        assert span.status == "timeout"
        assert len(span.warnings) == 1
        warning = span.warnings[0]
        assert warning["warning"] == "deadline-overrun-uninterrupted"
        assert warning["interrupted"] is False
        assert warning["elapsed_seconds"] > warning["budget_seconds"]
        # The warning rides along in the JSONL record and survives the
        # worker-to-parent span round trip.
        from repro.core.telemetry import Span

        rebuilt = Span.from_dict(span.as_dict())
        assert rebuilt.warnings == span.warnings
        assert rebuilt.as_dict() == span.as_dict()

    def test_skipped_trials_recorded(self, case):
        """Trials never reached after a failure show up as skipped."""
        spec = BenchmarkSpec(scale=8, trials={"cc": 3})
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            run_cell(FaultyCC(), "cc", case, Mode.BASELINE, spec, telemetry=tel)
        statuses = [t["status"] for t in tel.spans[-1].trials]
        assert statuses == ["error", "skipped", "skipped"]


class TestFaultIsolation:
    """The acceptance scenario: one broken framework cannot sink the suite."""

    def test_suite_completes_around_faulty_framework(self, case, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=trace_path)
        results = run_suite(
            [GAPReference(), FaultyCC()],
            ["kron"],
            kernels=["bfs", "cc", "tc"],
            modes=[Mode.BASELINE],
            spec=TINY_SPEC,
            telemetry=telemetry,
        )
        telemetry.close()

        # All 6 cells are recorded; only faulty/cc failed.
        assert len(results) == 6
        failures = results.failures()
        assert [(f.framework, f.kernel, f.status) for f in failures] == [
            ("faulty", "cc", "error")
        ]
        assert "RuntimeError: injected fault" in failures[0].error
        # Every other cell — including the faulty framework's other kernels —
        # completed and was measured.
        ok_cells = [r for r in results if r.ok]
        assert len(ok_cells) == 5
        assert all(r.seconds > 0 for r in ok_cells)

        # The JSONL trace carries the structured error trial.
        records = read_trace(trace_path)
        assert len(records) == 6
        failed = [r for r in records if r["status"] == "error"]
        assert len(failed) == 1
        assert failed[0]["framework"] == "faulty"
        assert failed[0]["kernel"] == "cc"
        assert failed[0]["error"]["type"] == "RuntimeError"
        assert failed[0]["trials"][0]["status"] == "error"

        # The failure lands in the report's failure table.
        assert failure_rows(results)[0]["Status"] == "error"
        report = results_to_markdown(results, ["kron"])
        assert "## Failures" in report
        assert "injected fault" in report

    def test_strict_restores_fail_fast(self, case):
        with pytest.raises(RuntimeError, match="injected fault"):
            run_suite(
                [FaultyCC()],
                ["kron"],
                kernels=["cc"],
                modes=[Mode.BASELINE],
                spec=TINY_SPEC,
                strict=True,
            )

    def test_timeout_recorded_as_timeout_result(self):
        spec = BenchmarkSpec(scale=8, trials={"cc": 1}, trial_timeout=0.05)
        started = time.monotonic()
        results = run_suite(
            [SleepyCC()], ["kron"], kernels=["cc"], modes=[Mode.BASELINE], spec=spec
        )
        assert time.monotonic() - started < 2.0
        failure = results.failures()[0]
        assert failure.status == "timeout"
        assert "deadline" in failure.error

    def test_failed_results_roundtrip_json(self, tmp_path):
        results = run_suite(
            [FaultyCC()], ["kron"], kernels=["cc"], modes=[Mode.BASELINE],
            spec=TINY_SPEC,
        )
        path = tmp_path / "results.json"
        results.save_json(path)
        from repro.core import ResultSet

        back = ResultSet.load_json(path)
        assert back.results[0].status == "error"
        assert not back.results[0].ok
        assert "injected fault" in back.results[0].error

    def test_failed_cells_excluded_from_tables(self):
        from repro.core.tables import table4_rows, table5_rows

        results = run_suite(
            [GAPReference(), FaultyCC()],
            ["kron"],
            kernels=["cc"],
            modes=[Mode.BASELINE],
            spec=TINY_SPEC,
        )
        t4 = {row["Kernel"]: row for row in table4_rows(results, ["kron"])}
        assert t4["CC"]["baseline:kron:winner"] == "gap"
        t5 = [r for r in table5_rows(results, ["kron"]) if r["Framework"] == "faulty"]
        assert all(row["baseline:kron"] is None for row in t5)

    def test_trial_statistics_rows_only_ok_cells(self):
        results = run_suite(
            [GAPReference(), FaultyCC()],
            ["kron"],
            kernels=["cc"],
            modes=[Mode.BASELINE],
            spec=TINY_SPEC,
        )
        rows = trial_statistics_rows(results)
        assert {row["Framework"] for row in rows} == {"gap"}
        assert all(row["p95 (s)"] >= row["p50 (s)"] for row in rows)


class TestCLI:
    @pytest.fixture
    def faulty_registry(self, monkeypatch):
        """Register the test-only faulty framework under the CLI's nose."""
        import repro.__main__ as cli
        from repro.frameworks import registry

        monkeypatch.setitem(registry._LOADERS, "faulty", FaultyCC)
        monkeypatch.delitem(registry._instances, "faulty", raising=False)
        extended = registry.EXTENDED_FRAMEWORK_NAMES + ("faulty",)
        monkeypatch.setattr(registry, "EXTENDED_FRAMEWORK_NAMES", extended)
        monkeypatch.setattr(cli, "EXTENDED_FRAMEWORK_NAMES", extended)

    def test_non_strict_run_exits_zero_and_reports(
        self, faulty_registry, tmp_path, capsys
    ):
        from repro.__main__ import main

        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "run", "--scale", "8", "--graphs", "kron", "--kernels", "bfs,cc",
                "--frameworks", "gap,faulty", "--modes", "baseline",
                "--trace", str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 failed" in out
        assert "Failures" in out
        assert any(r["status"] == "error" for r in read_trace(trace))

    def test_strict_run_exits_nonzero(self, faulty_registry, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run", "--scale", "8", "--graphs", "kron", "--kernels", "cc",
                "--frameworks", "gap,faulty", "--modes", "baseline", "--strict",
            ]
        )
        assert code != 0
        assert "suite aborted" in capsys.readouterr().err

    def test_timeout_flag_rejects_hung_kernel(self, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro.frameworks import registry

        monkeypatch.setitem(registry._LOADERS, "sleepy", SleepyCC)
        monkeypatch.delitem(registry._instances, "sleepy", raising=False)
        extended = registry.EXTENDED_FRAMEWORK_NAMES + ("sleepy",)
        monkeypatch.setattr(registry, "EXTENDED_FRAMEWORK_NAMES", extended)
        monkeypatch.setattr(cli, "EXTENDED_FRAMEWORK_NAMES", extended)
        from repro.__main__ import main

        code = main(
            [
                "run", "--scale", "8", "--graphs", "kron", "--kernels", "cc",
                "--frameworks", "sleepy", "--modes", "baseline",
                "--timeout", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "timeout" in out
