"""Tests for the GAP output verifiers: accept good output, reject corrupted."""

import numpy as np
import pytest

from repro.core.verify import (
    reference_bfs_depths,
    verify_bc,
    verify_bfs,
    verify_cc,
    verify_pr,
    verify_sssp,
    verify_tc,
)
from repro.errors import VerificationError
from repro.frameworks import get
from repro.generators import weighted_version


@pytest.fixture(scope="module")
def gap():
    return get("gap")


class TestBFSVerifier:
    def test_accepts_correct(self, gap, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        verify_bfs(graph, source, gap.bfs(graph, source))

    def test_rejects_wrong_parent(self, gap, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        parents = gap.bfs(graph, source)
        victim = int(np.flatnonzero((parents >= 0) & (np.arange(graph.num_vertices) != source))[0])
        parents[victim] = victim  # self-parent lie
        with pytest.raises(VerificationError):
            verify_bfs(graph, source, parents)

    def test_rejects_missing_vertex(self, gap, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        parents = gap.bfs(graph, source)
        reached = np.flatnonzero(parents >= 0)
        parents[reached[-1]] = -1
        with pytest.raises(VerificationError):
            verify_bfs(graph, source, parents)

    def test_rejects_bad_source(self, gap, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        parents = gap.bfs(graph, source)
        parents[source] = -1
        with pytest.raises(VerificationError):
            verify_bfs(graph, source, parents)

    def test_reference_depths(self, tiny_graph):
        depths = reference_bfs_depths(tiny_graph, 0)
        assert depths.tolist() == [0, 1, 1, 2, -1, -1, -1]


class TestSSSPVerifier:
    def test_accepts_correct(self, gap, corpus):
        graph = weighted_version(corpus["road"])
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        verify_sssp(graph, source, gap.sssp(graph, source))

    def test_rejects_perturbed(self, gap, corpus):
        graph = weighted_version(corpus["road"])
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        dist = gap.sssp(graph, source)
        finite = np.flatnonzero(np.isfinite(dist) & (dist > 0))
        dist[finite[0]] -= 0.5
        with pytest.raises(VerificationError):
            verify_sssp(graph, source, dist)


class TestCCVerifier:
    def test_accepts_correct(self, gap, corpus):
        graph = corpus["urand"]
        verify_cc(graph, gap.connected_components(graph))

    def test_rejects_split_component(self, gap, corpus):
        graph = corpus["urand"]
        labels = gap.connected_components(graph)
        most_common = np.bincount(labels).argmax()
        members = np.flatnonzero(labels == most_common)
        labels[members[0]] = int(labels.max()) + 1
        with pytest.raises(VerificationError):
            verify_cc(graph, labels)

    def test_rejects_merged_components(self, gap, tiny_graph):
        labels = gap.connected_components(tiny_graph)
        labels[:] = 0  # everything one component: wrong
        with pytest.raises(VerificationError):
            verify_cc(tiny_graph, labels)


class TestPRVerifier:
    def test_accepts_correct(self, gap, corpus):
        graph = corpus["twitter"]
        verify_pr(graph, gap.pagerank(graph))

    def test_rejects_uniform_vector(self, corpus):
        graph = corpus["twitter"]
        n = graph.num_vertices
        with pytest.raises(VerificationError):
            verify_pr(graph, np.full(n, 1.0 / n))

    def test_rejects_negative(self, gap, corpus):
        graph = corpus["twitter"]
        scores = gap.pagerank(graph)
        scores[0] = -0.1
        with pytest.raises(VerificationError):
            verify_pr(graph, scores)

    def test_rejects_nan(self, gap, corpus):
        graph = corpus["twitter"]
        scores = gap.pagerank(graph)
        scores[0] = np.nan
        with pytest.raises(VerificationError):
            verify_pr(graph, scores)


class TestBCVerifier:
    def test_accepts_close(self):
        reference = np.array([1.0, 2.0, 3.0])
        verify_bc(reference, reference + 1e-9)

    def test_rejects_divergent(self):
        with pytest.raises(VerificationError):
            verify_bc(np.array([1.0, 2.0]), np.array([1.0, 3.0]))


class TestTCVerifier:
    def test_accepts_correct(self, gap, triangle_graph):
        verify_tc(triangle_graph, 5)

    def test_rejects_wrong_count(self, triangle_graph):
        with pytest.raises(VerificationError):
            verify_tc(triangle_graph, 4)

    def test_directed_input_symmetrized(self, gap, corpus):
        graph = corpus["twitter"]
        count = gap.triangle_count(graph)
        verify_tc(graph, count)
