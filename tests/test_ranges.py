"""Tests for the NWGraph-style range substrate."""

import numpy as np

from repro.ranges import (
    AdjacencyView,
    EdgeRange,
    ExecutionPolicy,
    count_if,
    exclusive_scan,
    for_each,
    neighbor_range,
    transform_reduce,
)


class TestAdjacencyView:
    def test_outer_range_length(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        assert len(view) == tiny_graph.num_vertices

    def test_inner_ranges_match_graph(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        for v in tiny_graph.vertices():
            assert view[v].tolist() == tiny_graph.neighbors(v).tolist()

    def test_in_edges_view(self, tiny_graph):
        view = AdjacencyView.in_edges(tiny_graph)
        assert set(view[2].tolist()) == {0, 1}

    def test_iteration(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        rows = list(view)
        assert len(rows) == tiny_graph.num_vertices

    def test_expand(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        srcs, tgts = view.expand(np.array([0, 1]))
        assert srcs.tolist() == [0, 0, 1]
        assert tgts.tolist() == [1, 2, 2]

    def test_expand_empty(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        srcs, tgts = view.expand(np.array([4], dtype=np.int64))
        assert srcs.size == tgts.size == 0

    def test_expand_with_properties_unweighted(self, tiny_graph):
        view = AdjacencyView.out_edges(tiny_graph)
        _, _, weights = view.expand_with_properties(np.array([0]))
        assert weights.tolist() == [1.0, 1.0]

    def test_properties_weighted(self):
        from repro.generators import build_graph, weighted_version

        g = weighted_version(build_graph("road", scale=7))
        view = AdjacencyView.out_edges(g)
        v = int(np.flatnonzero(g.out_degrees > 0)[0])
        assert np.array_equal(view.properties(v), g.neighbor_weights(v))

    def test_neighbor_range_helper(self, tiny_graph):
        assert neighbor_range(tiny_graph, 0).tolist() == [1, 2]


class TestEdgeRange:
    def test_length(self, tiny_graph):
        assert len(EdgeRange(tiny_graph)) == tiny_graph.num_edges

    def test_cyclic_blocks_partition(self, tiny_graph):
        er = EdgeRange(tiny_graph)
        total = sum(src.size for src, _ in er.cyclic_blocks(3))
        assert total == len(er)


class TestAlgorithms:
    def test_transform_reduce(self):
        assert transform_reduce([1, 2, 3], lambda x: x * 2) == 12

    def test_transform_reduce_init(self):
        assert transform_reduce([], lambda x: x, init=5.0) == 5.0

    def test_for_each(self):
        acc = []
        for_each([1, 2], acc.append, policy=ExecutionPolicy.SEQ)
        assert acc == [1, 2]

    def test_exclusive_scan(self):
        out = exclusive_scan(np.array([1.0, 2.0, 3.0]))
        assert out.tolist() == [0.0, 1.0, 3.0]

    def test_count_if(self):
        assert count_if(np.array([1, -2, 3]), lambda v: v > 0) == 2
