"""Tests for the run archive, environment fingerprint, and results schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.results import RESULTS_SCHEMA_VERSION, ResultSet, RunResult
from repro.core.telemetry import Span
from repro.errors import ArchiveError
from repro.frameworks import Mode
from repro.store import RunArchive, fingerprint, version_string
from repro.store.environment import fingerprint_mismatches


def _result(kernel="bfs", trials=(1.0, 1.1), status="ok"):
    return RunResult(
        framework="gap",
        kernel=kernel,
        graph="kron",
        mode=Mode.BASELINE,
        trial_seconds=list(trials),
        status=status,
    )


def _results(*cells, meta=None):
    return ResultSet(list(cells), meta=meta)


class TestResultsSchema:
    def test_save_json_stamps_schema_version(self, tmp_path):
        path = tmp_path / "r.json"
        _results(_result()).save_json(path)
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == RESULTS_SCHEMA_VERSION
        assert raw["results"][0]["trial_seconds"] == [1.0, 1.1]

    def test_meta_round_trips(self, tmp_path):
        path = tmp_path / "r.json"
        _results(_result(), meta={"spec": {"scale": 9}}).save_json(path)
        loaded = ResultSet.load_json(path)
        assert loaded.meta["spec"]["scale"] == 9

    def test_legacy_bare_list_payload_still_loads(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([_result().as_dict()]), encoding="ascii")
        loaded = ResultSet.load_json(path)
        assert len(loaded) == 1
        assert loaded.meta == {}
        assert loaded.results[0].trial_seconds == [1.0, 1.1]

    def test_save_is_atomic_no_tmp_residue(self, tmp_path):
        path = tmp_path / "r.json"
        _results(_result()).save_json(path)
        _results(_result(), _result(kernel="cc")).save_json(path)
        assert len(ResultSet.load_json(path)) == 2
        residue = [p for p in tmp_path.iterdir() if p.name != "r.json"]
        assert residue == []

    def test_committed_legacy_results_file_loads(self):
        # The pre-gate campaign artifact in results/ is a v1 payload.
        legacy = Path(__file__).resolve().parents[1] / "results" / "full_scale13.json"
        assert len(ResultSet.load_json(legacy)) > 0


class TestEnvironment:
    def test_fingerprint_keys(self):
        env = fingerprint()
        for key in ("python", "numpy", "machine", "cpu_count", "repro_version"):
            assert env[key] is not None

    def test_version_string_contains_package_version(self):
        from repro import __version__

        assert version_string().startswith(__version__)

    def test_git_sha_env_override(self, monkeypatch):
        from repro.store.environment import git_sha

        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeefcafe0123")
        assert git_sha() == "deadbeefcafe"

    def test_mismatch_detection(self):
        a = fingerprint()
        b = dict(a, numpy="0.0.1")
        assert fingerprint_mismatches(a, b) == ["numpy"]
        assert fingerprint_mismatches(a, dict(a)) == []
        assert fingerprint_mismatches(None, a) == []


class TestRunArchive:
    def test_archive_run_layout(self, tmp_path):
        store = RunArchive(tmp_path / "arch")
        span = Span(name="cell", attributes={"kernel": "bfs"})
        record = store.archive_run(
            _results(_result()),
            spec={"scale": 9},
            spans=[span],
            source="test",
        )
        assert (record.path / "results.json").exists()
        assert (record.path / "manifest.json").exists()
        assert (record.path / "spans.jsonl").exists()
        manifest = record.manifest
        assert manifest["run_id"] == record.run_id
        assert manifest["spec"] == {"scale": 9}
        assert manifest["cells"] == 1
        assert manifest["environment"]["python"]
        assert manifest["version"] == version_string()

    def test_per_trial_times_survive_archival(self, tmp_path):
        store = RunArchive(tmp_path)
        trials = [0.5, 0.25, 0.75]
        record = store.archive_run(_results(_result(trials=trials)))
        loaded = record.load_results()
        assert loaded.results[0].trial_seconds == trials

    def test_content_addressed_and_idempotent(self, tmp_path):
        store = RunArchive(tmp_path)
        results = _results(_result())
        first = store.archive_run(results, spec={"scale": 9})
        again = store.archive_run(results, spec={"scale": 9})
        assert first.run_id == again.run_id
        assert len(store.list_runs()) == 1

    def test_different_content_gets_different_ids(self, tmp_path):
        store = RunArchive(tmp_path)
        a = store.archive_run(_results(_result(trials=(1.0,))))
        b = store.archive_run(_results(_result(trials=(2.0,))))
        assert a.run_id != b.run_id
        assert len(store.list_runs()) == 2

    def test_history_lists_two_runs_of_the_same_spec(self, tmp_path):
        store = RunArchive(tmp_path)
        store.archive_run(_results(_result(trials=(1.0,))), spec={"scale": 9})
        store.archive_run(_results(_result(trials=(1.01,))), spec={"scale": 9})
        entries = store.list_runs()
        assert len(entries) == 2
        assert all(entry["cells"] == 1 for entry in entries)

    def test_lookup_latest_and_prefix(self, tmp_path):
        store = RunArchive(tmp_path)
        a = store.archive_run(_results(_result(trials=(1.0,))))
        b = store.archive_run(_results(_result(trials=(2.0,))))
        assert store.lookup("latest").run_id == b.run_id
        assert store.lookup(a.run_id[:6]).run_id == a.run_id

    def test_lookup_errors(self, tmp_path):
        store = RunArchive(tmp_path)
        with pytest.raises(ArchiveError):
            store.lookup("latest")  # empty archive
        store.archive_run(_results(_result(trials=(1.0,))))
        with pytest.raises(ArchiveError):
            store.lookup("zzzzzz")

    def test_ambiguous_prefix_rejected(self, tmp_path):
        store = RunArchive(tmp_path)
        ids = set()
        for n in range(8):
            rec = store.archive_run(_results(_result(trials=(float(n + 1),))))
            ids.add(rec.run_id)
        common = ""  # find a prefix shared by >= 2 ids, if any
        for length in range(1, 12):
            prefixes = {}
            for run_id in ids:
                prefixes.setdefault(run_id[:length], []).append(run_id)
            shared = [p for p, rs in prefixes.items() if len(rs) > 1]
            if shared:
                common = shared[0]
                break
        if not common:
            pytest.skip("no shared prefix among sampled run ids")
        with pytest.raises(ArchiveError):
            store.lookup(common)

    def test_index_rebuilt_from_manifests_when_lost(self, tmp_path):
        store = RunArchive(tmp_path)
        record = store.archive_run(_results(_result()))
        store.index_path.unlink()
        entries = store.list_runs()
        assert [entry["run_id"] for entry in entries] == [record.run_id]
        assert store.lookup("latest").run_id == record.run_id

    def test_spans_persisted_and_reloadable(self, tmp_path):
        store = RunArchive(tmp_path)
        spans = [
            Span(name="cell", attributes={"kernel": "bfs"}, wall_seconds=0.5),
            Span(name="cell", attributes={"kernel": "cc"}, wall_seconds=0.25),
        ]
        record = store.archive_run(_results(_result()), spans=spans)
        loaded = record.load_spans()
        assert [rec["kernel"] for rec in loaded] == ["bfs", "cc"]
        # The persisted records are Span.from_dict-compatible.
        rebuilt = Span.from_dict(loaded[0])
        assert rebuilt.name == "cell"
        assert rebuilt.wall_seconds == 0.5

    def test_telemetry_records_match_sink_output(self):
        from repro.core.telemetry import Telemetry

        telemetry = Telemetry()
        with telemetry.span("cell", kernel="bfs"):
            pass
        records = telemetry.records()
        assert len(records) == 1
        assert records[0]["span"] == "cell"
        assert records[0]["kernel"] == "bfs"

    def test_failure_counts_in_manifest(self, tmp_path):
        store = RunArchive(tmp_path)
        record = store.archive_run(
            _results(_result(), _result(kernel="cc", trials=(), status="error"))
        )
        assert record.manifest["cells"] == 2
        assert record.manifest["failures"] == 1


class TestResolve:
    def test_ambiguous_error_lists_all_matches(self, tmp_path):
        store = RunArchive(tmp_path)
        ids = sorted(
            store.archive_run(_results(_result(trials=(float(n + 1),)))).run_id
            for n in range(16)
        )
        # The empty prefix matches everything, so the ambiguity path is
        # exercised deterministically with single-character prefixes.
        prefixes = {}
        for run_id in ids:
            prefixes.setdefault(run_id[0], []).append(run_id)
        shared = next((p for p, rs in prefixes.items() if len(rs) > 1), None)
        if shared is None:
            pytest.skip("no shared one-char prefix among sampled run ids")
        expected = sorted(prefixes[shared])
        with pytest.raises(ArchiveError) as excinfo:
            store.resolve(shared)
        message = str(excinfo.value)
        assert f"matches {len(expected)} runs" in message
        for run_id in expected:
            assert run_id in message
        assert "add more digits" in message

    def test_exact_run_id_wins_over_prefix_ambiguity(self, tmp_path):
        store = RunArchive(tmp_path)
        record = store.archive_run(_results(_result()))
        # An exact id resolves even if it is also a prefix of itself.
        assert store.resolve(record.run_id) == record.run_id

    def test_resolve_falls_back_to_directory_scan(self, tmp_path):
        store = RunArchive(tmp_path)
        record = store.archive_run(_results(_result()))
        store.index_path.unlink()  # stale/lost index must not hide runs
        assert store.resolve(record.run_id[:8]) == record.run_id

    def test_resolve_empty_archive_message(self, tmp_path):
        store = RunArchive(tmp_path)
        with pytest.raises(ArchiveError) as excinfo:
            store.resolve("abc123")
        assert "no runs" in str(excinfo.value)

    def test_resolve_no_match_message(self, tmp_path):
        store = RunArchive(tmp_path)
        store.archive_run(_results(_result()))
        with pytest.raises(ArchiveError) as excinfo:
            store.resolve("zzzzzz")
        assert "zzzzzz" in str(excinfo.value)


def _archive_worker(root, barrier_token, queue):
    """Worker for the concurrent-archival race: everyone archives the
    same content simultaneously and reports the run id it observed."""
    try:
        store = RunArchive(root)
        results = ResultSet(
            [
                RunResult(
                    framework="gap",
                    kernel="bfs",
                    graph="kron",
                    mode=Mode.BASELINE,
                    trial_seconds=[1.0, 1.1],
                    status="ok",
                )
            ]
        )
        record = store.archive_run(results, source=f"racer-{barrier_token}")
        queue.put(("ok", record.run_id))
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("error", f"{type(exc).__name__}: {exc}"))


class TestConcurrentArchival:
    def test_two_processes_racing_same_run_id(self, tmp_path):
        """Two processes archiving identical content at once must both
        succeed with the same run id and leave index.json parseable."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        workers = [
            ctx.Process(target=_archive_worker, args=(str(tmp_path), n, queue))
            for n in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(30.0)
            assert worker.exitcode == 0
        outcomes = [queue.get() for _ in workers]
        statuses = {status for status, _ in outcomes}
        assert statuses == {"ok"}, outcomes
        run_ids = {run_id for _, run_id in outcomes}
        assert len(run_ids) == 1, "identical content must share one run id"

        store = RunArchive(tmp_path)
        payload = json.loads(store.index_path.read_text())
        entries = [e for e in payload["runs"] if e["run_id"] in run_ids]
        assert len(entries) == 1, "index must not duplicate the run"
        record = store.lookup(next(iter(run_ids)))
        assert len(record.load_results()) == 1
