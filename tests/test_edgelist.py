"""Unit and property tests for repro.graphs.edgelist."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graphs import EdgeList


def edge_list_strategy(max_n=32, max_m=120):
    """Random edge lists over a small vertex range."""
    return st.integers(2, max_n).flatmap(
        lambda n: st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_m,
        ).map(
            lambda pairs: EdgeList(
                n,
                np.array([p[0] for p in pairs], dtype=np.int64),
                np.array([p[1] for p in pairs], dtype=np.int64),
            )
        )
    )


class TestConstruction:
    def test_basic(self):
        el = EdgeList(3, np.array([0, 1]), np.array([1, 2]))
        assert el.num_edges == 2
        assert not el.is_weighted

    def test_empty(self):
        el = EdgeList(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert el.num_edges == 0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphFormatError):
            EdgeList(3, np.array([0, 1]), np.array([1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            EdgeList(2, np.array([0]), np.array([5]))

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphFormatError):
            EdgeList(2, np.array([-1]), np.array([0]))

    def test_rejects_weights_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            EdgeList(3, np.array([0]), np.array([1]), np.array([1.0, 2.0]))

    def test_weighted(self):
        el = EdgeList(3, np.array([0]), np.array([1]), np.array([7.0]))
        assert el.is_weighted


class TestTransforms:
    def test_without_self_loops(self):
        el = EdgeList(3, np.array([0, 1, 2]), np.array([0, 2, 2]))
        clean = el.without_self_loops()
        assert clean.num_edges == 1
        assert clean.src[0] == 1 and clean.dst[0] == 2

    def test_deduplicated(self):
        el = EdgeList(3, np.array([0, 0, 0]), np.array([1, 1, 2]))
        dedup = el.deduplicated()
        assert dedup.num_edges == 2

    def test_deduplicated_keeps_first_weight(self):
        el = EdgeList(
            3, np.array([0, 0]), np.array([1, 1]), np.array([5.0, 9.0])
        )
        dedup = el.deduplicated()
        assert dedup.num_edges == 1
        assert dedup.weights[0] == 5.0

    def test_symmetrized_contains_both_directions(self):
        el = EdgeList(3, np.array([0]), np.array([1]))
        sym = el.symmetrized()
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_reversed(self):
        el = EdgeList(3, np.array([0, 1]), np.array([1, 2]))
        rev = el.reversed()
        assert rev.src.tolist() == [1, 2]
        assert rev.dst.tolist() == [0, 1]

    def test_relabeled(self):
        el = EdgeList(3, np.array([0]), np.array([1]))
        out = el.relabeled(np.array([2, 0, 1]))
        assert out.src[0] == 2 and out.dst[0] == 0

    def test_relabeled_rejects_non_permutation(self):
        el = EdgeList(3, np.array([0]), np.array([1]))
        with pytest.raises(GraphFormatError):
            el.relabeled(np.array([0, 0, 1]))

    def test_uniform_weights_symmetric_pairs_match(self):
        rng = np.random.default_rng(0)
        el = EdgeList(
            4, np.array([0, 1, 2, 3]), np.array([1, 0, 3, 2])
        ).with_uniform_weights(rng)
        # (0,1)/(1,0) and (2,3)/(3,2) must share weights.
        assert el.weights[0] == el.weights[1]
        assert el.weights[2] == el.weights[3]

    def test_uniform_weights_in_range(self):
        rng = np.random.default_rng(1)
        el = EdgeList(
            10, np.arange(9), np.arange(1, 10)
        ).with_uniform_weights(rng, low=1, high=255)
        assert (el.weights >= 1).all() and (el.weights <= 255).all()


class TestProperties:
    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_dedup_idempotent(self, el):
        once = el.deduplicated()
        twice = once.deduplicated()
        assert once.num_edges == twice.num_edges

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_dedup_has_no_duplicates(self, el):
        dedup = el.deduplicated()
        pairs = list(zip(dedup.src.tolist(), dedup.dst.tolist()))
        assert len(pairs) == len(set(pairs))

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_symmetrized_is_symmetric(self, el):
        sym = el.symmetrized()
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_self_loop_removal_total(self, el):
        clean = el.without_self_loops()
        assert (clean.src != clean.dst).all()
