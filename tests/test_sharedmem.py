"""Shared-memory corpus tests: zero-copy attach, aliasing, lifecycle.

``repro/core/sharedmem.py`` publishes a prebuilt ``GraphCase`` as one
shared segment; workers attach read-only NumPy views.  These tests pin
the three properties the executor depends on: attached cases are
array-equal to the source, views are genuinely zero-copy over the shared
segment (a write through another mapping is visible), and the aliasing
invariants of ``GraphCase`` survive the trip.
"""

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import GraphCase
from repro.core.sharedmem import attach_case, export_case

SCALE = 8


@pytest.fixture(scope="module", params=["kron", "road", "urand"])
def case(request):
    return GraphCase.build(request.param, scale=SCALE)


def _assert_case_equal(attached, original):
    for view in ("graph", "weighted", "undirected"):
        got = getattr(attached, view)
        want = getattr(original, view)
        assert got.num_vertices == want.num_vertices
        assert got.directed == want.directed
        for field in ("indptr", "indices", "weights",
                      "in_indptr", "in_indices", "in_weights"):
            want_array = getattr(want, field)
            got_array = getattr(got, field)
            if want_array is None:
                assert got_array is None
            else:
                assert np.array_equal(got_array, want_array), (view, field)


def test_attach_round_trip(case):
    owner = export_case(case)
    try:
        attached = attach_case(owner.handle)
        try:
            _assert_case_equal(attached.case, case)
        finally:
            attached.close()
    finally:
        owner.close()


def test_attached_views_are_zero_copy(case):
    """A write through a second mapping is visible in the attached arrays."""
    owner = export_case(case)
    try:
        attached = attach_case(owner.handle)
        probe = shared_memory.SharedMemory(name=owner.handle.segment)
        try:
            offset, dtype, shape = owner.handle.arrays[0]
            writable = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=probe.buf, offset=offset)
            original = writable.ravel()[0]
            sentinel = original + 7
            writable.ravel()[0] = sentinel
            assert attached.case.graph.indptr.ravel()[0] == sentinel
            writable.ravel()[0] = original
        finally:
            del writable
            probe.close()
            attached.close()
    finally:
        owner.close()


def test_attached_views_are_read_only(case):
    owner = export_case(case)
    try:
        attached = attach_case(owner.handle)
        try:
            with pytest.raises(ValueError):
                attached.case.graph.indices[0] = 0
        finally:
            attached.close()
    finally:
        owner.close()


def test_aliasing_preserved(case):
    owner = export_case(case)
    try:
        attached = attach_case(owner.handle).case
        assert (attached.weighted is attached.graph) == (
            case.weighted is case.graph
        )
        assert (attached.undirected is attached.graph) == (
            case.undirected is case.graph
        )
        if not attached.graph.directed:
            assert attached.graph.in_indptr is attached.graph.indptr
    finally:
        owner.close()


def test_handle_is_picklable(case):
    """Handles cross process boundaries; CSR arrays must not ride along."""
    owner = export_case(case)
    try:
        blob = pickle.dumps(owner.handle)
        # Orders of magnitude smaller than the graph itself: layout only.
        assert len(blob) < 4096
        handle = pickle.loads(blob)
        attached = attach_case(handle)
        try:
            _assert_case_equal(attached.case, case)
        finally:
            attached.close()
    finally:
        owner.close()


def test_unlink_removes_segment(case):
    owner = export_case(case)
    segment = owner.handle.segment
    owner.close(unlink=True)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)
