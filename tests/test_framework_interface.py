"""Tests for the framework registry and common interface (Tables II/III)."""

import numpy as np
import pytest

from repro.errors import UnknownFrameworkError, UnknownKernelError
from repro.frameworks import (
    FRAMEWORK_NAMES,
    KERNELS,
    Mode,
    RunContext,
    all_frameworks,
    attributes_table,
    get,
)


class TestRegistry:
    def test_six_frameworks_in_paper_order(self):
        assert FRAMEWORK_NAMES == (
            "gap",
            "suitesparse",
            "galois",
            "nwgraph",
            "graphit",
            "gkc",
        )

    def test_get_caches(self):
        assert get("gap") is get("gap")

    def test_case_insensitive(self):
        assert get("GKC") is get("gkc")

    def test_unknown_rejected(self):
        with pytest.raises(UnknownFrameworkError):
            get("pregel")

    def test_extension_framework_available(self):
        # "ligra" is an extension: not in the paper's six, but buildable.
        assert get("ligra").name == "ligra"

    def test_all_frameworks(self):
        frameworks = all_frameworks()
        assert list(frameworks) == list(FRAMEWORK_NAMES)


class TestAttributes:
    def test_every_framework_declares_all_kernels(self):
        for name in FRAMEWORK_NAMES:
            algorithms = get(name).attributes.algorithms
            assert set(algorithms) == set(KERNELS), name

    def test_attributes_table_columns(self):
        rows = attributes_table()
        for row in rows:
            assert row["Type"]
            assert row["Programming Abstraction"]
            assert row["Intended Users"]

    def test_paper_taxonomy_spot_checks(self):
        assert get("suitesparse").attributes.abstraction == "sparse linear algebra"
        assert "domain-specific language" in get("graphit").attributes.framework_type
        assert "asynchronous" in get("galois").attributes.synchronization
        assert get("nwgraph").attributes.framework_type == "header-only library"

    def test_unmodelled_lists_exist(self):
        # Every reimplementation must disclose what it cannot model.
        for name in FRAMEWORK_NAMES:
            assert isinstance(get(name).attributes.unmodelled, tuple)


class TestRunKernelDispatch:
    def test_dispatch_matches_methods(self, corpus):
        graph = corpus["kron"]
        fw = get("gap")
        ctx = RunContext()
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        via_dispatch = fw.run_kernel("bfs", graph, ctx, source=source)
        direct = fw.bfs(graph, source, ctx)
        assert np.array_equal(via_dispatch, direct)

    def test_tc_dispatch(self, corpus):
        fw = get("gap")
        assert fw.run_kernel("tc", corpus["kron"], RunContext()) == fw.triangle_count(
            corpus["kron"]
        )

    def test_unknown_kernel(self, corpus):
        with pytest.raises(UnknownKernelError):
            get("gap").run_kernel("apsp", corpus["kron"], RunContext())


class TestRunContext:
    def test_defaults_baseline(self):
        ctx = RunContext()
        assert ctx.mode is Mode.BASELINE
        assert not ctx.optimized

    def test_optimized_flag(self):
        assert RunContext(mode=Mode.OPTIMIZED).optimized


class TestPrepareHook:
    def test_default_prepare_identity(self, corpus):
        graph = corpus["kron"]
        assert get("gap").prepare("tc", graph, RunContext()) is graph

    def test_galois_optimized_tc_prepare_relabels(self, corpus):
        graph = corpus["twitter"]
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="twitter")
        prepared = get("galois").prepare("tc", graph, ctx)
        assert prepared is not graph
        assert not prepared.directed

    def test_galois_baseline_tc_prepare_identity(self, corpus):
        graph = corpus["twitter"]
        assert get("galois").prepare("tc", graph, RunContext()) is graph
