"""Tests for repro.semiring.matrix."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DimensionMismatchError
from repro.semiring import Matrix


@pytest.fixture
def small_matrix(tiny_graph):
    return Matrix.from_graph(tiny_graph)


class TestConstruction:
    def test_from_graph_shape(self, tiny_graph, small_matrix):
        assert small_matrix.nrows == small_matrix.ncols == tiny_graph.num_vertices
        assert small_matrix.nvals == tiny_graph.num_edges

    def test_iso_when_unweighted(self, small_matrix):
        assert small_matrix.iso
        assert (small_matrix.value_array() == 1.0).all()

    def test_weighted_values(self):
        from repro.generators import build_graph, weighted_version

        g = weighted_version(build_graph("kron", scale=6))
        m = Matrix.from_graph(g, use_weights=True)
        assert not m.iso
        assert np.array_equal(m.values, g.weights.astype(np.float64))

    def test_transpose_prelinked(self, tiny_graph, small_matrix):
        t = small_matrix.T
        assert t.nvals == small_matrix.nvals
        # edge 0->1 exists, so T has 1->0.
        assert 0 in t.row(1).tolist()
        assert t.T is small_matrix

    def test_from_scipy(self):
        s = sp.csr_matrix(np.array([[0, 2.0], [3.0, 0]]))
        m = Matrix.from_scipy(s)
        assert m.nvals == 2
        assert m.row(0).tolist() == [1]

    def test_bad_indptr(self):
        with pytest.raises(DimensionMismatchError):
            Matrix(2, 2, np.array([0, 0]), np.empty(0, dtype=np.int64))


class TestSelections:
    def test_triangles_partition_symmetric_matrix(self, triangle_graph):
        m = Matrix.from_graph(triangle_graph)
        lower = m.select_lower_triangle()
        upper = m.select_upper_triangle()
        assert lower.nvals + upper.nvals == m.nvals
        assert lower.nvals == upper.nvals  # symmetry

    def test_lower_strictly_below_diagonal(self, triangle_graph):
        lower = Matrix.from_graph(triangle_graph).select_lower_triangle()
        rows = np.repeat(np.arange(lower.nrows), lower.row_degrees())
        assert (lower.indices < rows).all()

    def test_permuted_preserves_nvals(self, triangle_graph):
        m = Matrix.from_graph(triangle_graph)
        perm = np.arange(m.nrows)[::-1].copy()
        p = m.permuted(perm)
        assert p.nvals == m.nvals

    def test_permuted_moves_edges(self, small_matrix):
        n = small_matrix.nrows
        perm = (np.arange(n) + 1) % n  # shift
        p = small_matrix.permuted(perm)
        # edge 0->1 becomes 1->2
        assert 2 in p.row(1).tolist()

    def test_to_scipy_matches(self, small_matrix, tiny_graph):
        s = small_matrix.to_scipy()
        assert s.nnz == tiny_graph.num_edges
        assert s[0, 1] == 1.0
