"""Tests for the masked semiring products (vxm / mxv / mxm / reduce)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.graphs import CSRGraph
from repro.semiring import (
    ANY_SECONDI,
    MIN_PLUS,
    PLUS,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    Matrix,
    Vector,
    mxm_masked,
    mxv,
    reduce_matrix,
    vxm,
)


def dense_reference_vxm(u, a, add, multiply, n):
    """Plain-Python oracle for w' = u' * A over a semiring."""
    out = {}
    for k, uv in u.items():
        for j, av in a.get(k, {}).items():
            z = multiply(uv, av, k)
            out[j] = add(out[j], z) if j in out else z
    return out


def graph_to_dict(graph):
    return {
        int(u): {int(v): 1.0 for v in graph.neighbors(u)}
        for u in graph.vertices()
    }


@pytest.fixture
def matrix(tiny_graph):
    return Matrix.from_graph(tiny_graph)


class TestVxm:
    def test_plus_times_matches_dense(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0, 1]), np.array([2.0, 3.0]))
        w = vxm(u, matrix, PLUS_TIMES)
        oracle = dense_reference_vxm(
            {0: 2.0, 1: 3.0},
            graph_to_dict(tiny_graph),
            lambda a, b: a + b,
            lambda x, y, k: x * y,
            n,
        )
        assert dict(zip(w.indices().tolist(), w.entries()[1].tolist())) == oracle

    def test_min_plus(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0]), np.array([5.0]))
        w = vxm(u, matrix, MIN_PLUS)
        # 0 -> 1 and 0 -> 2 with implicit weight 1.
        assert dict(zip(w.indices().tolist(), w.entries()[1].tolist())) == {
            1: 6.0,
            2: 6.0,
        }

    def test_any_secondi_returns_source_index(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0]), np.array([0.0]))
        w = vxm(u, matrix, ANY_SECONDI)
        values = dict(zip(w.indices().tolist(), w.entries()[1].tolist()))
        assert values == {1: 0.0, 2: 0.0}  # parent is vertex 0

    def test_complement_mask(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0]), np.array([0.0]))
        mask = Vector.from_entries(n, np.array([1]), np.array([1.0]))
        w = vxm(u, matrix, ANY_SECONDI, mask=mask, complement=True)
        assert w.indices().tolist() == [2]

    def test_plain_mask(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0]), np.array([0.0]))
        mask = Vector.from_entries(n, np.array([1]), np.array([1.0]))
        w = vxm(u, matrix, ANY_SECONDI, mask=mask)
        assert w.indices().tolist() == [1]

    def test_empty_input(self, matrix):
        w = vxm(Vector.empty(matrix.nrows), matrix, PLUS_TIMES)
        assert w.nvals == 0

    def test_dimension_check(self, matrix):
        with pytest.raises(DimensionMismatchError):
            vxm(Vector.empty(matrix.nrows + 1), matrix, PLUS_TIMES)


class TestMxv:
    def test_pull_equals_push_on_transpose(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.from_entries(n, np.array([0, 3]), np.array([1.0, 2.0]))
        push = vxm(u, matrix, PLUS_TIMES)
        pull = mxv(matrix.T, u, PLUS_TIMES)
        assert push.indices().tolist() == pull.indices().tolist()
        assert np.allclose(push.entries()[1], pull.entries()[1])

    def test_masked_pull_computes_only_masked_rows(self, tiny_graph, matrix):
        n = tiny_graph.num_vertices
        u = Vector.full(n, 1.0)
        mask = Vector.from_entries(n, np.array([2]), np.array([1.0]))
        w = mxv(matrix, u, PLUS_TIMES, mask=mask)
        assert w.indices().tolist() == [2]
        # row 2 has a single out-edge (2 -> 3).
        assert w.entries()[1].tolist() == [1.0]

    def test_dense_fast_path_matches_general(self, corpus):
        graph = corpus["kron"]
        matrix = Matrix.from_graph(graph)
        n = graph.num_vertices
        rng = np.random.default_rng(0)
        values = rng.random(n)
        dense = Vector.full(n, values)
        sparse = Vector.from_entries(n, np.arange(n), values)
        fast = mxv(matrix, dense, PLUS_SECOND)
        slow = mxv(matrix, sparse, PLUS_SECOND)
        assert np.allclose(fast.to_numpy(), slow.to_numpy())

    def test_dimension_check(self, matrix):
        with pytest.raises(DimensionMismatchError):
            mxv(matrix, Vector.empty(matrix.ncols + 1), PLUS_TIMES)


class TestMxm:
    def test_triangle_identity(self, triangle_graph):
        matrix = Matrix.from_graph(triangle_graph)
        lower = matrix.select_lower_triangle()
        upper = matrix.select_upper_triangle()
        closed = mxm_masked(lower, upper.T, PLUS_PAIR, mask=lower)
        # Triangle 0-1-2 plus the 4-clique 4..7 (4 triangles) = 5.
        assert int(reduce_matrix(closed)) == 5

    def test_plus_monoid_required(self, triangle_graph):
        matrix = Matrix.from_graph(triangle_graph)
        with pytest.raises(DimensionMismatchError):
            mxm_masked(matrix, matrix, MIN_PLUS, mask=matrix)

    def test_inner_dimension_check(self, triangle_graph, tiny_graph):
        a = Matrix.from_graph(triangle_graph)
        b = Matrix.from_graph(tiny_graph)
        with pytest.raises(DimensionMismatchError):
            mxm_masked(a, b, PLUS_PAIR, mask=a)


class TestAgainstScipy:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_vxm_plus_times_random(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        density = 0.3
        dense = (rng.random((n, n)) < density).astype(np.float64)
        np.fill_diagonal(dense, 0.0)
        src, dst = np.nonzero(dense)
        if src.size == 0:
            return
        graph = CSRGraph.from_arrays(n, src, dst)
        matrix = Matrix.from_graph(graph)
        values = rng.random(n)
        u = Vector.from_entries(n, np.arange(n), values)
        w = vxm(u, matrix, PLUS_TIMES)
        oracle = values @ dense
        assert np.allclose(w.to_numpy(), oracle)
