"""Tests for the five GAP graph-analog generators."""

import numpy as np
import pytest

from repro.errors import InvalidValueError, UnknownGraphError
from repro.generators import (
    GAP_GRAPHS,
    GRAPH_NAMES,
    build_corpus,
    build_graph,
    rmat_edges,
    road_edges,
    twitter_edges,
    urand_edges,
    web_edges,
    weighted_version,
)
from repro.graphs import analyze


class TestRegistry:
    def test_five_graphs(self):
        assert GRAPH_NAMES == ("road", "twitter", "web", "kron", "urand")

    def test_unknown_name_rejected(self):
        with pytest.raises(UnknownGraphError):
            build_graph("facebook")

    def test_deterministic_across_calls(self):
        a = build_graph("kron", scale=8, seed=3)
        b = build_graph("kron", scale=8, seed=3)
        assert a == b

    def test_seed_changes_graph(self):
        a = build_graph("kron", scale=8, seed=1)
        b = build_graph("kron", scale=8, seed=2)
        assert a != b

    def test_build_corpus_covers_all(self):
        corpus = build_corpus(scale=7)
        assert set(corpus) == set(GRAPH_NAMES)

    def test_directedness_matches_table1(self):
        corpus = build_corpus(scale=7)
        assert corpus["road"].directed
        assert corpus["twitter"].directed
        assert corpus["web"].directed
        assert not corpus["kron"].directed
        assert not corpus["urand"].directed

    def test_paper_metadata_present(self):
        spec = GAP_GRAPHS["kron"]
        assert spec.paper_vertices_m == 134.2
        assert spec.paper_distribution == "power"


class TestTopologyClasses:
    """The generated analogs must reproduce Table I's topology contrasts."""

    def test_degree_distribution_classes(self, corpus):
        expected = {
            "road": "bounded",
            "twitter": "power",
            "web": "power",
            "kron": "power",
            "urand": "normal",
        }
        for name, graph in corpus.items():
            props = analyze(graph, name)
            assert props.degree_distribution == expected[name], name

    def test_diameter_ordering(self, corpus):
        diameters = {name: analyze(g, name).approx_diameter for name, g in corpus.items()}
        # Road >> everything else (Table I: 6304 vs <= 135).  Web's own
        # margin over the low-diameter trio only opens up at benchmark
        # scale, so here it is only required not to be smaller.
        assert diameters["road"] > 3 * diameters["web"]
        assert diameters["web"] >= diameters["kron"]
        assert diameters["web"] >= diameters["urand"]

    def test_road_degree_bounded(self, corpus):
        assert corpus["road"].out_degrees.max() <= 12

    def test_power_law_has_hubs(self, corpus):
        # Web's tail is window-limited at small scales, so its hub margin
        # is looser than the R-MAT graphs'.
        margins = {"twitter": 15, "web": 5, "kron": 15}
        for name, margin in margins.items():
            degrees = corpus[name].out_degrees
            assert degrees.max() > margin * max(degrees.mean(), 1), name


class TestIndividualGenerators:
    def test_rmat_rejects_bad_initiator(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidValueError):
            rmat_edges(4, 4, rng, initiator=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_vertex_count(self):
        rng = np.random.default_rng(0)
        edges = rmat_edges(6, 4, rng)
        assert edges.num_vertices == 64
        assert edges.num_edges == 4 * 64

    def test_urand_rejects_bad_scale(self):
        with pytest.raises(InvalidValueError):
            urand_edges(-1, 4, np.random.default_rng(0))

    def test_urand_uniformity(self):
        rng = np.random.default_rng(0)
        edges = urand_edges(10, 8, rng)
        counts = np.bincount(edges.src, minlength=1024)
        # Coefficient of variation of a Poisson(8) is ~0.35.
        assert counts.std() / counts.mean() < 0.6

    def test_road_rejects_tiny_scale(self):
        with pytest.raises(InvalidValueError):
            road_edges(1, np.random.default_rng(0))

    def test_road_mostly_two_way(self):
        rng = np.random.default_rng(0)
        edges = road_edges(10, rng)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        reciprocal = sum(1 for a, b in pairs if (b, a) in pairs)
        assert reciprocal / len(pairs) > 0.7

    def test_web_rejects_tiny_scale(self):
        with pytest.raises(InvalidValueError):
            web_edges(2, 8, np.random.default_rng(0))

    def test_web_locality(self):
        rng = np.random.default_rng(0)
        edges = web_edges(10, 16, rng)
        n = edges.num_vertices
        band = 2 * max(32, n // 256)  # hub spill band
        distance = np.minimum(
            np.abs(edges.src - edges.dst), n - np.abs(edges.src - edges.dst)
        )
        local_fraction = float((distance <= band).mean())
        assert local_fraction > 0.95

    def test_twitter_mostly_asymmetric(self):
        rng = np.random.default_rng(0)
        edges = twitter_edges(10, 8, rng)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        reciprocal = sum(1 for a, b in pairs if (b, a) in pairs and a < b)
        assert reciprocal < 0.25 * len(pairs)


class TestWeights:
    def test_weighted_version_range(self, corpus):
        weighted = weighted_version(corpus["road"])
        assert weighted.weights.min() >= 1
        assert weighted.weights.max() <= 255

    def test_weighted_version_idempotent(self, corpus):
        weighted = weighted_version(corpus["road"])
        assert weighted_version(weighted) is weighted

    def test_undirected_weights_symmetric(self, corpus):
        weighted = weighted_version(corpus["urand"])
        src, dst = weighted.edge_array()
        lookup = {
            (a, b): w
            for a, b, w in zip(src.tolist(), dst.tolist(), weighted.weights.tolist())
        }
        for (a, b), w in list(lookup.items())[:500]:
            assert lookup[(b, a)] == w

    def test_weighted_deterministic(self, corpus):
        a = weighted_version(corpus["kron"], seed=5)
        b = weighted_version(corpus["kron"], seed=5)
        assert np.array_equal(a.weights, b.weights)
