"""Cross-framework correctness: CC, PR, BC, TC on every corpus graph."""

import networkx as nx
import numpy as np
import pytest

from repro.frameworks import Mode, RunContext, get
from repro.graphs import CSRGraph


class TestCC:
    def test_partition_matches_networkx(self, framework, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        oracle = nx_corpus[name].to_undirected() if graph.directed else nx_corpus[name]
        labels = framework.connected_components(graph)
        components = list(nx.connected_components(oracle))
        assert len(set(labels.tolist())) == len(components), (framework.name, name)
        for component in components:
            ids = labels[list(component)]
            assert (ids == ids[0]).all(), (framework.name, name)

    def test_isolated_vertices_get_own_label(self, framework, tiny_graph):
        labels = framework.connected_components(tiny_graph)
        assert labels[4] not in np.delete(labels, 4)

    def test_optimized_mode_same_partition(self, framework, corpus_graph):
        name, graph = corpus_graph
        base = framework.connected_components(graph)
        opt = framework.connected_components(
            graph, RunContext(mode=Mode.OPTIMIZED, graph_name=name)
        )
        # Same partition (labels may differ).
        _, base_ids = np.unique(base, return_inverse=True)
        _, opt_ids = np.unique(opt, return_inverse=True)
        remap = {}
        for a, b in zip(base_ids.tolist(), opt_ids.tolist()):
            assert remap.setdefault(a, b) == b, (framework.name, name)


class TestPR:
    def test_close_to_networkx_pagerank(self, framework, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        scores = framework.pagerank(graph, tolerance=1e-10, max_iterations=200)
        oracle = nx.pagerank(nx_corpus[name], alpha=0.85, tol=1e-12, max_iter=500)
        # networkx redistributes dangling mass; our kernels (like GAP) drop
        # it, so compare after renormalizing both to sum 1.
        ours = scores / scores.sum()
        theirs = np.array([oracle[v] for v in range(graph.num_vertices)])
        theirs /= theirs.sum()
        assert np.abs(ours - theirs).max() < 5e-3, (framework.name, name)

    def test_all_frameworks_agree(self, corpus_graph):
        name, graph = corpus_graph
        reference = get("gap").pagerank(graph, tolerance=1e-10, max_iterations=300)
        for fw_name in ("suitesparse", "galois", "nwgraph", "graphit", "gkc"):
            scores = get(fw_name).pagerank(graph, tolerance=1e-10, max_iterations=300)
            assert np.abs(scores - reference).max() < 1e-6, (fw_name, name)

    def test_scores_positive(self, framework, corpus):
        scores = framework.pagerank(corpus["kron"])
        assert (scores > 0).all()

    def test_tolerance_controls_convergence(self, framework, corpus):
        from repro.core import counters

        with counters.counting() as loose:
            framework.pagerank(corpus["twitter"], tolerance=1e-2)
        with counters.counting() as tight:
            framework.pagerank(corpus["twitter"], tolerance=1e-8)
        assert tight.iterations > loose.iterations


class TestBC:
    def _exact_oracle(self, graph: CSRGraph, sources, oracle_graph) -> np.ndarray:
        """Unnormalized Brandes from a source subset via networkx."""
        scores = np.zeros(graph.num_vertices)
        bc = nx.betweenness_centrality_subset(
            oracle_graph,
            sources=[int(s) for s in sources],
            targets=list(oracle_graph.nodes),
            normalized=False,
        )
        for v, value in bc.items():
            scores[v] = value
        return scores

    def test_matches_networkx_subset(self, framework, tiny_graph):
        sources = np.array([0, 5])
        oracle_graph = nx.DiGraph()
        oracle_graph.add_nodes_from(range(7))
        src, dst = tiny_graph.edge_array()
        oracle_graph.add_edges_from(zip(src.tolist(), dst.tolist()))
        ours = framework.betweenness(tiny_graph, sources)
        oracle = self._exact_oracle(tiny_graph, sources, oracle_graph)
        assert np.allclose(ours, oracle), framework.name

    def test_all_frameworks_agree(self, corpus_graph):
        name, graph = corpus_graph
        rng = np.random.default_rng(2)
        candidates = np.flatnonzero(graph.out_degrees > 0)
        sources = rng.choice(candidates, size=4, replace=False)
        reference = get("gap").betweenness(graph, sources)
        for fw_name in ("suitesparse", "galois", "nwgraph", "graphit", "gkc"):
            scores = get(fw_name).betweenness(graph, sources)
            assert np.allclose(scores, reference), (fw_name, name)

    def test_source_score_zero_on_dag_root(self, framework, tiny_graph):
        scores = framework.betweenness(tiny_graph, np.array([5]))
        # From 5: only path 5 -> 6; no intermediate vertices.
        assert np.allclose(scores, 0.0)


class TestTC:
    def test_known_counts(self, framework, triangle_graph):
        # Triangle 0-1-2 plus K4 on 4..7 (4 triangles).
        assert framework.triangle_count(triangle_graph) == 5

    def test_matches_networkx(self, framework, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        oracle = nx_corpus[name].to_undirected() if graph.directed else nx_corpus[name]
        expected = sum(nx.triangles(oracle).values()) // 3
        assert framework.triangle_count(graph) == expected, (framework.name, name)

    def test_triangle_free(self, framework):
        # A star has no triangles.
        n = 10
        star = CSRGraph.from_arrays(
            n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n), directed=False
        )
        assert framework.triangle_count(star) == 0

    def test_complete_graph(self, framework):
        n = 8
        src, dst = np.meshgrid(np.arange(n), np.arange(n))
        mask = src != dst
        g = CSRGraph.from_arrays(n, src[mask], dst[mask], directed=False)
        assert framework.triangle_count(g) == n * (n - 1) * (n - 2) // 6

    def test_optimized_mode_same_count(self, framework, corpus_graph):
        name, graph = corpus_graph
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name=name)
        prepared = framework.prepare("tc", graph.to_undirected() if graph.directed else graph, ctx)
        assert framework.triangle_count(prepared, ctx) == framework.triangle_count(graph)
