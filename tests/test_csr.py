"""Unit and property tests for repro.graphs.csr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graphs import CSRGraph, EdgeList


def random_graph(draw, directed: bool):
    n = draw(st.integers(2, 24))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=80
        )
    )
    edges = EdgeList(
        n,
        np.array([p[0] for p in pairs], dtype=np.int64),
        np.array([p[1] for p in pairs], dtype=np.int64),
    )
    return CSRGraph.from_edge_list(edges, directed=directed)


directed_graphs = st.builds(lambda d: d, st.none()).flatmap(
    lambda _: st.composite(lambda draw: random_graph(draw, True))()
)
undirected_graphs = st.builds(lambda d: d, st.none()).flatmap(
    lambda _: st.composite(lambda draw: random_graph(draw, False))()
)


class TestConstruction:
    def test_tiny(self, tiny_graph):
        assert tiny_graph.num_vertices == 7
        assert tiny_graph.directed
        assert tiny_graph.num_edges == 7

    def test_adjacency_sorted_and_unique(self, tiny_graph):
        for v in tiny_graph.vertices():
            row = tiny_graph.neighbors(v)
            assert (np.diff(row) > 0).all()

    def test_self_loops_removed(self):
        g = CSRGraph.from_arrays(3, np.array([0, 1]), np.array([0, 2]))
        assert g.num_edges == 1

    def test_duplicates_removed(self):
        g = CSRGraph.from_arrays(3, np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert g.num_edges == 1

    def test_undirected_stores_both_orientations(self):
        g = CSRGraph.from_arrays(3, np.array([0]), np.array([1]), directed=False)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_undirected_edges == 1

    def test_directed_rejects_num_undirected(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            _ = tiny_graph.num_undirected_edges

    def test_degrees(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2  # 0->1, 0->2
        assert tiny_graph.in_degree(2) == 2  # 1->2, 0->2

    def test_degree_arrays_match_scalars(self, tiny_graph):
        for v in tiny_graph.vertices():
            assert tiny_graph.out_degrees[v] == tiny_graph.out_degree(v)
            assert tiny_graph.in_degrees[v] == tiny_graph.in_degree(v)

    def test_weights_travel(self):
        g = CSRGraph.from_arrays(
            3, np.array([0, 1]), np.array([1, 2]), np.array([5.0, 7.0])
        )
        assert g.is_weighted
        assert g.neighbor_weights(0).tolist() == [5.0]
        assert g.in_neighbor_weights(2).tolist() == [7.0]

    def test_unweighted_weight_access_raises(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            tiny_graph.neighbor_weights(0)

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                2,
                np.array([0, 1]),  # wrong length
                np.array([1]),
                None,
                np.array([0, 0, 1]),
                np.array([0]),
                None,
                directed=True,
            )


class TestQueries:
    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(4, 0)

    def test_edges_iterator_matches_edge_array(self, tiny_graph):
        from_iter = list(tiny_graph.edges())
        src, dst = tiny_graph.edge_array()
        assert from_iter == list(zip(src.tolist(), dst.tolist()))

    def test_in_neighbors(self, tiny_graph):
        assert set(tiny_graph.in_neighbors(2).tolist()) == {0, 1}

    def test_equality(self, tiny_graph):
        clone = CSRGraph.from_edge_list(tiny_graph.to_edge_list(), directed=True)
        assert clone == tiny_graph

    def test_inequality_different_edges(self, tiny_graph):
        other = CSRGraph.from_arrays(7, np.array([0]), np.array([1]))
        assert other != tiny_graph


class TestDerived:
    def test_transpose_swaps_directions(self, tiny_graph):
        t = tiny_graph.transpose()
        assert t.has_edge(1, 0)
        assert not t.has_edge(0, 1)

    def test_transpose_involution(self, tiny_graph):
        assert tiny_graph.transpose().transpose() == tiny_graph

    def test_transpose_of_undirected_is_self(self):
        g = CSRGraph.from_arrays(3, np.array([0]), np.array([1]), directed=False)
        assert g.transpose() is g

    def test_to_undirected(self, tiny_graph):
        u = tiny_graph.to_undirected()
        assert not u.directed
        assert u.has_edge(1, 0) and u.has_edge(0, 1)

    def test_to_edge_list_roundtrip(self, tiny_graph):
        rebuilt = CSRGraph.from_edge_list(tiny_graph.to_edge_list(), directed=True)
        assert rebuilt == tiny_graph


class TestHypothesis:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_undirected_symmetry(self, data):
        g = random_graph(data.draw, directed=False)
        src, dst = g.edge_array()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_indptr_monotone(self, data):
        g = random_graph(data.draw, directed=True)
        assert (np.diff(g.indptr) >= 0).all()
        assert g.indptr[-1] == g.indices.size

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_in_out_edge_counts_match(self, data):
        g = random_graph(data.draw, directed=True)
        assert g.out_degrees.sum() == g.in_degrees.sum() == g.num_edges

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_transpose_preserves_edge_count(self, data):
        g = random_graph(data.draw, directed=True)
        assert g.transpose().num_edges == g.num_edges
