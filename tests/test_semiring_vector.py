"""Tests for repro.semiring.vector (sparse/dense vectors with masks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import counters
from repro.errors import DimensionMismatchError, InvalidValueError
from repro.semiring import MIN, PLUS, Vector


def sparse_vectors(n=16):
    return st.lists(
        st.tuples(st.integers(0, n - 1), st.floats(-50, 50)), max_size=n
    ).map(
        lambda items: Vector.from_entries(
            n,
            np.array(sorted({k for k, _ in items}), dtype=np.int64),
            np.array([dict(items)[k] for k in sorted({k for k, _ in items})]),
        )
    )


class TestConstruction:
    def test_from_entries_sorts(self):
        v = Vector.from_entries(5, np.array([3, 1]), np.array([30.0, 10.0]))
        assert v.indices().tolist() == [1, 3]
        assert v.values_at(np.array([1, 3])).tolist() == [10.0, 30.0]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(InvalidValueError):
            Vector.from_entries(5, np.array([1, 1]), np.array([1.0, 2.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Vector.from_entries(5, np.array([1]), np.array([1.0, 2.0]))

    def test_full(self):
        v = Vector.full(4, 2.5)
        assert v.nvals == 4
        assert v.to_numpy().tolist() == [2.5] * 4

    def test_empty(self):
        assert Vector.empty(3).nvals == 0

    def test_dup_is_independent(self):
        v = Vector.from_entries(4, np.array([0]), np.array([1.0]))
        w = v.dup()
        w.assign_scalar(9.0)
        assert v.nvals == 1


class TestFormats:
    def test_roundtrip_preserves_entries(self):
        v = Vector.from_entries(6, np.array([1, 4]), np.array([7.0, 8.0]))
        v.to_dense()
        assert v.mode == "dense"
        assert v.nvals == 2
        v.to_sparse()
        assert v.mode == "sparse"
        assert v.indices().tolist() == [1, 4]

    def test_conversion_is_counted(self):
        v = Vector.from_entries(6, np.array([1]), np.array([1.0]))
        with counters.counting() as work:
            v.to_dense()
            v.to_sparse()
        assert work.extras.get("format_conversions") == 2

    def test_noop_conversion_not_counted(self):
        v = Vector.from_entries(6, np.array([1]), np.array([1.0]))
        with counters.counting() as work:
            v.to_sparse()
        assert "format_conversions" not in work.extras

    def test_contains_both_modes(self):
        v = Vector.from_entries(6, np.array([1, 4]), np.array([1.0, 2.0]))
        for _ in range(2):
            hits = v.contains(np.array([0, 1, 4, 5]))
            assert hits.tolist() == [False, True, True, False]
            v.to_dense()

    def test_contains_empty_vector(self):
        v = Vector.empty(4)
        assert v.contains(np.array([0, 1])).tolist() == [False, False]


class TestOps:
    def test_reduce_min(self):
        v = Vector.from_entries(5, np.array([0, 2]), np.array([4.0, -1.0]))
        assert v.reduce(MIN) == -1.0

    def test_reduce_empty_gives_identity(self):
        assert Vector.empty(5).reduce(PLUS) == 0.0

    def test_apply(self):
        v = Vector.from_entries(5, np.array([1]), np.array([3.0]))
        w = v.apply(lambda x: x * 2)
        assert w.values_at(np.array([1]))[0] == 6.0

    def test_select(self):
        v = Vector.from_entries(5, np.array([1, 2, 3]), np.array([1.0, -2.0, 3.0]))
        w = v.select(lambda vals, idx: vals > 0)
        assert w.indices().tolist() == [1, 3]

    def test_assign_scalar_masked(self):
        v = Vector.empty(5)
        mask = Vector.from_entries(5, np.array([1, 3]), np.array([1.0, 1.0]))
        v.assign_scalar(7.0, mask=mask)
        assert v.indices().tolist() == [1, 3]

    def test_assign_scalar_complement(self):
        v = Vector.empty(4)
        mask = Vector.from_entries(4, np.array([0]), np.array([1.0]))
        v.assign_scalar(5.0, mask=mask, complement=True)
        assert v.indices().tolist() == [1, 2, 3]

    def test_assign_vector_overwrites(self):
        v = Vector.from_entries(4, np.array([0]), np.array([1.0]))
        u = Vector.from_entries(4, np.array([0, 2]), np.array([9.0, 8.0]))
        v.assign_vector(u)
        assert v.values_at(np.array([0]))[0] == 9.0
        assert v.nvals == 2

    def test_assign_vector_masked(self):
        v = Vector.empty(4)
        u = Vector.from_entries(4, np.array([0, 2]), np.array([9.0, 8.0]))
        mask = Vector.from_entries(4, np.array([2]), np.array([1.0]))
        v.assign_vector(u, mask=mask)
        assert v.indices().tolist() == [2]

    def test_assign_into_dense(self):
        v = Vector.full(4, 0.0)
        u = Vector.from_entries(4, np.array([1]), np.array([5.0]))
        v.assign_vector(u)
        assert v.to_numpy().tolist() == [0.0, 5.0, 0.0, 0.0]

    def test_dimension_mismatch(self):
        v = Vector.empty(4)
        with pytest.raises(DimensionMismatchError):
            v.assign_vector(Vector.empty(5))

    @given(sparse_vectors())
    @settings(max_examples=30, deadline=None)
    def test_to_numpy_roundtrip(self, v):
        dense = v.to_numpy(fill=0.0)
        idx = v.indices()
        rebuilt = Vector.from_entries(v.n, idx, dense[idx])
        assert rebuilt.indices().tolist() == idx.tolist()

    @given(sparse_vectors())
    @settings(max_examples=30, deadline=None)
    def test_format_conversion_invariant(self, v):
        before = dict(zip(v.indices().tolist(), v.entries()[1].tolist()))
        v.to_dense()
        v.to_sparse()
        after = dict(zip(v.indices().tolist(), v.entries()[1].tolist()))
        assert before == after
