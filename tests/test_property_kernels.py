"""Extra property-based tests: invariants over random graphs and inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions import cdlp, lcc
from repro.frameworks import get
from repro.graphs import CSRGraph, EdgeList
from repro.ligra import VertexSubset, edge_map


def undirected_graphs(max_n=24, max_m=80):
    """Arbitrary small undirected graphs."""

    def build(args):
        n, pairs = args
        src = np.array([a % n for a, _ in pairs], dtype=np.int64)
        dst = np.array([b % n for _, b in pairs], dtype=np.int64)
        return CSRGraph.from_edge_list(EdgeList(n, src, dst), directed=False)

    return st.tuples(
        st.integers(2, max_n),
        st.lists(st.tuples(st.integers(0, 999), st.integers(0, 999)), max_size=max_m),
    ).map(build)


class TestExtensionInvariants:
    @given(undirected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_lcc_bounded(self, graph):
        values = lcc(graph)
        assert (values >= 0.0).all() and (values <= 1.0 + 1e-12).all()

    @given(undirected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_lcc_zero_without_triangles_nearby(self, graph):
        values = lcc(graph)
        degrees = graph.out_degrees
        assert (values[degrees < 2] == 0.0).all()

    @given(undirected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_cdlp_labels_within_components(self, graph):
        """A CDLP community can never span two weak components."""
        communities = cdlp(graph, max_iterations=5)
        components = get("gap").connected_components(graph)
        by_label: dict[int, set[int]] = {}
        for vertex, label in enumerate(communities.tolist()):
            by_label.setdefault(label, set()).add(int(components[vertex]))
        assert all(len(comps) == 1 for comps in by_label.values())

    @given(undirected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_cdlp_fixed_point(self, graph):
        """Running more iterations from a converged state changes nothing."""
        short = cdlp(graph, max_iterations=30)
        longer = cdlp(graph, max_iterations=60)
        assert np.array_equal(short, longer)


class TestLigraInvariants:
    @given(undirected_graphs(), st.integers(1, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_edge_map_direction_invariance(self, graph, threshold):
        """Whatever direction edge_map picks, the updated set is the same."""
        ids = np.flatnonzero(graph.out_degrees > 0)
        if ids.size == 0:
            return
        frontier = VertexSubset.from_ids(graph.num_vertices, ids[:3])

        def run(thr):
            hit = np.zeros(graph.num_vertices, dtype=bool)

            def update(sources, targets):
                hit[targets] = True
                return np.ones(targets.size, dtype=bool)

            out = edge_map(graph, frontier, update, threshold=thr)
            return set(out.ids().tolist()), set(np.flatnonzero(hit).tolist())

        sparse_out, sparse_hit = run(1)           # force sparse
        dense_out, dense_hit = run(10**9)         # force dense
        assert sparse_out == dense_out
        assert sparse_hit == dense_hit


class TestWorkCounterInvariants:
    @given(undirected_graphs())
    @settings(max_examples=15, deadline=None)
    def test_tc_agreement_on_random_graphs_with_weights_present(self, graph):
        """Weights must never affect triangle counts."""
        rng = np.random.default_rng(0)
        weighted = CSRGraph.from_edge_list(
            graph.to_edge_list().with_uniform_weights(rng), directed=False
        )
        assert get("gap").triangle_count(weighted) == get("gap").triangle_count(graph)
