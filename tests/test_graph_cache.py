"""Persistent graph-cache tests: round trips, keys, and corruption.

The cache's contract (``repro/graphs/cache.py``): a hit returns a case
array-equal to a freshly generated one with the exact aliasing structure,
a hit does **no** generator work, keys include the generator version so a
bump invalidates stale artifacts, and a corrupted or torn artifact
degrades to a miss — never to a wrong graph.
"""

import numpy as np
import pytest

from repro.core import BenchmarkSpec, GraphCase, build_case
from repro.core import runner as runner_mod
from repro.generators import GENERATOR_VERSION
from repro.graphs import GraphCache

SCALE = 8


@pytest.fixture()
def cache(tmp_path):
    return GraphCache(tmp_path)


def _store(cache, name, seed=0):
    case = GraphCase.build(name, scale=SCALE, seed=seed)
    cache.store_views(name, SCALE, seed, case.graph, case.weighted, case.undirected)
    return case


def _assert_graph_equal(loaded, fresh):
    assert loaded.num_vertices == fresh.num_vertices
    assert loaded.directed == fresh.directed
    for field in ("indptr", "indices", "weights", "in_indptr", "in_indices", "in_weights"):
        fresh_array = getattr(fresh, field)
        loaded_array = getattr(loaded, field)
        if fresh_array is None:
            assert loaded_array is None
        else:
            assert np.array_equal(loaded_array, fresh_array), field


@pytest.mark.parametrize("name", ["kron", "road", "urand"])
def test_round_trip_is_array_equal(cache, name):
    fresh = _store(cache, name)
    views = cache.load_views(name, SCALE, 0)
    assert views is not None
    graph, weighted, undirected = views
    _assert_graph_equal(graph, fresh.graph)
    _assert_graph_equal(weighted, fresh.weighted)
    _assert_graph_equal(undirected, fresh.undirected)
    assert cache.hits == 1


def test_round_trip_preserves_aliasing(cache):
    """View- and array-level aliasing survives the npz round trip."""
    fresh = _store(cache, "urand")  # undirected: undirected view is the graph
    graph, weighted, undirected = cache.load_views("urand", SCALE, 0)
    assert (fresh.undirected is fresh.graph) == (undirected is graph)
    assert (fresh.weighted is fresh.graph) == (weighted is graph)
    # An undirected graph's in-adjacency aliases its out-adjacency.
    if not graph.directed:
        assert graph.in_indptr is graph.indptr
        assert graph.in_indices is graph.indices


def test_cache_hit_does_no_generator_work(cache, monkeypatch):
    """A warm cache must satisfy build_case without touching the generator."""
    _store(cache, "kron")
    spec = BenchmarkSpec(scale=SCALE)

    def explode(*args, **kwargs):
        raise AssertionError("generator invoked on a warm cache")

    monkeypatch.setattr(runner_mod, "build_graph", explode)
    case = build_case("kron", spec, cache)
    assert case.name == "kron"
    assert cache.hits == 1


def test_build_case_populates_cache_on_miss(cache):
    spec = BenchmarkSpec(scale=SCALE)
    first = build_case("road", spec, cache)
    assert cache.misses == 1 and cache.hits == 0
    second = build_case("road", spec, cache)
    assert cache.hits == 1
    _assert_graph_equal(second.graph, first.graph)


def test_generator_version_bump_invalidates(tmp_path):
    old = GraphCache(tmp_path, version="test-1")
    _store(old, "kron")
    assert old.load_views("kron", SCALE, 0) is not None
    bumped = GraphCache(tmp_path, version="test-2")
    assert bumped.load_views("kron", SCALE, 0) is None
    assert bumped.misses == 1


def test_default_version_is_generator_version(cache):
    assert cache.version == GENERATOR_VERSION


def test_distinct_keys_per_scale_and_seed(cache):
    paths = {
        cache.path_for("kron", scale, seed)
        for scale in (8, 9)
        for seed in (0, 1)
    }
    assert len(paths) == 4


def test_corrupted_artifact_is_a_miss(cache):
    _store(cache, "kron")
    path = cache.path_for("kron", SCALE, 0)
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    path.write_bytes(bytes(payload))
    assert cache.load_views("kron", SCALE, 0) is None
    # A rebuild through build_case repairs the artifact.
    build_case("kron", BenchmarkSpec(scale=SCALE), cache)
    assert cache.load_views("kron", SCALE, 0) is not None


def test_missing_checksum_is_a_miss(cache):
    _store(cache, "kron")
    GraphCache._checksum_path(cache.path_for("kron", SCALE, 0)).unlink()
    assert cache.load_views("kron", SCALE, 0) is None


def test_store_leaves_no_temp_files(cache):
    _store(cache, "kron")
    leftovers = [p for p in cache.root.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
