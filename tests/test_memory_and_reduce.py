"""Tests for the memory-footprint estimates and matrix row reduction."""

import numpy as np
import pytest

from repro.core.memory import INDEX_WIDTH, csr_bytes, framework_footprints
from repro.semiring import MAX, MIN, PLUS, Matrix, reduce_rows
from repro.graphs import CSRGraph


class TestFootprints:
    def test_suitesparse_doubles_adjacency(self, corpus):
        graph = corpus["kron"]
        estimates = {e.framework: e for e in framework_footprints(graph)}
        assert (
            estimates["suitesparse"].adjacency_bytes
            == 2 * estimates["gap"].adjacency_bytes
        )

    def test_directed_counts_both_orientations(self, corpus):
        directed = corpus["twitter"]
        single = csr_bytes(directed, index_bytes=4)
        assert single.adjacency_bytes == 2 * directed.num_edges * 4

    def test_undirected_counts_once(self, corpus):
        undirected = corpus["kron"]
        single = csr_bytes(undirected, index_bytes=4)
        assert single.adjacency_bytes == undirected.num_edges * 4

    def test_weights_add_when_requested(self, corpus):
        graph = corpus["road"]
        plain = {e.framework: e for e in framework_footprints(graph, weighted=False)}
        weighted = {e.framework: e for e in framework_footprints(graph, weighted=True)}
        assert weighted["gap"].total_bytes > plain["gap"].total_bytes
        assert plain["gap"].weight_bytes == 0

    def test_all_frameworks_covered(self, corpus):
        estimates = framework_footprints(corpus["urand"])
        assert {e.framework for e in estimates} == set(INDEX_WIDTH)

    def test_as_row_fields(self, corpus):
        row = framework_footprints(corpus["urand"])[0].as_row()
        assert "Total (MiB)" in row and "Index width" in row


class TestReduceRows:
    @pytest.fixture
    def weighted_matrix(self):
        graph = CSRGraph.from_arrays(
            4,
            np.array([0, 0, 2]),
            np.array([1, 2, 3]),
            np.array([5.0, 3.0, 7.0]),
        )
        return Matrix.from_graph(graph, use_weights=True)

    def test_plus(self, weighted_matrix):
        reduced = reduce_rows(weighted_matrix, PLUS)
        assert reduced.indices().tolist() == [0, 2]
        assert reduced.entries()[1].tolist() == [8.0, 7.0]

    def test_min(self, weighted_matrix):
        reduced = reduce_rows(weighted_matrix, MIN)
        assert reduced.entries()[1].tolist() == [3.0, 7.0]

    def test_max(self, weighted_matrix):
        reduced = reduce_rows(weighted_matrix, MAX)
        assert reduced.entries()[1].tolist() == [5.0, 7.0]

    def test_empty_rows_absent(self, weighted_matrix):
        reduced = reduce_rows(weighted_matrix, PLUS)
        assert not bool(reduced.contains(np.array([1]))[0])

    def test_iso_matrix_counts_degrees(self, corpus):
        matrix = Matrix.from_graph(corpus["kron"])
        reduced = reduce_rows(matrix, PLUS)
        degrees = corpus["kron"].out_degrees
        occupied = np.flatnonzero(degrees > 0)
        assert np.array_equal(
            reduced.entries()[1], degrees[occupied].astype(float)
        )

    def test_empty_matrix(self):
        graph = CSRGraph.from_arrays(
            3, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert reduce_rows(Matrix.from_graph(graph), PLUS).nvals == 0
