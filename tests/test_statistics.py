"""Tests for the extended topology statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    assortativity,
    degree_histogram,
    global_clustering,
    reciprocity,
    summarize,
)

from .conftest import to_networkx


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self, corpus_graph):
        _, graph = corpus_graph
        histogram = degree_histogram(graph)
        assert sum(count for _, count in histogram) == graph.num_vertices

    def test_linear_bins(self):
        graph = CSRGraph.from_arrays(
            4, np.array([0, 0, 1]), np.array([1, 2, 2]), directed=True
        )
        histogram = dict(degree_histogram(graph, log_binned=False))
        assert histogram == {0: 2, 1: 1, 2: 1}

    def test_log_bins_monotone(self, corpus):
        bins = [low for low, _ in degree_histogram(corpus["kron"])]
        assert bins == sorted(bins)


class TestReciprocity:
    def test_undirected_is_one(self, corpus):
        assert reciprocity(corpus["urand"]) == 1.0

    def test_fully_reciprocal(self):
        graph = CSRGraph.from_arrays(
            2, np.array([0, 1]), np.array([1, 0]), directed=True
        )
        assert reciprocity(graph) == 1.0

    def test_one_way_is_zero(self):
        graph = CSRGraph.from_arrays(2, np.array([0]), np.array([1]), directed=True)
        assert reciprocity(graph) == 0.0

    def test_road_more_reciprocal_than_twitter(self, corpus):
        """Two-way streets vs asymmetric follows — a Table I class contrast."""
        assert reciprocity(corpus["road"]) > 2 * reciprocity(corpus["twitter"])


class TestAssortativity:
    def test_range(self, corpus_graph):
        _, graph = corpus_graph
        assert -1.0 <= assortativity(graph) <= 1.0

    def test_synthetic_power_law_disassortative(self, corpus):
        """Kronecker graphs are strongly disassortative (hub-leaf mixing)."""
        assert assortativity(corpus["kron"]) < 0.0

    def test_degenerate_graph(self):
        graph = CSRGraph.from_arrays(
            3, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert assortativity(graph) == 0.0


class TestGlobalClustering:
    def test_triangle(self):
        graph = CSRGraph.from_arrays(
            3, np.array([0, 1, 2]), np.array([1, 2, 0]), directed=False
        )
        assert global_clustering(graph) == pytest.approx(1.0)

    def test_star(self):
        graph = CSRGraph.from_arrays(
            5, np.zeros(4, dtype=np.int64), np.arange(1, 5), directed=False
        )
        assert global_clustering(graph) == 0.0

    def test_matches_networkx_transitivity(self, corpus, nx_corpus):
        graph = corpus["kron"]
        oracle = nx.transitivity(nx_corpus["kron"])
        assert global_clustering(graph) == pytest.approx(oracle)

    def test_web_more_clustered_than_urand(self, corpus):
        """Locality gives the web analog real clustering; ER has ~none."""
        assert global_clustering(corpus["web"]) > 3 * global_clustering(
            corpus["urand"]
        )


class TestSummarize:
    def test_row_fields(self, corpus):
        row = summarize(corpus["road"], "road").as_row()
        assert row["Name"] == "road"
        assert "p50/p90/p99 degree" in row

    def test_empty_graph(self):
        graph = CSRGraph.from_arrays(
            2, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        summary = summarize(graph)
        assert summary.max_out_degree == 0
        assert summary.global_clustering == 0.0
