"""Tests for the paper-data tables, shape comparator, and programmability."""

import pytest

from repro.core.comparison import (
    CellComparison,
    agreement_summary,
    compare_table5,
    framework_rank_correlation,
)
from repro.core.paper_data import (
    PAPER_GRAPH_ORDER,
    PAPER_TABLE4,
    PAPER_TABLE5,
    paper_table4,
    paper_table5,
)
from repro.core.programmability import kernel_sloc, programmability_table
from repro.core.results import ResultSet, RunResult
from repro.errors import UnknownFrameworkError, UnknownKernelError
from repro.frameworks import FRAMEWORK_NAMES, KERNELS, Mode


class TestPaperData:
    def test_complete_coverage(self):
        """Every framework/kernel/mode/graph cell of Table V is present."""
        for framework, kernels in PAPER_TABLE5.items():
            assert set(kernels) == set(KERNELS), framework
            for kernel, modes in kernels.items():
                for mode, values in modes.items():
                    assert mode in ("baseline", "optimized")
                    assert len(values) == 5, (framework, kernel, mode)

    def test_lookup_matches_table(self):
        # Spot checks against the published table.
        assert paper_table5("galois", "bfs", "road", Mode.BASELINE) == 351.04
        assert paper_table5("graphit", "cc", "road", Mode.BASELINE) == 0.17
        assert paper_table5("gkc", "cc", "urand", Mode.BASELINE) == 295.12
        assert paper_table5("suitesparse", "sssp", "road", Mode.BASELINE) == 0.35
        assert paper_table5("nwgraph", "pr", "road", Mode.OPTIMIZED) == 499.59

    def test_table4_lookup(self):
        assert paper_table4("tc", "road", Mode.BASELINE) == 0.028
        assert paper_table4("bfs", "web", Mode.OPTIMIZED) == 0.300
        assert set(PAPER_TABLE4) == set(KERNELS)

    def test_graph_order(self):
        assert PAPER_GRAPH_ORDER == ("web", "twitter", "road", "kron", "urand")


def _result(framework, kernel="bfs", graph="road", mode=Mode.BASELINE, seconds=1.0):
    return RunResult(
        framework=framework,
        kernel=kernel,
        graph=graph,
        mode=mode,
        trial_seconds=[seconds],
    )


class TestComparator:
    def test_direction_logic(self):
        fast = CellComparison("galois", "bfs", "road", Mode.BASELINE, 351.0, 140.0)
        assert fast.agrees
        slow_vs_fast = CellComparison("galois", "bfs", "road", Mode.BASELINE, 351.0, 40.0)
        assert not slow_vs_fast.agrees

    def test_parity_band_is_lenient(self):
        near = CellComparison("gkc", "bc", "kron", Mode.BASELINE, 101.6, 60.0)
        assert near.agrees  # paper value within the parity band

    def test_compare_pairs_cells(self):
        results = ResultSet(
            [
                _result("gap", seconds=1.0),
                _result("galois", seconds=0.5),
            ]
        )
        comparisons = compare_table5(results)
        assert len(comparisons) == 1
        cell = comparisons[0]
        assert cell.measured_percent == 200.0
        assert cell.paper_percent == 351.04
        assert cell.agrees

    def test_summary_counts(self):
        results = ResultSet(
            [
                _result("gap", seconds=1.0),
                _result("galois", seconds=0.5),   # agrees (both fast)
                _result("gap", kernel="cc", seconds=1.0),
                _result("galois", kernel="cc", seconds=0.2),  # paper 84.11: disagree
            ]
        )
        summary = agreement_summary(compare_table5(results))
        assert summary["cells"] == 2
        assert summary["direction_agreement"] == 0.5
        assert len(summary["disagreements"]) == 1

    def test_rank_correlation_perfect(self):
        comparisons = [
            CellComparison("x", "bfs", "road", Mode.BASELINE, 10.0, 1.0),
            CellComparison("x", "bfs", "kron", Mode.BASELINE, 20.0, 2.0),
            CellComparison("x", "bfs", "web", Mode.BASELINE, 30.0, 3.0),
        ]
        assert framework_rank_correlation(comparisons)["x"] == pytest.approx(1.0)


class TestProgrammability:
    def test_every_cell_positive(self):
        rows = programmability_table()
        assert len(rows) == len(KERNELS) + 1  # + totals
        for row in rows:
            for framework in FRAMEWORK_NAMES:
                assert row[framework] > 0

    def test_totals_row_sums(self):
        rows = programmability_table()
        totals = rows[-1]
        for framework in FRAMEWORK_NAMES:
            assert totals[framework] == sum(row[framework] for row in rows[:-1])

    def test_suitesparse_tc_most_concise(self):
        """The paper's point: TC in linear algebra is a one-liner formula."""
        algebra = kernel_sloc("suitesparse", "tc")
        assert algebra == min(kernel_sloc(fw, "tc") for fw in FRAMEWORK_NAMES)

    def test_unknown_names_rejected(self):
        with pytest.raises(UnknownFrameworkError):
            kernel_sloc("ligra", "bfs")
        with pytest.raises(UnknownKernelError):
            kernel_sloc("gap", "apsp")


class TestCLI:
    def test_graphs_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["graphs", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "road" in out

    def test_run_subcommand(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run",
                "--scale",
                "8",
                "--graphs",
                "kron",
                "--kernels",
                "cc",
                "--frameworks",
                "gap,gkc",
                "--modes",
                "baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table V" in out

    def test_unknown_framework_exits(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "--frameworks", "pregel"])

    def test_compare_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        results = ResultSet([_result("gap"), _result("galois", seconds=0.4)])
        path = tmp_path / "r.json"
        results.save_json(path)
        assert main(["compare", "--results", str(path)]) == 0
        out = capsys.readouterr().out
        assert "direction agreement" in out

    def test_compare_end_to_end_agreement_summary(self, tmp_path, capsys):
        """The compare subcommand against a full saved campaign: every
        line of the agreement summary must be present and consistent."""
        from repro.__main__ import main

        cells = []
        for index, kernel in enumerate(KERNELS):
            for graph in PAPER_GRAPH_ORDER:
                cells.append(
                    _result("gap", kernel=kernel, graph=graph, seconds=1.0)
                )
                cells.append(
                    _result(
                        "galois",
                        kernel=kernel,
                        graph=graph,
                        seconds=0.5 + 0.05 * index,
                    )
                )
        path = tmp_path / "campaign.json"
        ResultSet(cells).save_json(path)

        assert main(["compare", "--results", str(path)]) == 0
        out = capsys.readouterr().out
        # 6 kernels x 5 graphs x 1 mode for the one non-reference framework.
        assert f"cells: {len(KERNELS) * len(PAPER_GRAPH_ORDER)}" in out
        assert "direction agreement: " in out and "%" in out
        for kernel in KERNELS:
            assert f"'{kernel}'" in out  # per-kernel agreement entries
        assert "per framework:" in out and "'galois'" in out
        assert "rank correlation:" in out

    def test_compare_reads_schema_v2_payload(self, tmp_path, capsys):
        """compare must accept the enveloped (schema_version 2) file the
        runner now writes, not just the legacy bare list."""
        import json

        from repro.__main__ import main

        results = ResultSet(
            [_result("gap"), _result("galois", seconds=0.4)],
            meta={"spec": {"scale": 9}},
        )
        path = tmp_path / "r.json"
        results.save_json(path)
        assert json.loads(path.read_text())["schema_version"] >= 2
        assert main(["compare", "--results", str(path)]) == 0
        assert "direction agreement" in capsys.readouterr().out


class TestCLIExtras:
    def test_generate_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.graphs import read_edge_list

        out = tmp_path / "road.el"
        assert main(["generate", "road", "--scale", "8", "--out", str(out)]) == 0
        graph = read_edge_list(out)
        assert graph.directed
        assert graph.num_edges > 0

    def test_generate_weighted(self, tmp_path):
        from repro.__main__ import main
        from repro.graphs import read_edge_list

        out = tmp_path / "kron.wel"
        main(["generate", "kron", "--scale", "7", "--weighted", "--out", str(out)])
        graph = read_edge_list(out)
        assert graph.is_weighted

    def test_generate_unknown_graph(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["generate", "friendster", "--out", str(tmp_path / "x.el")])

    def test_report_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        results = ResultSet(
            [
                _result("gap", graph="kron"),
                _result("gkc", graph="kron", seconds=0.5),
            ]
        )
        results_path = tmp_path / "r.json"
        results.save_json(results_path)
        report_path = tmp_path / "report.md"
        assert main(
            ["report", "--results", str(results_path), "--out", str(report_path)]
        ) == 0
        assert "Table V" in report_path.read_text(encoding="utf-8")

    def test_run_accepts_extension_framework(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run", "--scale", "8", "--graphs", "kron", "--kernels", "cc",
                "--frameworks", "gap,ligra", "--modes", "baseline",
            ]
        )
        assert code == 0
        assert "ligra" in capsys.readouterr().out
