"""Process-pool executor tests: serial/parallel equivalence and hard kills.

Tier-1 guarantees pinned here:

* ``--jobs 2`` and ``--jobs 1`` produce identical cell orderings,
  statuses, verification outcomes, and machine-independent counters —
  timings are the only thing allowed to differ;
* worker telemetry merges into the parent collector (and its JSONL sink)
  with one span per cell;
* a kernel hung inside an uninterruptible region is hard-killed at its
  cell deadline, recorded as a ``timeout`` result, and the rest of the
  campaign completes.
"""

import dataclasses
import io
import json
import signal
import time

import numpy as np
import pytest

from repro.core import BenchmarkSpec, Telemetry, run_suite, run_suite_parallel
from repro.core.tables import failure_rows
from repro.errors import VerificationError
from repro.frameworks import KERNELS, Mode, RunContext
from repro.gapbs import GAPReference

SPEC = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})


class BrokenTC(GAPReference):
    """Deterministically fails verification (always one triangle short)."""

    attributes = dataclasses.replace(GAPReference.attributes, name="broken-tc")

    def triangle_count(self, graph, ctx=RunContext()):
        return super().triangle_count(graph, ctx) - 1


class HungCC(GAPReference):
    """Simulates a kernel stuck in one long C call.

    Neuters the in-process SIGALRM deadline (a trial inside one giant
    NumPy call never reaches the bytecode boundary where the handler
    would run) and spins forever: only the executor's hard kill can end
    the cell.
    """

    attributes = dataclasses.replace(GAPReference.attributes, name="hung-cc")

    def connected_components(self, graph, ctx=RunContext()):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        x = np.ones((64, 64))
        while True:
            x = x @ x
            x /= np.max(x)


def _campaign(jobs, telemetry=None, frameworks=None):
    return run_suite(
        frameworks if frameworks is not None else [GAPReference(), BrokenTC()],
        ["kron", "road"],
        kernels=["bfs", "cc", "tc"],
        modes=[Mode.BASELINE, Mode.OPTIMIZED],
        spec=SPEC,
        telemetry=telemetry,
        jobs=jobs,
    )


@pytest.fixture(scope="module")
def serial_and_parallel():
    serial_tel = Telemetry()
    parallel_tel = Telemetry()
    serial = _campaign(1, serial_tel)
    parallel = _campaign(2, parallel_tel)
    return serial, parallel, serial_tel, parallel_tel


def test_parallel_matches_serial_cells(serial_and_parallel):
    serial, parallel, _, _ = serial_and_parallel
    assert len(parallel) == len(serial) == 24
    assert [r.cell_key for r in parallel] == [r.cell_key for r in serial]


def test_parallel_matches_serial_outcomes(serial_and_parallel):
    serial, parallel, _, _ = serial_and_parallel
    for serial_result, parallel_result in zip(serial, parallel):
        assert parallel_result.status == serial_result.status
        assert parallel_result.verified == serial_result.verified
        # Machine-independent work counters are deterministic per cell.
        assert parallel_result.edges_examined == serial_result.edges_examined
        assert parallel_result.rounds == serial_result.rounds
        assert parallel_result.iterations == serial_result.iterations
    # The deliberately broken framework failed identically in both.
    broken = [r for r in parallel if not r.ok]
    assert broken and all(r.framework == "broken-tc" for r in broken)
    assert all(VerificationError.__name__ in r.error for r in broken)


def test_parallel_matches_serial_aggregates(serial_and_parallel):
    """Table aggregates agree once timings are excluded."""
    serial, parallel, _, _ = serial_and_parallel

    def shape(rows):
        return [
            {k: v for k, v in row.items() if "seconds" not in str(k)}
            for row in rows
        ]

    assert shape(failure_rows(parallel)) == shape(failure_rows(serial))
    assert parallel.frameworks() == serial.frameworks()
    assert len(parallel.failures()) == len(serial.failures())


def test_worker_spans_merge_into_parent_sink(serial_and_parallel):
    _, parallel, serial_tel, parallel_tel = serial_and_parallel
    assert len(parallel_tel.spans) == len(parallel)
    by_status = lambda tel: sorted(span.status for span in tel.spans)
    assert by_status(parallel_tel) == by_status(serial_tel)


def test_parallel_trace_jsonl_is_one_record_per_cell():
    sink = io.StringIO()
    telemetry = Telemetry(sink=sink)
    results = _campaign(2, telemetry)
    telemetry.close()
    records = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert len(records) == len(results)
    assert {(r["graph"], r["mode"], r["kernel"], r["framework"]) for r in records} \
        == {r.cell_key for r in results}


def test_spec_jobs_dispatches_to_executor():
    spec = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS}, jobs=2)
    results = run_suite([GAPReference()], ["kron"], kernels=["bfs"], spec=spec)
    assert len(results) == 2 and all(r.ok for r in results)


def test_hung_cell_is_hard_killed_and_campaign_continues():
    spec = BenchmarkSpec(
        scale=8, trials={k: 1 for k in KERNELS}, trial_timeout=0.4
    )
    telemetry = Telemetry()
    start = time.monotonic()
    results = run_suite_parallel(
        [GAPReference(), HungCC()],
        ["kron"],
        kernels=["cc"],
        modes=[Mode.BASELINE],
        spec=spec,
        jobs=2,
        telemetry=telemetry,
        kill_grace=0.6,
    )
    elapsed = time.monotonic() - start
    by_framework = {r.framework: r for r in results}
    assert by_framework["gap"].status == "ok"
    timed_out = by_framework["hung-cc"]
    assert timed_out.status == "timeout"
    assert "hard deadline" in timed_out.error
    assert timed_out.trial_seconds == [] and not timed_out.verified
    # The kill fired near the budget (1 trial x 0.4s + 0.6s grace), far
    # below any "wait for the kernel" horizon.
    assert elapsed < 15.0
    timeout_spans = [s for s in telemetry.spans if s.status == "timeout"]
    assert len(timeout_spans) == 1
    assert timeout_spans[0].attributes["kernel"] == "cc"


def test_strict_parallel_raises_on_failure():
    from repro.errors import CellFailedError

    with pytest.raises(CellFailedError):
        run_suite(
            [BrokenTC()],
            ["kron"],
            kernels=["tc"],
            modes=[Mode.BASELINE],
            spec=SPEC,
            jobs=2,
            strict=True,
        )
