"""Unit tests for the statistical comparison engine (repro.store.stats)."""

from __future__ import annotations

import pytest

from repro.core.results import ResultSet, RunResult
from repro.frameworks import Mode
from repro.store import (
    DEFAULT_NOISE_THRESHOLD,
    bootstrap_ratio_ci,
    classify_cells,
    summarize_deltas,
)


def _result(
    trials,
    framework="gap",
    kernel="bfs",
    graph="kron",
    mode=Mode.BASELINE,
    status="ok",
):
    return RunResult(
        framework=framework,
        kernel=kernel,
        graph=graph,
        mode=mode,
        trial_seconds=list(trials),
        status=status,
        verified=status == "ok",
        error="boom" if status != "ok" else "",
    )


class TestBootstrapRatioCI:
    def test_deterministic_for_a_seed(self):
        base = [1.0, 1.1, 0.9, 1.05]
        cand = [2.0, 2.2, 1.9, 2.1]
        assert bootstrap_ratio_ci(base, cand) == bootstrap_ratio_ci(base, cand)

    def test_ci_brackets_the_point_ratio(self):
        base = [1.0, 1.1, 0.9, 1.05]
        cand = [1.5, 1.6, 1.45, 1.55]
        low, high = bootstrap_ratio_ci(base, cand)
        point = min(cand) / min(base)
        assert low <= point <= high

    def test_identical_single_trials_collapse_to_point(self):
        low, high = bootstrap_ratio_ci([2.0], [3.0])
        assert low == pytest.approx(1.5)
        assert high == pytest.approx(1.5)

    def test_empty_side_gives_nan(self):
        import math

        low, high = bootstrap_ratio_ci([], [1.0])
        assert math.isnan(low) and math.isnan(high)


class TestClassification:
    def test_identical_runs_are_unchanged(self):
        base = ResultSet([_result([1.0, 1.02, 0.98])])
        cand = ResultSet([_result([1.0, 1.02, 0.98])])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "unchanged"
        assert not delta.gates

    def test_two_times_slower_is_regressed(self):
        base = ResultSet([_result([1.0, 1.05, 0.97, 1.02])])
        cand = ResultSet([_result([2.0, 2.1, 1.94, 2.04])])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "regressed"
        assert delta.gates
        assert delta.ratio == pytest.approx(2.0, rel=0.1)
        assert delta.ci_low > 1.0 + DEFAULT_NOISE_THRESHOLD

    def test_two_times_faster_is_improved(self):
        base = ResultSet([_result([2.0, 2.1, 1.94])])
        cand = ResultSet([_result([1.0, 1.05, 0.97])])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "improved"
        assert not delta.gates

    def test_noise_within_threshold_is_unchanged(self):
        base = ResultSet([_result([1.0, 1.1, 0.95])])
        cand = ResultSet([_result([1.1, 1.0, 1.05])])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "unchanged"

    def test_threshold_is_configurable(self):
        base = ResultSet([_result([1.0, 1.0, 1.0])])
        cand = ResultSet([_result([1.4, 1.4, 1.4])])
        (loose,) = classify_cells(base, cand, threshold=0.5)
        (tight,) = classify_cells(base, cand, threshold=0.1)
        assert loose.classification == "unchanged"
        assert tight.classification == "regressed"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            classify_cells(ResultSet(), ResultSet(), threshold=-0.1)

    def test_wide_noisy_ci_blocks_regression_call(self):
        # Point ratio above threshold, but trials overlap heavily: the
        # bootstrap interval includes parity, so the cell must not gate.
        base = ResultSet([_result([1.0, 2.0, 3.0])])
        cand = ResultSet([_result([1.4, 2.8, 0.9])])
        (delta,) = classify_cells(base, cand, threshold=0.25)
        assert delta.classification == "unchanged"

    def test_broken_candidate_cell_gates(self):
        base = ResultSet([_result([1.0, 1.0])])
        cand = ResultSet([_result([], status="error")])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "broke"
        assert delta.gates
        assert "error" in delta.detail

    def test_fixed_cell_does_not_gate(self):
        base = ResultSet([_result([], status="timeout")])
        cand = ResultSet([_result([1.0, 1.0])])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "fixed"
        assert not delta.gates

    def test_failing_in_both_runs_is_unchanged(self):
        base = ResultSet([_result([], status="error")])
        cand = ResultSet([_result([], status="error")])
        (delta,) = classify_cells(base, cand)
        assert delta.classification == "unchanged"

    def test_added_and_removed_cells_never_gate(self):
        base = ResultSet([_result([1.0], kernel="bfs")])
        cand = ResultSet([_result([1.0], kernel="cc")])
        deltas = classify_cells(base, cand)
        classes = {d.kernel: d.classification for d in deltas}
        assert classes == {"cc": "added", "bfs": "removed"}
        assert not any(d.gates for d in deltas)

    def test_cells_matched_by_full_identity(self):
        # Same kernel/graph, different frameworks: must not cross-match.
        base = ResultSet(
            [_result([1.0], framework="gap"), _result([5.0], framework="gkc")]
        )
        cand = ResultSet(
            [_result([1.0], framework="gap"), _result([5.0], framework="gkc")]
        )
        deltas = classify_cells(base, cand)
        assert all(d.classification == "unchanged" for d in deltas)

    def test_delta_names_the_cell(self):
        base = ResultSet([_result([1.0], kernel="pr", graph="road")])
        cand = ResultSet([_result([4.0], kernel="pr", graph="road")])
        (delta,) = classify_cells(base, cand)
        assert delta.cell == "gap/pr/road/baseline"

    def test_as_dict_round_trips_to_json(self):
        import json

        base = ResultSet([_result([1.0, 1.1])])
        cand = ResultSet([_result([2.4, 2.5])])
        (delta,) = classify_cells(base, cand)
        record = json.loads(json.dumps(delta.as_dict()))
        assert record["classification"] == "regressed"
        assert record["baseline_trials"] == 2


class TestSummarize:
    def test_counts_are_zero_filled(self):
        assert summarize_deltas([]) == {
            "improved": 0,
            "regressed": 0,
            "unchanged": 0,
            "broke": 0,
        }

    def test_counts_by_classification(self):
        base = ResultSet(
            [
                _result([1.0, 1.0], kernel="bfs"),
                _result([1.0, 1.0], kernel="cc"),
                _result([2.0, 2.0], kernel="pr"),
            ]
        )
        cand = ResultSet(
            [
                _result([1.0, 1.0], kernel="bfs"),
                _result([2.6, 2.6], kernel="cc"),
                _result([1.0, 1.0], kernel="pr"),
            ]
        )
        summary = summarize_deltas(classify_cells(base, cand))
        assert summary == {
            "improved": 1,
            "regressed": 1,
            "unchanged": 1,
            "broke": 0,
        }
