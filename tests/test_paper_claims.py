"""Shape tests for the paper's per-kernel narrative claims (Section V).

These tests assert the *mechanisms* behind Table V's patterns using the
machine-independent work counters, so they hold regardless of wall-clock
noise: algorithmic effects (iteration counts, rounds, edges examined) are
what the reproduction is supposed to preserve.
"""

import numpy as np
import pytest

from repro.core import counters
from repro.frameworks import Mode, RunContext, get
from repro.generators import build_graph, weighted_version

SCALE = 11


@pytest.fixture(scope="module")
def road():
    return build_graph("road", scale=SCALE)


@pytest.fixture(scope="module")
def kron():
    return build_graph("kron", scale=SCALE)


@pytest.fixture(scope="module")
def urand():
    return build_graph("urand", scale=SCALE)


def source_of(graph):
    return int(np.flatnonzero(graph.out_degrees > 0)[0])


class TestGaussSeidelConvergence:
    """'Galois is faster than GAP because its Gauss-Seidel-style algorithm
    converges faster and performs fewer operations than Jacobi.'

    In this vectorized substrate Gauss-Seidel is blocked (Jacobi within a
    block), so the iteration saving is graph-dependent; the social-network
    topology shows it reliably (see EXPERIMENTS.md for the discussion).
    """

    @pytest.fixture(scope="class")
    def twitter12(self):
        return build_graph("twitter", scale=12)

    @pytest.mark.parametrize("gs_framework", ["galois", "nwgraph", "gkc"])
    def test_fewer_iterations_than_jacobi(self, twitter12, gs_framework):
        with counters.counting() as jacobi:
            get("gap").pagerank(twitter12)
        with counters.counting() as gs:
            get(gs_framework).pagerank(twitter12)
        assert gs.iterations < jacobi.iterations

    def test_same_fixed_point(self, twitter12):
        jacobi = get("gap").pagerank(twitter12, tolerance=1e-9, max_iterations=300)
        gs = get("galois").pagerank(twitter12, tolerance=1e-9, max_iterations=300)
        assert np.abs(jacobi - gs).max() < 1e-6


class TestLabelPropagationBlowup:
    """'GraphIt CC runs in O(E*D)... 0.17% of reference on Road.'"""

    def test_label_prop_iterations_grow_with_diameter(self, road, kron):
        with counters.counting() as on_road:
            get("graphit").connected_components(road)
        with counters.counting() as on_kron:
            get("graphit").connected_components(kron)
        assert on_road.iterations > 4 * on_kron.iterations

    def test_label_prop_examines_far_more_edges_than_afforest(self, road):
        with counters.counting() as label_prop:
            get("graphit").connected_components(road)
        with counters.counting() as afforest:
            get("gap").connected_components(road)
        assert label_prop.edges_examined > 5 * afforest.edges_examined

    def test_short_circuit_reduces_iterations(self, road):
        """The Optimized Road schedule's ~3x from short-circuiting."""
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="road")
        with counters.counting() as plain:
            get("graphit").connected_components(road)
        with counters.counting() as short_circuit:
            get("graphit").connected_components(road, ctx)
        assert short_circuit.iterations * 2 < plain.iterations


class TestBucketFusion:
    """'GraphIt reduces the number of rounds/synchronizations by a factor
    of ten while maintaining a strict priority order' (on Road)."""

    def test_fusion_cuts_rounds_on_road(self, road):
        from repro.graphit import graphit_sssp
        from repro.graphit.schedules import baseline_schedule

        graph = weighted_version(road)
        source = source_of(graph)
        fused_schedule = baseline_schedule("sssp").with_(delta=64, bucket_fusion=True)
        plain_schedule = fused_schedule.with_(bucket_fusion=False)
        with counters.counting() as fused:
            graphit_sssp(graph, source, fused_schedule)
        with counters.counting() as plain:
            graphit_sssp(graph, source, plain_schedule)
        assert fused.rounds * 1.5 < plain.rounds
        assert fused.extras.get("fused_rounds", 0) > 0

    def test_gap_reference_also_fuses(self, road):
        from repro.gapbs.sssp import delta_stepping

        graph = weighted_version(road)
        source = source_of(graph)
        with counters.counting() as fused:
            delta_stepping(graph, source, delta=64, bucket_fusion=True)
        with counters.counting() as plain:
            delta_stepping(graph, source, delta=64, bucket_fusion=False)
        assert fused.rounds < plain.rounds


class TestDirectionOptimization:
    """Direction-optimizing BFS must examine far fewer edges than pure push
    on low-diameter power-law graphs (Beamer's classic result)."""

    def test_fewer_edges_than_push_only(self, kron):
        from repro.graphit import graphit_bfs
        from repro.graphit.schedules import baseline_schedule
        from repro.graphitc import Direction

        source = source_of(kron)
        with counters.counting() as hybrid:
            graphit_bfs(kron, source, baseline_schedule("bfs"))
        with counters.counting() as push:
            graphit_bfs(
                kron,
                source,
                baseline_schedule("bfs").with_(direction=Direction.SPARSE_PUSH),
            )
        assert hybrid.edges_examined < push.edges_examined

    def test_push_only_wins_rounds_overhead_on_road(self, road):
        """'GraphIt (Optimized) is faster on Road... always push.'"""
        from repro.graphit import graphit_bfs
        from repro.graphit.schedules import baseline_schedule, optimized_schedule
        from repro.graphitc import Direction

        assert (
            optimized_schedule("bfs", "road").direction is Direction.SPARSE_PUSH
        )
        source = source_of(road)
        parents_a = graphit_bfs(road, source, baseline_schedule("bfs"))
        parents_b = graphit_bfs(road, source, optimized_schedule("bfs", "road"))
        assert np.array_equal(parents_a >= 0, parents_b >= 0)


class TestCacheTiling:
    """'GraphIt is faster than GAP due to cache optimization from tiling
    the graph... the preprocessing time is small compared to the
    performance gains, so it is amortized within 2-5 iterations.'"""

    def test_tiled_pr_beats_untiled_graphit(self):
        import time

        from repro.frameworks import get

        # The amortization argument needs enough iterations x edges; use
        # the benchmark-scale graph rather than the small test fixture.
        kron13 = build_graph("kron", scale=13)
        graphit = get("graphit")
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="kron")
        # Warm up, then time: the tiled schedule (with its preprocessing
        # inside the call) must still beat the per-iteration re-expansion.
        graphit.pagerank(kron13)
        graphit.pagerank(kron13, ctx)
        start = time.perf_counter()
        baseline = graphit.pagerank(kron13)
        mid = time.perf_counter()
        tiled = graphit.pagerank(kron13, ctx)
        end = time.perf_counter()
        assert np.allclose(baseline, tiled)
        assert (end - mid) < (mid - start)

    def test_segment_structure_reused(self, kron):
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="kron")
        with counters.counting() as work:
            get("graphit").pagerank(kron, ctx)
        segments_per_iteration = work.extras["cache_segments"] / work.iterations
        assert segments_per_iteration >= 2


class TestAsyncScheduling:
    """Galois' Baseline heuristic assumes uniform degrees imply high
    diameter and picks the asynchronous variant — correct on Road, the
    known misfire on Urand (the paper's footnote); Optimized mode, knowing
    the real diameters, switches Urand back to bulk-synchronous."""

    def test_baseline_heuristic_picks_async_for_uniform(self, road, urand, kron):
        from repro.galois.heuristics import assume_high_diameter

        assert assume_high_diameter(road)
        assert assume_high_diameter(urand)  # the known misfire on Urand
        assert not assume_high_diameter(kron)

    def test_baseline_runs_async_on_urand(self, urand):
        """Async execution has no synchronization rounds — the counter
        discriminates which variant actually ran."""
        source = source_of(urand)
        with counters.counting() as baseline:
            get("galois").bfs(urand, source)
        assert baseline.rounds == 0  # asynchronous: no round barriers

    def test_optimized_runs_sync_on_urand(self, urand):
        """'For the Optimized case, the bulk-synchronous variant ... ran
        better' — Galois switches Urand to sync when the diameter is known."""
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="urand")
        source = source_of(urand)
        with counters.counting() as optimized:
            get("galois").bfs(urand, source, ctx)
        assert optimized.rounds > 0  # bulk-synchronous: barriers counted

    def test_optimized_keeps_async_on_road(self, road):
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="road")
        source = source_of(road)
        with counters.counting() as optimized:
            get("galois").bfs(road, source, ctx)
        assert optimized.rounds == 0

    def test_async_and_sync_agree(self, urand):
        from repro.galois.bfs import async_bfs, sync_bfs

        source = source_of(urand)
        a = async_bfs(urand, source)
        b = sync_bfs(urand, source)
        assert np.array_equal(a >= 0, b >= 0)


class TestAfforest:
    """Afforest's sample-and-skip vs full-sweep SV.

    Note: the paper's 'Afforest is less effective on Urand' effect (Sutton
    et al.) depends on billion-scale uniform graphs; at laptop scale a
    2-out random subgraph of Urand is already fully connected, so the
    sampling phase captures everything (see EXPERIMENTS.md).
    """

    def test_skewed_graphs_leave_vertices_outside_giant(self, kron):
        with counters.counting() as on_kron:
            get("gap").connected_components(kron)
        assert on_kron.extras.get("vertices_outside_giant", 0) > 0

    def test_uniform_graph_fully_captured_by_neighbor_rounds(self, urand):
        with counters.counting() as on_urand:
            get("gap").connected_components(urand)
        assert on_urand.extras.get("vertices_outside_giant", 1) == 0

    def test_afforest_skips_most_edge_work_on_powerlaw(self, kron):
        """Afforest's O(V)-ish behaviour vs full-sweep SV."""
        with counters.counting() as afforest:
            get("gap").connected_components(kron)
        with counters.counting() as shiloach_vishkin:
            get("gkc").connected_components(kron)
        assert afforest.edges_examined < shiloach_vishkin.edges_examined


class TestSuccessorReuse:
    """'GAP is faster because it saves the list of successors for each
    vertex using a bitmap' — saved-DAG Brandes re-examines fewer edges."""

    def test_saved_dag_less_backward_work(self, kron):
        sources = np.flatnonzero(kron.out_degrees > 0)[:4]
        with counters.counting() as saved:
            get("gap").betweenness(kron, sources)
        with counters.counting() as refiltered:
            get("galois").betweenness(kron, sources)
        assert saved.edges_examined < refiltered.edges_examined


class TestRelabelHeuristic:
    """TC's sampling heuristic: relabel skewed graphs, skip uniform ones."""

    def test_relabels_powerlaw_not_uniform(self, kron, urand):
        with counters.counting() as on_kron:
            get("gap").triangle_count(kron)
        with counters.counting() as on_urand:
            get("gap").triangle_count(urand)
        assert on_kron.extras.get("relabelled", 0) == 1
        assert "relabelled" not in on_urand.extras

    def test_relabel_reduces_wedge_work(self, kron):
        from repro.gapbs.tc import triangle_count as gap_tc

        with counters.counting() as with_relabel:
            a = gap_tc(kron, force_relabel=True)
        with counters.counting() as without:
            b = gap_tc(kron, force_relabel=False)
        assert a == b
        assert with_relabel.edges_examined < without.edges_examined
