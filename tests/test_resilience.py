"""Resilience layer tests: journal, retry, breaker, faults, CLI guards.

Tier-1 guarantees pinned here:

* the checkpoint journal round-trips completed cells exactly, discards a
  torn trailing line, and refuses a journal from a different campaign;
* failure classification retries only transient errors — verification
  mismatches, ``ValueError``, and timeouts are never retried;
* backoff is jitter-free exponential and fully deterministic;
* the circuit breaker opens after K *consecutive* hard failures of one
  (framework, kernel) combo and converts its remaining cells to
  structured ``skipped`` results;
* fault injection fires at the exact (cell, attempt) requested, and the
  serial runner survives every fault kind with the right status;
* the CLI rejects out-of-range ``--jobs`` / ``--retries`` / ``--timeout``
  with clear argparse errors.
"""

import io
import json

import pytest

from repro.__main__ import main
from repro.core import BenchmarkSpec, Telemetry, run_suite
from repro.core.results import RunResult
from repro.core.telemetry import JsonlSink
from repro.errors import JournalError
from repro.frameworks import KERNELS, Mode
from repro.gapbs import GAPReference
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultSpec, active_plan, parse_plan
from repro.resilience.journal import CheckpointJournal, campaign_fingerprint
from repro.resilience.retry import (
    CLASS_DETERMINISTIC,
    CLASS_TRANSIENT,
    RetryPolicy,
    classify_failure,
)

ONE_TRIAL = {k: 1 for k in KERNELS}


def _spec(**overrides):
    defaults = dict(scale=8, trials=ONE_TRIAL)
    defaults.update(overrides)
    return BenchmarkSpec(**defaults)


def _result(graph="kron", kernel="bfs", status="ok", **overrides):
    fields = dict(
        framework="gap",
        kernel=kernel,
        graph=graph,
        mode=Mode.BASELINE,
        trial_seconds=[0.25],
        verified=status == "ok",
        status=status,
    )
    fields.update(overrides)
    return RunResult(**fields)


def _fingerprint(spec):
    return campaign_fingerprint(spec, ["kron"], ["bfs", "cc"], ["baseline"], ["gap"])


# -- checkpoint journal ------------------------------------------------------


def test_journal_round_trips_completed_cells(tmp_path):
    spec = _spec()
    path = tmp_path / "campaign.jsonl"
    with CheckpointJournal.create(path, _fingerprint(spec)) as journal:
        journal.record(_result(kernel="bfs"))
        journal.record(_result(kernel="cc", status="error", error="ValueError: x"))

    resumed, completed = CheckpointJournal.resume(path, _fingerprint(spec))
    resumed.close()
    assert set(completed) == {
        ("kron", "baseline", "bfs", "gap"),
        ("kron", "baseline", "cc", "gap"),
    }
    restored = completed[("kron", "baseline", "bfs", "gap")]
    assert restored.as_dict() == _result(kernel="bfs").as_dict()
    # Failed cells resume as-recorded: they finished executing.
    assert completed[("kron", "baseline", "cc", "gap")].status == "error"


def test_journal_discards_torn_trailing_line(tmp_path):
    spec = _spec()
    path = tmp_path / "campaign.jsonl"
    with CheckpointJournal.create(path, _fingerprint(spec)) as journal:
        journal.record(_result(kernel="bfs"))
    with open(path, "ab") as stream:
        stream.write(b'{"result": {"framework": "gap", "ker')  # crash mid-append

    resumed, completed = CheckpointJournal.resume(path, _fingerprint(spec))
    resumed.close()
    assert set(completed) == {("kron", "baseline", "bfs", "gap")}


def test_journal_rejects_corrupt_interior_line(tmp_path):
    spec = _spec()
    path = tmp_path / "campaign.jsonl"
    with CheckpointJournal.create(path, _fingerprint(spec)) as journal:
        journal.record(_result())
        # A second record keeps the corrupted line *interior*: a later
        # append succeeded after it, so it is damage, not a torn tail.
        journal.record(_result(kernel="cc"))
    raw = path.read_bytes().split(b"\n")
    raw[1] = b"{not json"  # a *terminated* corrupt line is real damage
    path.write_bytes(b"\n".join(raw))

    with pytest.raises(JournalError, match="corrupt"):
        CheckpointJournal.resume(path, _fingerprint(spec))


def test_journal_discards_checksum_failed_tail(tmp_path):
    spec = _spec()
    path = tmp_path / "campaign.jsonl"
    with CheckpointJournal.create(path, _fingerprint(spec)) as journal:
        journal.record(_result())
        journal.record(_result(kernel="cc"))
    raw = path.read_bytes().rstrip(b"\n").split(b"\n")
    # Flip payload bytes inside the *final* line: flushed but failing its
    # checksum means the append never became durable — resume treats it
    # exactly like a torn tail and re-runs that cell.
    raw[-1] = raw[-1].replace(b'"cc"', b'"xx"')
    path.write_bytes(b"\n".join(raw) + b"\n")

    resumed, completed = CheckpointJournal.resume(path, _fingerprint(spec))
    resumed.close()
    assert set(completed) == {("kron", "baseline", "bfs", "gap")}


def test_journal_rejects_different_campaign(tmp_path):
    path = tmp_path / "campaign.jsonl"
    CheckpointJournal.create(path, _fingerprint(_spec())).close()
    other = campaign_fingerprint(
        _spec(scale=9), ["kron"], ["bfs"], ["baseline"], ["gap"]
    )
    with pytest.raises(JournalError) as excinfo:
        CheckpointJournal.resume(path, other)
    # The error names every mismatched field so the operator can decide.
    assert "spec" in str(excinfo.value) and "kernels" in str(excinfo.value)


def test_journal_resume_of_missing_file_starts_fresh(tmp_path):
    path = tmp_path / "new.jsonl"
    journal, completed = CheckpointJournal.resume(path, _fingerprint(_spec()))
    journal.close()
    assert completed == {} and path.exists()


def test_journal_record_after_close_raises(tmp_path):
    journal = CheckpointJournal.create(tmp_path / "j.jsonl", _fingerprint(_spec()))
    journal.close()
    with pytest.raises(JournalError, match="closed"):
        journal.record(_result())


# -- failure classification and retry policy ---------------------------------


@pytest.mark.parametrize(
    "status, error, expected",
    [
        ("error", "MemoryError: out of memory", CLASS_TRANSIENT),
        ("error", "worker process died mid-cell (exit code 86)", CLASS_TRANSIENT),
        ("error", "GraphFormatError: corrupt cache artifact", CLASS_TRANSIENT),
        ("error", "OSError: shared memory attach failed", CLASS_TRANSIENT),
        ("error", "ValueError: bad delta", CLASS_DETERMINISTIC),
        ("error", "VerificationError: bfs mismatch", CLASS_DETERMINISTIC),
        ("error", "SomethingNovel: unexplained", CLASS_DETERMINISTIC),
        ("timeout", "trial exceeded 1.0s", CLASS_DETERMINISTIC),
        ("skipped", "breaker open", CLASS_DETERMINISTIC),
    ],
)
def test_classify_failure(status, error, expected):
    assert classify_failure(status, error) == expected


def test_backoff_schedule_is_deterministic_exponential():
    policy = RetryPolicy(retries=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert [policy.backoff_seconds(a) for a in range(5)] == [
        0.1,
        0.2,
        0.4,
        0.5,  # capped
        0.5,
    ]


def test_retry_policy_sleeps_via_injected_sleeper():
    slept = []
    policy = RetryPolicy(retries=2, backoff_base=0.05, sleeper=slept.append)
    policy.sleep(0)
    policy.sleep(1)
    assert slept == [0.05, 0.1]


def test_retry_policy_budget_and_classes():
    policy = RetryPolicy(retries=2)
    transient = "MemoryError: boom"
    assert policy.should_retry("error", transient, attempt=0)
    assert policy.should_retry("error", transient, attempt=1)
    assert not policy.should_retry("error", transient, attempt=2)  # budget spent
    assert not policy.should_retry("error", "ValueError: no", attempt=0)
    assert not policy.should_retry("timeout", "over budget", attempt=0)
    assert not RetryPolicy(retries=0).should_retry("error", transient, attempt=0)


# -- circuit breaker ---------------------------------------------------------


def test_breaker_opens_after_consecutive_failures_only():
    breaker = CircuitBreaker(threshold=2)
    assert not breaker.record("gap", "tc", ok=False)
    assert breaker.record("gap", "tc", ok=False)  # second consecutive: opens
    assert breaker.is_open("gap", "tc")
    assert not breaker.is_open("gap", "bfs")  # scoped per combo
    assert breaker.open_combos() == [("gap", "tc")]
    assert "gap/tc" in breaker.reason("gap", "tc")


def test_breaker_success_resets_count():
    breaker = CircuitBreaker(threshold=2)
    breaker.record("gap", "cc", ok=False)
    breaker.record("gap", "cc", ok=True)  # flake, not a broken combo
    breaker.record("gap", "cc", ok=False)
    assert not breaker.is_open("gap", "cc")


def test_breaker_disabled_at_zero_threshold():
    breaker = CircuitBreaker(threshold=0)
    for _ in range(10):
        assert not breaker.record("gap", "tc", ok=False)
    assert not breaker.is_open("gap", "tc")


# -- fault plans -------------------------------------------------------------


def test_fault_spec_matching_and_wildcards():
    fault = FaultSpec(kind="oom", kernel="cc", attempts=(0, 1))
    assert fault.matches("gap", "cc", "kron", "baseline", 0)
    assert fault.matches("other", "cc", "road", "optimized", 1)  # wildcards
    assert not fault.matches("gap", "bfs", "kron", "baseline", 0)
    assert not fault.matches("gap", "cc", "kron", "baseline", 2)
    persistent = FaultSpec(kind="error")
    assert persistent.matches("any", "thing", "at", "all", 7)


def test_fault_plan_json_round_trip():
    plan = (FaultSpec(kind="crash", kernel="cc", attempts=(0,)),)
    text = json.dumps([fault.as_dict() for fault in plan])
    assert parse_plan(text) == plan
    with pytest.raises(ValueError):
        FaultSpec(kind="nonsense")
    with pytest.raises(ValueError):
        parse_plan('{"kind": "crash"}')  # must be a list


def test_active_plan_merges_spec_and_environment(monkeypatch):
    spec_fault = FaultSpec(kind="oom", kernel="pr")
    env_fault = FaultSpec(kind="error", kernel="tc")
    monkeypatch.setenv("REPRO_FAULTS", json.dumps([env_fault.as_dict()]))
    spec = _spec(faults=(spec_fault,))
    assert active_plan(spec) == (spec_fault, env_fault)
    monkeypatch.delenv("REPRO_FAULTS")
    assert active_plan(spec) == (spec_fault,)


# -- serial campaign integration --------------------------------------------


def _serial_campaign(spec, kernels=("bfs",), graphs=("kron",), telemetry=None, **kw):
    return run_suite(
        [GAPReference()],
        list(graphs),
        kernels=list(kernels),
        modes=[Mode.BASELINE],
        spec=spec,
        telemetry=telemetry,
        **kw,
    )


def test_serial_oom_fault_is_retried_to_success():
    spec = _spec(
        retries=2,
        faults=(FaultSpec(kind="oom", kernel="bfs", attempts=(0, 1)),),
    )
    telemetry = Telemetry()
    results = _serial_campaign(spec, telemetry=telemetry)
    (result,) = results
    assert result.ok and result.attempts == 3
    # One span per executed attempt, the last one ok.
    cell_spans = [s for s in telemetry.spans if s.attributes["kernel"] == "bfs"]
    assert [s.status for s in cell_spans] == ["error", "error", "ok"]
    assert [s.attributes.get("attempt") for s in cell_spans] == [None, 1, 2]


def test_serial_deterministic_error_is_never_retried():
    spec = _spec(
        retries=3, faults=(FaultSpec(kind="error", kernel="bfs"),)
    )
    (result,) = _serial_campaign(spec)
    assert result.status == "error" and result.attempts == 1
    assert "ValueError" in result.error


def test_serial_wrong_result_fails_verification_without_retry():
    spec = _spec(
        retries=3, faults=(FaultSpec(kind="wrong-result", kernel="bfs"),)
    )
    (result,) = _serial_campaign(spec)
    assert result.status == "error" and not result.verified
    assert result.attempts == 1  # deterministic: retrying would mask a bug


def test_serial_hang_times_out_and_is_not_retried():
    spec = _spec(
        trial_timeout=0.3,
        retries=3,
        faults=(FaultSpec(kind="hang", kernel="bfs"),),
    )
    (result,) = _serial_campaign(spec)
    assert result.status == "timeout" and result.attempts == 1


def test_serial_cache_corruption_degrades_to_regeneration(tmp_path):
    from repro.graphs import GraphCache

    cache = GraphCache(tmp_path)
    warm = _serial_campaign(_spec(), cache=cache)  # populate the artifact
    assert all(r.ok for r in warm)
    spec = _spec(faults=(FaultSpec(kind="cache-corrupt", graph="kron"),))
    (result,) = _serial_campaign(spec, cache=cache)
    assert result.ok  # corruption surfaced as a miss, never a wrong result


def test_serial_breaker_skips_remaining_combo_cells():
    spec = _spec(
        breaker_threshold=1,
        faults=(FaultSpec(kind="error", kernel="cc", graph="kron"),),
    )
    telemetry = Telemetry()
    results = _serial_campaign(
        spec, kernels=("cc", "bfs"), graphs=("kron", "road"), telemetry=telemetry
    )
    by_key = {r.cell_key: r for r in results}
    assert by_key[("kron", "baseline", "cc", "gap")].status == "error"
    skipped = by_key[("road", "baseline", "cc", "gap")]
    assert skipped.status == "skipped" and "circuit breaker" in skipped.error
    assert all(by_key[k].ok for k in by_key if k[2] == "bfs")  # combo-scoped
    assert results.skipped() == [skipped]
    assert results.meta["resilience"]["skipped_cells"] == 1
    skip_spans = [s for s in telemetry.spans if s.status == "skipped"]
    assert len(skip_spans) == 1 and "skip_reason" in skip_spans[0].attributes


def test_serial_journal_resume_skips_completed_cells(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    spec = _spec()
    first = _serial_campaign(spec, kernels=("bfs", "cc"), journal=str(journal))
    assert len(first) == 2 and first.meta["resilience"]["resumed_cells"] == 0

    executed = []
    resumed = _serial_campaign(
        spec,
        kernels=("bfs", "cc"),
        journal=str(journal),
        resume=True,
        progress=executed.append,
    )
    assert resumed.meta["resilience"]["resumed_cells"] == 2
    assert executed == []  # nothing re-ran, not even a progress tick
    assert [r.as_dict() for r in resumed] == [r.as_dict() for r in first]
    # Resume did not re-journal the replayed cells.
    lines = journal.read_bytes().splitlines()
    assert len(lines) == 3  # header + two cells, exactly once each


def test_run_results_carry_resilience_metadata(tmp_path):
    journal = tmp_path / "j.jsonl"
    spec = _spec(retries=2, breaker_threshold=3)
    results = _serial_campaign(spec, journal=str(journal))
    meta = results.meta["resilience"]
    assert meta["retries"] == 2
    assert meta["breaker_threshold"] == 3
    assert meta["journal"] == str(journal)


def test_archive_manifest_records_resilience_lineage(tmp_path):
    from repro.store import RunArchive

    journal = tmp_path / "j.jsonl"
    results = _serial_campaign(_spec(retries=1), journal=str(journal))
    record = RunArchive(tmp_path / "archive").archive_run(results, spec=_spec())
    assert record.manifest["resilience"]["retries"] == 1
    assert record.manifest["resilience"]["journal"] == str(journal)


# -- telemetry sink durability ----------------------------------------------


def test_jsonl_sink_flushes_every_record():
    class CountingStream(io.StringIO):
        flushes = 0

        def flush(self):
            CountingStream.flushes += 1
            return super().flush()

    stream = CountingStream()
    sink = JsonlSink(stream)
    sink.write({"a": 1})
    after_first = CountingStream.flushes
    assert after_first >= 1  # durable before the next record starts
    sink.write({"b": 2})
    assert CountingStream.flushes > after_first
    assert [json.loads(line) for line in stream.getvalue().splitlines()] == [
        {"a": 1},
        {"b": 2},
    ]


# -- CLI argument validation -------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["run", "--jobs", "0"],
        ["run", "--jobs", "-3"],
        ["run", "--jobs", "two"],
        ["run", "--retries", "-1"],
        ["run", "--breaker-threshold", "-1"],
        ["run", "--timeout", "0"],
        ["run", "--timeout", "-2.5"],
        ["run", "--timeout", "inf"],
    ],
)
def test_cli_rejects_out_of_range_arguments(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse usage error
    err = capsys.readouterr().err
    assert "must be" in err or "expected" in err


def test_cli_resume_requires_journal(capsys):
    with pytest.raises(SystemExit, match="--resume requires --journal"):
        main(["run", "--resume"])
