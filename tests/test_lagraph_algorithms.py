"""Algorithm-level tests for the LAGraph kernels (beyond the shared
cross-framework correctness suite): semiring usage and format behaviour."""

import numpy as np
import pytest

from repro.core import counters
from repro.frameworks import get
from repro.generators import weighted_version
from repro.lagraph import fastsv, lagraph_bfs, lagraph_pagerank, lagraph_sssp, lagraph_tc


class TestLagraphBFS:
    def test_format_conversions_happen_on_powerlaw(self, corpus):
        """Direction optimization implies sparse<->bitmap conversions, which
        LAGraph pays inside the timed region (the paper calls this out)."""
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        with counters.counting() as work:
            lagraph_bfs(graph, source)
        assert work.extras.get("format_conversions", 0) > 0

    def test_parent_values_are_vertex_ids(self, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        parents = lagraph_bfs(graph, source)
        reached = parents[parents >= 0]
        assert (reached < graph.num_vertices).all()


class TestLagraphSSSP:
    def test_full_vector_scans_counted(self, corpus):
        """The per-bucket O(n) select is the mechanism behind the paper's
        Road collapse; the counter proves we pay it."""
        graph = weighted_version(corpus["road"])
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        with counters.counting() as work:
            lagraph_sssp(graph, source, delta=64)
        assert work.vertices_touched > graph.num_vertices * 3

    def test_buckets_noted(self, corpus):
        graph = weighted_version(corpus["road"])
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        with counters.counting() as work:
            lagraph_sssp(graph, source, delta=64)
        assert work.extras.get("buckets_processed", 0) > 1


class TestFastSV:
    def test_converges_in_logarithmic_iterations(self, corpus):
        """FastSV's selling point: convergence far below the diameter."""
        graph = corpus["road"]
        with counters.counting() as work:
            fastsv(graph)
        from repro.graphs import approximate_diameter

        assert work.iterations < max(8, approximate_diameter(graph) // 4)

    def test_labels_are_component_minima(self, triangle_graph):
        labels = fastsv(triangle_graph)
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == 0  # pendant attached to the triangle
        assert labels[4] == labels[7] == 4


class TestLagraphPR:
    def test_structure_only_matrix_access(self, corpus):
        """plus_second never reads adjacency values: weighted and
        unweighted inputs must give identical scores."""
        unweighted = corpus["kron"]
        weighted = weighted_version(unweighted)
        a = lagraph_pagerank(unweighted)
        b = lagraph_pagerank(weighted)
        assert np.array_equal(a, b)


class TestLagraphTC:
    def test_presort_heuristic_fires_on_skew(self, corpus):
        graph = corpus["kron"]
        with counters.counting() as work:
            lagraph_tc(graph)
        assert work.extras.get("relabelled", 0) == 1

    def test_presort_skipped_on_uniform(self, corpus):
        graph = corpus["urand"]
        with counters.counting() as work:
            lagraph_tc(graph)
        assert "relabelled" not in work.extras

    def test_matches_reference(self, triangle_graph):
        assert lagraph_tc(triangle_graph) == 5


class TestInt64Footprint:
    def test_attributes_disclose_index_width(self):
        unmodelled = get("suitesparse").attributes.unmodelled
        assert any("64-bit" in item for item in unmodelled)
