"""Tests for graph serialization (text edge lists and .npz)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.generators import build_graph, weighted_version
from repro.graphs import load_npz, read_edge_list, save_npz, write_edge_list


class TestTextRoundtrip:
    def test_unweighted(self, tmp_path, tiny_graph):
        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        back = read_edge_list(path)
        assert back == tiny_graph

    def test_weighted(self, tmp_path):
        graph = weighted_version(build_graph("kron", scale=7))
        path = tmp_path / "g.wel"
        write_edge_list(graph, path)
        back = read_edge_list(path)
        assert back.is_weighted
        assert np.array_equal(back.weights, graph.weights)
        assert back == graph

    def test_undirected_preserved_via_header(self, tmp_path):
        graph = build_graph("urand", scale=7)
        path = tmp_path / "g.el"
        write_edge_list(graph, path)
        back = read_edge_list(path)
        assert not back.directed

    def test_headerless_third_party_file(self, tmp_path):
        path = tmp_path / "plain.el"
        path.write_text("0 1\n1 2\n", encoding="ascii")
        graph = read_edge_list(path, directed=True)
        assert graph.num_vertices == 3
        assert graph.has_edge(0, 1)

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0 1 2 3\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_mixed_weighting_rejected(self, tmp_path):
        path = tmp_path / "mixed.el"
        path.write_text("0 1\n1 2 5\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestNpzRoundtrip:
    @pytest.mark.parametrize("name", ["road", "kron"])
    def test_roundtrip(self, tmp_path, name):
        graph = build_graph(name, scale=7)
        path = tmp_path / f"{name}.npz"
        save_npz(graph, path)
        back = load_npz(path)
        assert back == graph
        assert back.directed == graph.directed
        assert np.array_equal(back.in_indptr, graph.in_indptr)

    def test_weighted_roundtrip(self, tmp_path):
        graph = weighted_version(build_graph("road", scale=7))
        path = tmp_path / "w.npz"
        save_npz(graph, path)
        back = load_npz(path)
        assert np.array_equal(back.weights, graph.weights)
        assert np.array_equal(back.in_weights, graph.in_weights)
