"""Tests for graph serialization (text edge lists and .npz)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.generators import build_graph, weighted_version
from repro.graphs import (
    file_digest,
    load_graph_file,
    load_npz,
    read_edge_list,
    read_mtx,
    save_npz,
    write_edge_list,
)


class TestTextRoundtrip:
    def test_unweighted(self, tmp_path, tiny_graph):
        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        back = read_edge_list(path)
        assert back == tiny_graph

    def test_weighted(self, tmp_path):
        graph = weighted_version(build_graph("kron", scale=7))
        path = tmp_path / "g.wel"
        write_edge_list(graph, path)
        back = read_edge_list(path)
        assert back.is_weighted
        assert np.array_equal(back.weights, graph.weights)
        assert back == graph

    def test_undirected_preserved_via_header(self, tmp_path):
        graph = build_graph("urand", scale=7)
        path = tmp_path / "g.el"
        write_edge_list(graph, path)
        back = read_edge_list(path)
        assert not back.directed

    def test_headerless_third_party_file(self, tmp_path):
        path = tmp_path / "plain.el"
        path.write_text("0 1\n1 2\n", encoding="ascii")
        graph = read_edge_list(path, directed=True)
        assert graph.num_vertices == 3
        assert graph.has_edge(0, 1)

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0 1 2 3\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_mixed_weighting_rejected(self, tmp_path):
        path = tmp_path / "mixed.el"
        path.write_text("0 1\n1 2 5\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestNpzRoundtrip:
    @pytest.mark.parametrize("name", ["road", "kron"])
    def test_roundtrip(self, tmp_path, name):
        graph = build_graph(name, scale=7)
        path = tmp_path / f"{name}.npz"
        save_npz(graph, path)
        back = load_npz(path)
        assert back == graph
        assert back.directed == graph.directed
        assert np.array_equal(back.in_indptr, graph.in_indptr)

    def test_weighted_roundtrip(self, tmp_path):
        graph = weighted_version(build_graph("road", scale=7))
        path = tmp_path / "w.npz"
        save_npz(graph, path)
        back = load_npz(path)
        assert np.array_equal(back.weights, graph.weights)
        assert np.array_equal(back.in_weights, graph.in_weights)


MTX_SYMMETRIC = """%%MatrixMarket matrix coordinate pattern symmetric
% comment between banner and size line
4 4 4
2 1
3 1
4 2
4 3
"""

MTX_GENERAL_REAL = """%%MatrixMarket matrix coordinate real general
3 3 3
1 2 0.5
2 3 1.25
3 1 2
"""


class TestMatrixMarket:
    def test_symmetric_pattern(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(MTX_SYMMETRIC, encoding="ascii")
        graph = read_mtx(path)
        assert not graph.directed
        assert graph.num_vertices == 4
        # 4 symmetric entries -> 8 directed arcs after mirroring.
        assert graph.num_edges == 8
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_general_real_weighted(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(MTX_GENERAL_REAL, encoding="ascii")
        graph = read_mtx(path)
        assert graph.directed
        assert graph.is_weighted
        assert graph.num_vertices == 3
        assert graph.has_edge(0, 1) and not graph.has_edge(1, 0)

    def test_one_based_shift_roundtrip(self, tmp_path):
        """MTX indices are 1-based; the loaded graph must be 0-based."""
        path = tmp_path / "g.mtx"
        path.write_text(MTX_SYMMETRIC, encoding="ascii")
        graph = read_mtx(path)
        out = tmp_path / "g.el"
        write_edge_list(graph, out)
        back = read_edge_list(out)
        assert back == graph

    def test_gzip_transparent(self, tmp_path):
        import gzip

        plain = tmp_path / "g.mtx"
        plain.write_text(MTX_SYMMETRIC, encoding="ascii")
        zipped = tmp_path / "g.mtx.gz"
        with gzip.open(zipped, "wt", encoding="ascii") as handle:
            handle.write(MTX_SYMMETRIC)
        assert load_graph_file(zipped) == load_graph_file(plain)

    def test_load_graph_file_dispatches_by_suffix(self, tmp_path, tiny_graph):
        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        assert load_graph_file(path) == tiny_graph

    @pytest.mark.parametrize(
        "text",
        [
            # wrong banner magic
            "%%NotMatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n",
            # array storage is not a graph
            "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
            # unknown field
            "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2\n",
            # 0-based index (spec says 1-based)
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 2\n",
            # index above the declared dimensions
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n",
            # truncated: promises 3 entries, carries 1
            "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n",
            # missing size line
            "%%MatrixMarket matrix coordinate pattern general\n",
            # pattern entries must not carry weights
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2 9\n",
        ],
    )
    def test_malformed_rejected(self, tmp_path, text):
        path = tmp_path / "bad.mtx"
        path.write_text(text, encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_mtx(path)

    def test_negative_edge_list_ids_rejected(self, tmp_path):
        path = tmp_path / "neg.el"
        path.write_text("0 1\n-1 2\n", encoding="ascii")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_file_digest_tracks_content_not_name(self, tmp_path):
        a = tmp_path / "a.mtx"
        b = tmp_path / "b.mtx"
        a.write_text(MTX_SYMMETRIC, encoding="ascii")
        b.write_text(MTX_SYMMETRIC, encoding="ascii")
        assert file_digest(a) == file_digest(b)
        b.write_text(MTX_SYMMETRIC + "% edited\n", encoding="ascii")
        assert file_digest(a) != file_digest(b)
