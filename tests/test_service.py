"""Tests for the memoizing benchmark service (in-process and over HTTP)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.service import (
    BenchmarkService,
    CampaignRequest,
    ServiceClient,
    ServiceHTTPServer,
)

pytestmark = pytest.mark.tier2


def _request(**overrides):
    payload = {
        "graphs": ("urand",),
        "kernels": ("bfs", "cc"),
        "frameworks": ("gap",),
        "modes": ("baseline",),
        "scale": 6,
    }
    payload.update(overrides)
    return CampaignRequest(**payload)


@pytest.fixture()
def service(tmp_path):
    svc = BenchmarkService(
        archive_dir=tmp_path / "archive", cache_dir=tmp_path / "graphs", jobs=1
    )
    yield svc
    svc.shutdown()


def _cells(events):
    return [e for e in events if e["event"] == "cell"]


class TestProtocol:
    def test_from_dict_round_trip(self):
        request = CampaignRequest.from_dict(
            {
                "graphs": "urand,kron",
                "kernels": ["bfs"],
                "frameworks": "gap",
                "modes": "baseline",
                "scale": 8,
            }
        )
        assert request.graphs == ("urand", "kron")
        assert CampaignRequest.from_dict(request.as_dict()) == request

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown request fields"):
            CampaignRequest.from_dict(
                {"graphs": "urand", "kernels": "bfs", "frameworks": "gap", "jobs": 4}
            )

    def test_unknown_axis_value_rejected(self):
        with pytest.raises(ServiceError, match="unknown graphs"):
            _request(graphs=("nonexistent",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ServiceError, match="no kernels"):
            _request(kernels=())

    def test_scale_bounds(self):
        with pytest.raises(ServiceError, match="out of range"):
            _request(scale=30)

    def test_campaign_id_is_stable(self):
        assert _request().campaign_id == _request().campaign_id
        assert _request().campaign_id != _request(scale=7).campaign_id

    def test_cell_keys_match_executor_enumeration(self):
        request = _request(kernels=("bfs", "cc"), modes=("baseline", "optimized"))
        keys = request.cell_keys()
        # graphs outermost, then modes, kernels, frameworks.
        assert keys[0] == ("urand", "baseline", "bfs", "gap")
        assert keys[1] == ("urand", "baseline", "cc", "gap")
        assert keys[2] == ("urand", "optimized", "bfs", "gap")


class TestMemoization:
    def test_miss_then_hit(self, service):
        request = _request()
        first = service.submit_collect(request)
        assert first[0]["event"] == "accepted"
        assert first[0]["hits"] == 0
        assert all(not c["cached"] for c in _cells(first))
        assert first[-1]["event"] == "done"
        assert first[-1]["executed"] == 2
        run_id = first[-1]["fresh_run_id"]
        assert run_id

        second = service.submit_collect(request)
        assert second[0]["hits"] == 2
        assert all(c["cached"] for c in _cells(second))
        assert all(c["run_id"] == run_id for c in _cells(second))
        assert second[-1]["executed"] == 0
        assert second[-1]["fresh_run_id"] is None

    def test_resubmission_results_byte_identical(self, service):
        request = _request()
        first = service.submit_collect(request)
        second = service.submit_collect(request)
        payload = lambda events: json.dumps(  # noqa: E731
            [c["result"] for c in _cells(events)], sort_keys=True
        )
        assert payload(first) == payload(second)

    def test_partial_overlap_executes_only_new_cells(self, service):
        service.submit_collect(_request(kernels=("bfs",)))
        events = service.submit_collect(_request(kernels=("bfs", "cc")))
        assert events[0]["hits"] == 1
        assert events[-1]["executed"] == 1
        cached = {tuple(c["cell"]): c["cached"] for c in _cells(events)}
        assert cached[("urand", "baseline", "bfs", "gap")] is True
        assert cached[("urand", "baseline", "cc", "gap")] is False

    def test_axis_order_does_not_cold_start_cells(self, service):
        service.submit_collect(_request(kernels=("bfs", "cc")))
        events = service.submit_collect(_request(kernels=("cc", "bfs")))
        assert events[-1]["executed"] == 0

    def test_topology_invisible_to_dedup(self, service, tmp_path):
        """A serial server and a parallel server share cache entries."""
        request = _request()
        service.submit_collect(request)
        other = BenchmarkService(
            archive_dir=service.archive.root, cache_dir=tmp_path / "graphs", jobs=2
        )
        try:
            events = other.submit_collect(request)
            assert events[-1]["executed"] == 0
        finally:
            other.shutdown()

    def test_cold_start_hits_via_persistent_index(self, service, tmp_path):
        """A fresh service over the same archive serves hits from disk."""
        request = _request()
        first = service.submit_collect(request)
        reborn = BenchmarkService(
            archive_dir=service.archive.root, cache_dir=tmp_path / "graphs"
        )
        try:
            events = reborn.submit_collect(request)
            assert events[0]["hits"] == 2
            assert events[-1]["executed"] == 0
            assert {c["run_id"] for c in _cells(events)} == {
                first[-1]["fresh_run_id"]
            }
        finally:
            reborn.shutdown()

    def test_failed_cells_are_not_memoized(self, service):
        request = _request(kernels=("bfs",), trial_timeout=1e-9)
        first = service.submit_collect(request)
        statuses = {c["result"]["status"] for c in _cells(first)}
        assert statuses == {"timeout"}
        second = service.submit_collect(request)
        assert second[0]["hits"] == 0
        assert second[-1]["executed"] == 1


class TestCoalescing:
    def test_concurrent_identical_submissions_execute_once(self, service):
        request = _request()
        outcomes = [None] * 4

        def submit(i):
            outcomes[i] = service.submit_collect(request)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(len(outcomes))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert all(o is not None for o in outcomes)
        for events in outcomes:
            assert events[-1]["event"] == "done"
            assert len(_cells(events)) == 2
        # All four submissions were served by at most one execution per cell.
        assert service.stats["cells_executed"] == 2
        assert service.stats["jobs_executed"] <= 2
        assert (
            service.stats["cells_hit"] + service.stats["cells_coalesced"]
            == 4 * 2 - 2
        )

    def test_queue_full_rejects_with_error_event(self, tmp_path):
        svc = BenchmarkService(
            archive_dir=tmp_path / "archive",
            cache_dir=tmp_path / "graphs",
            max_pending_jobs=1,
        )
        try:
            # Saturate the engine: one executing + one queued.
            t1 = threading.Thread(
                target=svc.submit_collect, args=(_request(kernels=("pr",)),)
            )
            t2 = threading.Thread(
                target=svc.submit_collect, args=(_request(kernels=("cc",)),)
            )
            t1.start()
            t2.start()
            rejected = None
            for _ in range(50):
                events = svc.submit_collect(_request(kernels=("bfs",)))
                if events[0]["event"] == "error":
                    rejected = events
                    break
            t1.join(120.0)
            t2.join(120.0)
            if rejected is None:
                pytest.skip("engine drained faster than submissions arrived")
            assert "capacity" in rejected[0]["message"]
            # A rejected campaign leaves no inflight residue.
            assert svc.status()["inflight_cells"] == 0 or t1.is_alive()
        finally:
            svc.shutdown()


class TestHTTP:
    @pytest.fixture()
    def endpoint(self, service):
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.server_address[:2]
        server.shutdown()
        server.server_close()

    def test_submit_streams_ndjson(self, endpoint, service):
        host, port = endpoint
        with ServiceClient(host, port) as client:
            events = client.submit_and_collect(_request())
            assert events[0]["event"] == "accepted"
            assert events[-1]["event"] == "done"
            again = client.submit_and_collect(_request())
            assert again[-1]["executed"] == 0

    def test_status_and_healthz(self, endpoint):
        host, port = endpoint
        with ServiceClient(host, port) as client:
            assert client.healthz() == {"ok": True}
            status = client.status()
            assert "indexed_cells" in status
            assert "hit_rate" in status

    def test_malformed_submission_is_400(self, endpoint):
        host, port = endpoint
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="rejected"):
                client.submit_and_collect({"graphs": "urand"})
            with pytest.raises(ServiceError, match="rejected"):
                client.submit_and_collect({"graphs": "urand", "kernels": "bfs",
                                           "frameworks": "gap", "bogus": 1})

    def test_unknown_path_is_404(self, endpoint):
        host, port = endpoint
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="404"):
                client._json("GET", "/nope")

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("127.0.0.1", 1)  # nothing listens on port 1
        with pytest.raises(ServiceError, match="unreachable"):
            client.status()
