"""Parallel-executor resilience: crash recovery, breakers, kill/resume, leaks.

Tier-1 guarantees pinned here:

* a cell whose worker crashes is recorded from parent-side bookkeeping and
  retried on a replacement worker when ``--retries`` allows;
* a cell that crashes its worker twice falls back to in-parent execution
  (the crash-loop escape hatch) instead of burning a third worker;
* with retries exhausted (or disabled) a worker death becomes a
  structured ``error`` result and the rest of the campaign completes;
* the circuit breaker prunes a broken combo's undispatched cells;
* an interrupted CLI campaign (injected crash, exit code 86) resumes from
  its journal into a result set byte-identical (modulo timings) to an
  uninterrupted run — the crash/resume protocol end to end;
* no shared-memory segment survives an aborted parallel campaign.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import BenchmarkSpec, Telemetry, run_suite, run_suite_parallel
from repro.frameworks import KERNELS, Mode
from repro.gapbs import GAPReference
from repro.resilience.faults import CRASH_EXIT_CODE, FaultSpec

REPO_ROOT = Path(__file__).resolve().parents[1]
ONE_TRIAL = {k: 1 for k in KERNELS}


def _spec(**overrides):
    defaults = dict(scale=8, trials=ONE_TRIAL)
    defaults.update(overrides)
    return BenchmarkSpec(**defaults)


def _parallel_campaign(spec, kernels=("bfs",), graphs=("kron",), **kw):
    return run_suite(
        [GAPReference()],
        list(graphs),
        kernels=list(kernels),
        modes=[Mode.BASELINE],
        spec=spec,
        jobs=2,
        **kw,
    )


def test_worker_crash_is_retried_on_replacement_worker():
    spec = _spec(
        retries=1, faults=(FaultSpec(kind="crash", kernel="bfs", attempts=(0,)),)
    )
    telemetry = Telemetry()
    results = _parallel_campaign(spec, telemetry=telemetry)
    (result,) = results
    assert result.ok and result.attempts == 2
    statuses = sorted(s.status for s in telemetry.spans)
    assert statuses == ["error", "ok"]  # the lost attempt is traced too


def test_crash_loop_falls_back_to_in_parent_execution():
    spec = _spec(
        retries=2,
        faults=(FaultSpec(kind="crash", kernel="bfs", attempts=(0, 1)),),
    )
    seen = []
    results = _parallel_campaign(spec, progress=seen.append)
    (result,) = results
    # Two dead workers, then the cell runs to completion in the parent.
    assert result.ok and result.attempts == 3
    assert any(label.endswith("(in-parent)") for label in seen)


def test_worker_crash_without_retries_is_an_error_result():
    spec = _spec(faults=(FaultSpec(kind="crash", kernel="bfs", attempts=(0,)),))
    results = _parallel_campaign(spec, kernels=("bfs", "cc"))
    by_key = {r.cell_key: r for r in results}
    crashed = by_key[("kron", "baseline", "bfs", "gap")]
    assert crashed.status == "error" and crashed.attempts == 1
    assert f"exit code {CRASH_EXIT_CODE}" in crashed.error
    assert by_key[("kron", "baseline", "cc", "gap")].ok  # campaign continued


def test_parallel_breaker_prunes_undispatched_combo_cells():
    spec = _spec(
        breaker_threshold=1, faults=(FaultSpec(kind="error", kernel="cc"),)
    )
    results = _parallel_campaign(spec, kernels=("cc",), graphs=("kron", "road", "urand"))
    statuses = {r.graph: r.status for r in results}
    assert len(results) == 3
    # Two cells dispatch to the two workers and fail; the breaker opens on
    # the first failure and the queued third cell is skipped, not run.
    assert sorted(statuses.values()) == ["error", "error", "skipped"]
    skipped = results.skipped()
    assert len(skipped) == 1 and "circuit breaker" in skipped[0].error
    assert results.meta["resilience"]["skipped_cells"] == 1


# -- CLI kill/resume end to end ----------------------------------------------


def _cli_run(tmp_path, *extra, faults=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            "--scale",
            "7",
            "--graphs",
            "kron",
            "--kernels",
            "bfs,cc",
            "--frameworks",
            "gap",
            "--modes",
            "baseline",
            "--no-cache",
            *extra,
        ],
        env=env,
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=180,
    )


def _normalized(path):
    """Results payload with nondeterministic timings and lineage removed."""
    payload = json.loads(Path(path).read_text())
    for record in payload["results"]:
        record["trial_seconds"] = []
        record["seconds"] = None
    payload.get("meta", {}).pop("resilience", None)
    return json.dumps(payload, sort_keys=True).encode()


@pytest.mark.slow
def test_cli_kill_and_resume_matches_uninterrupted_run(tmp_path):
    journal = tmp_path / "campaign.jsonl"

    # 1. The campaign is killed by an injected crash mid-run: bfs lands in
    #    the journal, the process dies executing cc.
    killed = _cli_run(
        tmp_path,
        "--journal",
        str(journal),
        faults=[{"kind": "crash", "kernel": "cc", "attempts": [0]}],
    )
    assert killed.returncode == CRASH_EXIT_CODE, killed.stderr
    lines = journal.read_bytes().splitlines()
    assert len(lines) == 2  # header + the one completed cell, fsynced

    # 2. Resume without the fault: only cc re-runs, the set completes.
    resumed = _cli_run(
        tmp_path,
        "--journal",
        str(journal),
        "--resume",
        "--out",
        str(tmp_path / "resumed.json"),
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "2 cells measured, 0 failed" in resumed.stdout

    # 3. An uninterrupted campaign produces the identical normalized set.
    full = _cli_run(tmp_path, "--out", str(tmp_path / "full.json"))
    assert full.returncode == 0, full.stderr
    assert _normalized(tmp_path / "resumed.json") == _normalized(
        tmp_path / "full.json"
    )


@pytest.mark.slow
def test_cli_refuses_journal_from_different_campaign(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    first = _cli_run(tmp_path, "--journal", str(journal))
    assert first.returncode == 0, first.stderr
    mismatched = _cli_run(
        tmp_path, "--scale", "8", "--journal", str(journal), "--resume"
    )
    assert mismatched.returncode == 1
    assert "cannot resume campaign" in mismatched.stderr
    assert "spec" in mismatched.stderr


# -- shared-memory hygiene ----------------------------------------------------


@pytest.mark.skipif(not Path("/dev/shm").is_dir(), reason="no /dev/shm")
def test_aborted_parallel_campaign_leaves_no_shm_segments():
    before = set(os.listdir("/dev/shm"))

    def abort(label):
        raise KeyboardInterrupt  # the operator hits Ctrl-C mid-campaign

    with pytest.raises(KeyboardInterrupt):
        run_suite_parallel(
            [GAPReference()],
            ["kron", "road"],
            kernels=["bfs", "cc"],
            modes=[Mode.BASELINE],
            spec=_spec(),
            jobs=2,
            progress=abort,
        )
    leaked = {
        name for name in set(os.listdir("/dev/shm")) - before if "psm" in name
    }
    assert not leaked


@pytest.mark.skipif(not Path("/dev/shm").is_dir(), reason="no /dev/shm")
def test_completed_parallel_campaign_leaves_no_shm_segments():
    before = set(os.listdir("/dev/shm"))
    results = _parallel_campaign(_spec(), kernels=("bfs", "cc"))
    assert all(r.ok for r in results)
    leaked = {
        name for name in set(os.listdir("/dev/shm")) - before if "psm" in name
    }
    assert not leaked
