"""End-to-end integration: the full harness and randomized cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BenchmarkSpec, run_suite
from repro.core.tables import table4_rows, table5_rows
from repro.frameworks import FRAMEWORK_NAMES, KERNELS, Mode, all_frameworks, get
from repro.graphs import CSRGraph, EdgeList


class TestFullSuiteIntegration:
    """One complete (verified) campaign across everything, at tiny scale."""

    @pytest.fixture(scope="class")
    def campaign(self):
        spec = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})
        return run_suite(
            all_frameworks().values(),
            ["road", "kron"],
            spec=spec,
        )

    def test_every_cell_present_and_verified(self, campaign):
        assert len(campaign) == len(FRAMEWORK_NAMES) * len(KERNELS) * 2 * 2
        assert all(result.verified for result in campaign)

    def test_table4_complete(self, campaign):
        rows = table4_rows(campaign, ["road", "kron"])
        for row in rows:
            for mode in ("baseline", "optimized"):
                for graph in ("road", "kron"):
                    assert row[f"{mode}:{graph}"] is not None
                    assert row[f"{mode}:{graph}:winner"] in FRAMEWORK_NAMES

    def test_table5_complete(self, campaign):
        rows = table5_rows(campaign, ["road", "kron"])
        assert len(rows) == (len(FRAMEWORK_NAMES) - 1) * len(KERNELS)
        values = [
            row[f"{mode}:{graph}"]
            for row in rows
            for mode in ("baseline", "optimized")
            for graph in ("road", "kron")
        ]
        assert all(isinstance(v, float) and v > 0 for v in values)


def random_graphs(directed: bool):
    """Hypothesis strategy: arbitrary small graphs (any topology)."""

    def build(args):
        n, pairs = args
        src = np.array([a % n for a, _ in pairs], dtype=np.int64)
        dst = np.array([b % n for _, b in pairs], dtype=np.int64)
        return CSRGraph.from_edge_list(EdgeList(n, src, dst), directed=directed)

    return st.tuples(
        st.integers(2, 30),
        st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=120),
    ).map(build)


class TestRandomizedCrossFramework:
    """Property tests: all six frameworks agree on arbitrary graphs.

    These catch topology edge cases the corpus misses: disconnected shards,
    self-loop-only inputs, stars, parallel chains, empty graphs.
    """

    @given(random_graphs(directed=True))
    @settings(max_examples=25, deadline=None)
    def test_bfs_reachability_agreement(self, graph):
        candidates = np.flatnonzero(graph.out_degrees > 0)
        source = int(candidates[0]) if candidates.size else 0
        reference = get("gap").bfs(graph, source) >= 0
        for name in FRAMEWORK_NAMES[1:]:
            reached = get(name).bfs(graph, source) >= 0
            assert np.array_equal(reached, reference), name

    @given(random_graphs(directed=True))
    @settings(max_examples=25, deadline=None)
    def test_cc_partition_agreement(self, graph):
        reference = get("gap").connected_components(graph)
        _, ref_ids = np.unique(reference, return_inverse=True)
        for name in FRAMEWORK_NAMES[1:]:
            labels = get(name).connected_components(graph)
            _, ids = np.unique(labels, return_inverse=True)
            assert np.array_equal(ids, ref_ids), name

    @given(random_graphs(directed=False))
    @settings(max_examples=25, deadline=None)
    def test_tc_agreement(self, graph):
        reference = get("gap").triangle_count(graph)
        for name in FRAMEWORK_NAMES[1:]:
            assert get(name).triangle_count(graph) == reference, name

    @given(random_graphs(directed=True))
    @settings(max_examples=15, deadline=None)
    def test_pr_agreement(self, graph):
        reference = get("gap").pagerank(graph, tolerance=1e-10, max_iterations=500)
        for name in FRAMEWORK_NAMES[1:]:
            scores = get(name).pagerank(graph, tolerance=1e-10, max_iterations=500)
            assert np.abs(scores - reference).max() < 1e-6, name

    @given(random_graphs(directed=True), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_sssp_agreement_random_weights(self, graph, weight_seed):
        if graph.num_edges == 0:
            return
        rng = np.random.default_rng(weight_seed)
        edges = graph.to_edge_list().with_uniform_weights(rng)
        weighted = CSRGraph.from_edge_list(edges, directed=True)
        source = int(np.flatnonzero(weighted.out_degrees > 0)[0])
        reference = get("gap").sssp(weighted, source)
        for name in FRAMEWORK_NAMES[1:]:
            dist = get(name).sssp(weighted, source)
            assert np.array_equal(
                np.nan_to_num(dist, posinf=-1.0),
                np.nan_to_num(reference, posinf=-1.0),
            ), name

    @given(random_graphs(directed=True))
    @settings(max_examples=15, deadline=None)
    def test_bc_agreement(self, graph):
        candidates = np.flatnonzero(graph.out_degrees > 0)
        if candidates.size == 0:
            return
        sources = candidates[:2]
        reference = get("gap").betweenness(graph, sources)
        for name in FRAMEWORK_NAMES[1:]:
            scores = get(name).betweenness(graph, sources)
            assert np.allclose(scores, reference), name


class TestDegenerateInputs:
    def test_empty_graph_kernels(self):
        graph = CSRGraph.from_arrays(
            4, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            directed=False,
        )
        for name in FRAMEWORK_NAMES:
            framework = get(name)
            assert framework.triangle_count(graph) == 0
            labels = framework.connected_components(graph)
            assert len(np.unique(labels)) == 4
            scores = framework.pagerank(graph)
            assert np.isfinite(scores).all()

    def test_single_edge_bfs(self):
        graph = CSRGraph.from_arrays(2, np.array([0]), np.array([1]))
        for name in FRAMEWORK_NAMES:
            parents = get(name).bfs(graph, 0)
            assert parents[0] == 0 and parents[1] == 0

    def test_two_cliques_cc(self):
        # Two K3s.
        src = np.array([0, 0, 1, 3, 3, 4])
        dst = np.array([1, 2, 2, 4, 5, 5])
        graph = CSRGraph.from_arrays(6, src, dst, directed=False)
        for name in FRAMEWORK_NAMES:
            labels = get(name).connected_components(graph)
            assert labels[0] == labels[1] == labels[2]
            assert labels[3] == labels[4] == labels[5]
            assert labels[0] != labels[3]
            assert get(name).triangle_count(graph) == 2
