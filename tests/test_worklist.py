"""Tests for the Galois-style worklist substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import counters
from repro.worklist import (
    ChunkedWorklist,
    OrderedByIntegerMetric,
    for_each_eager,
    for_each_round,
)


class TestChunkedWorklist:
    def test_push_pop(self):
        wl = ChunkedWorklist(chunk_size=4)
        wl.push(np.array([1, 2, 3]))
        chunk = wl.pop()
        assert chunk.tolist() == [1, 2, 3]
        assert wl.pop() is None

    def test_large_push_is_split(self):
        wl = ChunkedWorklist(chunk_size=2)
        wl.push(np.arange(5))
        sizes = []
        while (chunk := wl.pop()) is not None:
            sizes.append(chunk.size)
        assert sum(sizes) == 5
        assert max(sizes) <= 2 + 2  # pop may merge up to one extra chunk

    def test_small_pushes_coalesce_on_pop(self):
        wl = ChunkedWorklist(chunk_size=100)
        for i in range(10):
            wl.push(np.array([i]))
        chunk = wl.pop()
        assert chunk.size == 10

    def test_drain_all(self):
        wl = ChunkedWorklist()
        wl.push(np.array([1]))
        wl.push(np.array([2, 3]))
        assert sorted(wl.drain_all().tolist()) == [1, 2, 3]
        assert not wl

    def test_len(self):
        wl = ChunkedWorklist()
        wl.push(np.arange(7))
        assert len(wl) == 7

    def test_empty_push_ignored(self):
        wl = ChunkedWorklist()
        wl.push(np.empty(0, dtype=np.int64))
        assert not wl


class TestOBIM:
    def test_priority_order(self):
        obim = OrderedByIntegerMetric()
        obim.push(np.array([10]), np.array([2]))
        obim.push(np.array([20]), np.array([0]))
        obim.push(np.array([30]), np.array([1]))
        order = []
        while (popped := obim.pop_chunk()) is not None:
            order.append(popped[0])
        assert order == [0, 1, 2]

    def test_drain_priority(self):
        obim = OrderedByIntegerMetric()
        obim.push(np.array([1, 2]), np.array([5, 5]))
        obim.push(np.array([3]), np.array([7]))
        assert sorted(obim.drain_priority(5).tolist()) == [1, 2]
        assert obim.current_priority() == 7

    def test_same_priority_grouped(self):
        obim = OrderedByIntegerMetric()
        obim.push(np.array([1, 2, 3]), np.array([4, 4, 9]))
        priority, chunk = obim.pop_chunk()
        assert priority == 4
        assert sorted(chunk.tolist()) == [1, 2]

    def test_empty(self):
        obim = OrderedByIntegerMetric()
        assert obim.current_priority() is None
        assert obim.pop_chunk() is None
        assert not obim

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 9)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pops_never_decrease_below_prior_min(self, items):
        """Priorities pop in non-decreasing order when nothing new is pushed."""
        obim = OrderedByIntegerMetric()
        vertices = np.array([v for v, _ in items], dtype=np.int64)
        priorities = np.array([p for _, p in items], dtype=np.int64)
        obim.push(vertices, priorities)
        seen = []
        while (popped := obim.pop_chunk()) is not None:
            seen.append(popped[0])
        assert seen == sorted(seen)


class TestExecutors:
    def test_round_executor_counts_rounds(self):
        # Chain activation: 0 -> 1 -> 2 -> stop.
        state = {"next": [np.array([1]), np.array([2]), np.empty(0, dtype=np.int64)]}

        def operator(active):
            return state["next"].pop(0)

        with counters.counting() as work:
            rounds = for_each_round(np.array([0]), operator)
        assert rounds == 3
        assert work.rounds == 3

    def test_round_executor_deduplicates_within_round(self):
        seen = []

        def operator(active):
            seen.append(active.tolist())
            return np.empty(0, dtype=np.int64)

        for_each_round(np.array([3, 3, 1]), operator)
        assert seen == [[1, 3]]

    def test_eager_executor_processes_pushes(self):
        visited = []

        def operator(chunk):
            visited.extend(chunk.tolist())
            if len(visited) < 4:
                return np.array([len(visited) + 10])
            return np.empty(0, dtype=np.int64)

        chunks = for_each_eager(np.array([0]), operator, chunk_size=1)
        assert chunks == 4
        assert visited == [0, 11, 12, 13]

    def test_eager_executor_empty_initial(self):
        assert for_each_eager(np.empty(0, dtype=np.int64), lambda c: c) == 0
