"""Policy-level tests for the GraphIt engine: direction decisions & tiling."""

import numpy as np

from repro.core import counters
from repro.graphitc import (
    Direction,
    FrontierLayout,
    Schedule,
    SegmentedEdges,
    VertexSet,
    edgeset_apply_from,
)


def _noop(srcs, dsts, weights):
    return np.zeros(dsts.size, dtype=bool)


class TestHybridDecision:
    def test_small_frontier_pushes(self, corpus):
        """A single low-degree vertex must take the sparse push path,
        observable as the frontier *not* being converted to a bitvector."""
        graph = corpus["kron"]
        low_degree = int(np.flatnonzero(graph.out_degrees == 1)[0])
        frontier = VertexSet.from_ids(graph.num_vertices, np.array([low_degree]))
        with counters.counting() as work:
            edgeset_apply_from(graph, frontier, _noop, Schedule())
        assert "frontier_conversions" not in work.extras

    def test_heavy_frontier_pulls(self, corpus):
        """A frontier holding most of the edge volume must pull: the sparse
        input converts to a bitvector and the engine scans in-edges."""
        graph = corpus["kron"]
        frontier = VertexSet.from_ids(
            graph.num_vertices, np.arange(graph.num_vertices)
        )
        with counters.counting() as work:
            edgeset_apply_from(graph, frontier, _noop, Schedule())
        assert work.extras.get("frontier_conversions", 0) == 1

    def test_pull_with_filter_scans_fewer_edges(self, corpus):
        """The masked pull only expands in-edges of filter-passing rows."""
        graph = corpus["kron"]
        frontier = VertexSet.from_ids(
            graph.num_vertices, np.arange(graph.num_vertices)
        )
        schedule = Schedule(
            direction=Direction.DENSE_PULL, frontier=FrontierLayout.BITVECTOR
        )
        nothing = np.zeros(graph.num_vertices, dtype=bool)
        nothing[:8] = True
        with counters.counting() as narrow:
            edgeset_apply_from(graph, frontier, _noop, schedule, to_filter=nothing)
        with counters.counting() as wide:
            edgeset_apply_from(graph, frontier, _noop, schedule)
        assert narrow.edges_examined < wide.edges_examined


class TestSegmentedEdges:
    def test_partition_is_complete(self, corpus):
        graph = corpus["kron"]
        tiled = SegmentedEdges(graph, num_segments=4)
        total = sum(src.size for src, _ in tiled.segments)
        assert total == graph.num_edges == tiled.num_edges

    def test_segments_are_source_ranges(self, corpus):
        graph = corpus["kron"]
        tiled = SegmentedEdges(graph, num_segments=4)
        previous_max = -1
        for sources, _ in tiled.segments:
            assert sources.min() > previous_max
            previous_max = int(sources.max())

    def test_apply_visits_all_edges(self, corpus):
        graph = corpus["kron"]
        tiled = SegmentedEdges(graph, num_segments=4)
        seen = {"count": 0}

        def count(srcs, dsts, weights):
            seen["count"] += srcs.size
            return np.zeros(dsts.size, dtype=bool)

        tiled.apply(count)
        assert seen["count"] == graph.num_edges

    def test_pull_orientation_pairs(self, tiny_graph):
        """In pull mode, (source, target) must still mean source -> target."""
        tiled = SegmentedEdges(tiny_graph, num_segments=2, pull=True)
        for sources, targets in tiled.segments:
            for u, v in zip(sources.tolist(), targets.tolist()):
                assert tiny_graph.has_edge(u, v)


class TestLagraphBFSDirectionSwitch:
    def test_pull_used_on_dense_frontier(self, corpus):
        """LAGraph's BFS must take the masked-mxv (pull) path at the hub,
        visible as sparse->dense frontier conversions."""
        from repro.lagraph import lagraph_bfs

        graph = corpus["kron"]
        hub = int(np.argmax(graph.out_degrees))
        with counters.counting() as work:
            lagraph_bfs(graph, hub)
        assert work.extras.get("format_conversions", 0) >= 1
