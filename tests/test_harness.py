"""Tests for the benchmark harness: spec, runner, results, tables."""

import numpy as np
import pytest

from repro.core import BenchmarkSpec, GraphCase, ResultSet, RunResult, SourcePicker, run_cell, run_suite
from repro.core.tables import (
    render,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.errors import BenchmarkConfigError
from repro.frameworks import KERNELS, Mode, get
from repro.generators import build_corpus


TINY_SPEC = BenchmarkSpec(
    scale=8,
    trials={k: 1 for k in KERNELS},
)


class TestSpec:
    def test_defaults(self):
        spec = BenchmarkSpec()
        assert spec.num_trials("bfs") >= 1
        assert spec.delta_for("road") > spec.delta_for("twitter")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            BenchmarkSpec(trials={"pagerank": 3})

    def test_zero_trials_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            BenchmarkSpec(trials={"bfs": 0})

    def test_unknown_graph_delta_default(self):
        assert BenchmarkSpec().delta_for("mystery") == 16


class TestSourcePicker:
    def test_deterministic(self, corpus):
        graph = corpus["kron"]
        a = SourcePicker(graph, seed=1)
        b = SourcePicker(graph, seed=1)
        assert [a.next_source() for _ in range(5)] == [
            b.next_source() for _ in range(5)
        ]

    def test_sources_have_out_degree(self, corpus):
        graph = corpus["road"]
        picker = SourcePicker(graph, seed=0)
        for _ in range(10):
            assert graph.out_degree(picker.next_source()) > 0

    def test_batch_distinct(self, corpus):
        picker = SourcePicker(corpus["kron"], seed=0)
        batch = picker.next_sources(4)
        assert len(set(batch.tolist())) == 4

    def test_rejects_empty_graph(self):
        from repro.graphs import CSRGraph

        empty = CSRGraph.from_arrays(
            3, np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        with pytest.raises(BenchmarkConfigError):
            SourcePicker(empty)


class TestRunner:
    @pytest.fixture(scope="class")
    def case(self):
        return GraphCase.build("kron", scale=8)

    def test_case_bundles(self, case):
        assert case.weighted.is_weighted
        assert not case.undirected.directed

    def test_undirected_input_aliases_undirected_view(self, case):
        """kron is generated undirected: no symmetrized copy is made."""
        assert not case.graph.directed
        assert case.undirected is case.graph

    def test_directed_input_gets_symmetrized_copy(self):
        case = GraphCase.build("road", scale=7)
        assert case.graph.directed
        assert case.undirected is not case.graph
        assert not case.undirected.directed
        # Symmetrization only adds missing reverse edges, never drops any.
        assert case.undirected.num_edges >= case.graph.num_edges

    def test_weighted_view_preserves_directedness(self):
        for name in ("road", "kron"):
            case = GraphCase.build(name, scale=7)
            assert case.weighted.directed == case.graph.directed
            assert case.weighted.num_edges == case.graph.num_edges
            assert case.weighted.is_weighted
            assert not case.graph.is_weighted

    def test_already_weighted_input_is_aliased(self):
        from repro.generators import build_graph, weighted_version

        graph = weighted_version(build_graph("kron", scale=7))
        case = GraphCase.from_graph("kron", graph)
        assert case.weighted is graph

    def test_undirected_view_never_carries_weights(self):
        """TC runs unweighted; the undirected view must match the base graph."""
        for name in ("road", "kron"):
            case = GraphCase.build(name, scale=7)
            assert not case.undirected.is_weighted

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_run_cell_each_kernel(self, case, kernel):
        result = run_cell(get("gap"), kernel, case, Mode.BASELINE, TINY_SPEC)
        assert result.kernel == kernel
        assert len(result.trial_seconds) == 1
        assert result.seconds > 0
        assert result.verified

    def test_run_cell_counters_populated(self, case):
        result = run_cell(get("gap"), "pr", case, Mode.BASELINE, TINY_SPEC)
        assert result.iterations > 0
        assert result.edges_examined > 0

    def test_run_suite_shape(self):
        results = run_suite(
            [get("gap"), get("gkc")],
            ["kron"],
            kernels=["bfs", "tc"],
            modes=[Mode.BASELINE],
            spec=TINY_SPEC,
        )
        assert len(results) == 4
        assert results.one("gkc", "tc", "kron", Mode.BASELINE) is not None

    def test_progress_callback(self):
        seen = []
        run_suite(
            [get("gap")],
            ["kron"],
            kernels=["cc"],
            modes=[Mode.BASELINE],
            spec=TINY_SPEC,
            progress=seen.append,
        )
        assert seen == ["baseline/kron/cc/gap"]


class TestResults:
    def _result(self, framework="gap", seconds=(0.5, 1.5)):
        return RunResult(
            framework=framework,
            kernel="bfs",
            graph="kron",
            mode=Mode.BASELINE,
            trial_seconds=list(seconds),
        )

    def test_average_and_best(self):
        r = self._result()
        assert r.seconds == 1.0
        assert r.best_seconds == 0.5

    def test_lookup_filters(self):
        rs = ResultSet([self._result("gap"), self._result("gkc")])
        assert len(rs.lookup(framework="gkc")) == 1
        assert len(rs.lookup(kernel="bfs")) == 2
        assert rs.one("gap", "bfs", "kron", Mode.BASELINE).framework == "gap"

    def test_json_roundtrip(self, tmp_path):
        rs = ResultSet([self._result()])
        path = tmp_path / "r.json"
        rs.save_json(path)
        back = ResultSet.load_json(path)
        assert len(back) == 1
        assert back.results[0].seconds == 1.0
        assert back.results[0].mode is Mode.BASELINE

    def test_frameworks_order(self):
        rs = ResultSet([self._result("gap"), self._result("gkc"), self._result("gap")])
        assert rs.frameworks() == ["gap", "gkc"]


class TestTables:
    @pytest.fixture(scope="class")
    def small_results(self):
        return run_suite(
            [get("gap"), get("gkc")],
            ["kron"],
            kernels=["bfs", "tc"],
            modes=[Mode.BASELINE, Mode.OPTIMIZED],
            spec=TINY_SPEC,
        )

    def test_table1(self):
        corpus = build_corpus(scale=8)
        rows = table1_rows(corpus)
        assert len(rows) == 5
        road = next(r for r in rows if r["Name"] == "road")
        assert road["Directed"] == "Y"
        assert road["Paper Diameter"] == 6304

    def test_table2_all_frameworks(self):
        rows = table2_rows()
        assert len(rows) == 6
        assert any("GraphIt" in row["Framework"] for row in rows)

    def test_table3_matches_paper_algorithms(self):
        rows = table3_rows()
        by_task = {row["Task"]: row for row in rows}
        assert "Afforest" in by_task["CC"]["gap"]
        assert "FastSV" in by_task["CC"]["suitesparse"]
        assert "Label propagation" in by_task["CC"]["graphit"]
        assert "Shiloach-Vishkin" in by_task["CC"]["gkc"]
        assert "Gauss-Seidel" in by_task["PR"]["galois"]
        assert "Jacobi" in by_task["PR"]["gap"]

    def test_table4_winner_fields(self, small_results):
        rows = table4_rows(small_results, ["kron"])
        bfs_row = next(r for r in rows if r["Kernel"] == "BFS")
        assert bfs_row["baseline:kron"] is not None
        assert bfs_row["baseline:kron:winner"] in ("gap", "gkc")

    def test_table5_reference_excluded(self, small_results):
        rows = table5_rows(small_results, ["kron"])
        assert all(row["Framework"] != "gap" for row in rows)
        assert any(row["baseline:kron"] is not None for row in rows)

    def test_render(self, small_results):
        text = render(table4_rows(small_results, ["kron"]), title="T4")
        assert text.startswith("T4")
        assert "BFS" in text

    def test_render_empty(self):
        assert "(no rows)" in render([])


class TestStability:
    def test_run_result_statistics(self):
        from repro.core.results import RunResult

        steady = RunResult("gap", "bfs", "kron", Mode.BASELINE, [1.0, 1.0, 1.0])
        jittery = RunResult("gap", "bfs", "road", Mode.BASELINE, [1.0, 2.0, 3.0])
        assert steady.stddev_seconds == 0.0
        assert steady.variation == 0.0
        assert jittery.stddev_seconds == pytest.approx(1.0)
        assert jittery.variation == pytest.approx(0.5)

    def test_single_trial_zero_variation(self):
        from repro.core.results import RunResult

        single = RunResult("gap", "bfs", "kron", Mode.BASELINE, [1.0])
        assert single.variation == 0.0

    def test_stability_rows_structure(self):
        from repro.core.results import RunResult, ResultSet
        from repro.core.tables import stability_rows

        results = ResultSet(
            [
                RunResult("gap", "bfs", "road", Mode.BASELINE, [1.0, 3.0]),
                RunResult("gap", "bfs", "kron", Mode.BASELINE, [1.0, 1.0]),
            ]
        )
        rows = {row["Graph"]: row for row in stability_rows(results, ["road", "kron"])}
        assert rows["road"]["Mean CV"] > rows["kron"]["Mean CV"]
        assert rows["road"]["Cells"] == 1
