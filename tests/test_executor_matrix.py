"""Executor equivalence matrix: every execution mode, every fault class.

The four execution modes — serial, per-cell process pool, batched
process pool, and thread pool — must be *observationally identical*:
same cells in the same canonical order, same statuses, same verification
outcomes, same machine-independent work counters.  Timings and error
message texts are the only permitted differences (a crash surfaces as a
worker death in process modes and as an in-process exception elsewhere).

The campaign mixes fast cells, a deterministic verification failure, an
injected crash-class fault, and a hung cell, so the matrix covers every
(mode x fault) combination the executors can encounter:

* fast cells         -> ``ok`` everywhere;
* broken kernel      -> ``error`` (verification) everywhere;
* crash-class fault  -> ``error`` everywhere (``crash`` kills the worker
  in process modes; serial/threads substitute the ``error`` fault, since
  ``os._exit`` there would take the whole campaign down — which is
  exactly the isolation difference the substitution documents);
* hung cell          -> ``timeout`` everywhere (SIGALRM interrupts it
  serially and in workers; the thread pool detects the overrun post-hoc).
"""

import dataclasses
import time

import pytest

from repro.core import BenchmarkSpec, Telemetry, run_suite
from repro.errors import VerificationError
from repro.frameworks import KERNELS, Mode, RunContext
from repro.gapbs import GAPReference
from repro.resilience.faults import FaultSpec

ONE_TRIAL = {k: 1 for k in KERNELS}

#: mode name -> (run_suite jobs, extra BenchmarkSpec fields).  The batched
#: process mode pins an explicit batch size so multi-cell batches form even
#: at this small campaign size.
EXEC_MODES = {
    "serial": (1, {}),
    "process": (2, {"batch_size": 1}),
    "process-batched": (2, {"batch_size": 3}),
    "threads": (2, {"pool": "threads"}),
}

PROCESS_MODES = ("process", "process-batched")


class BrokenTC(GAPReference):
    """Deterministically fails verification (always one triangle short)."""

    attributes = dataclasses.replace(GAPReference.attributes, name="broken-tc")

    def triangle_count(self, graph, ctx=RunContext()):
        return super().triangle_count(graph, ctx) - 1


class SlowCC(GAPReference):
    """A CC kernel that overruns its trial budget, then finishes.

    The hang is *bounded* so the matrix stays meaningful in every mode:
    SIGALRM interrupts the sleep mid-flight (serial and process workers),
    while the thread pool — where a thread cannot be interrupted — runs
    it to completion and flags the overrun post-hoc.  Either way the cell
    must come out as a ``timeout``.
    """

    attributes = dataclasses.replace(GAPReference.attributes, name="slow-cc")

    def connected_components(self, graph, ctx=RunContext()):
        deadline = time.monotonic() + 1.2
        while time.monotonic() < deadline:
            time.sleep(0.02)
        return super().connected_components(graph, ctx)


def _normalized(results):
    """Everything that must be identical across modes (no timings/texts)."""
    return [
        (
            r.cell_key,
            r.status,
            r.verified,
            r.edges_examined,
            r.rounds,
            r.iterations,
        )
        for r in results
    ]


def _run(mode_name, frameworks, kernels, spec_extra, telemetry=None):
    jobs, mode_spec = EXEC_MODES[mode_name]
    spec = BenchmarkSpec(
        scale=8, trials=ONE_TRIAL, **{**mode_spec, **spec_extra}
    )
    return run_suite(
        frameworks,
        ["kron"],
        kernels=kernels,
        modes=[Mode.BASELINE],
        spec=spec,
        jobs=jobs,
        telemetry=telemetry,
    )


def _fault_campaign(mode_name, telemetry=None):
    """Fast cells + verification failure + crash-class fault, per mode."""
    kind = "crash" if mode_name in PROCESS_MODES else "error"
    fault = FaultSpec(kind=kind, framework="gap", kernel="cc")
    return _run(
        mode_name,
        [GAPReference(), BrokenTC()],
        ["bfs", "cc", "tc"],
        {"faults": (fault,)},
        telemetry=telemetry,
    )


def _timeout_campaign(mode_name, telemetry=None):
    """Fast cells + a hung cell under a hard trial deadline, per mode."""
    return _run(
        mode_name,
        [GAPReference(), SlowCC()],
        ["bfs", "cc"],
        {"trial_timeout": 0.3},
        telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def fault_matrix():
    campaigns = {}
    for mode_name in EXEC_MODES:
        tel = Telemetry()
        campaigns[mode_name] = (_fault_campaign(mode_name, tel), tel)
    return campaigns


@pytest.fixture(scope="module")
def timeout_matrix():
    campaigns = {}
    for mode_name in EXEC_MODES:
        tel = Telemetry()
        campaigns[mode_name] = (_timeout_campaign(mode_name, tel), tel)
    return campaigns


def test_fault_campaign_statuses_are_the_expected_mix(fault_matrix):
    results, _ = fault_matrix["serial"]
    by_key = {r.cell_key: r for r in results}
    assert len(results) == 6
    assert by_key[("kron", "baseline", "cc", "gap")].status == "error"
    broken = by_key[("kron", "baseline", "tc", "broken-tc")]
    assert broken.status == "error"
    assert VerificationError.__name__ in broken.error
    ok_cells = [r for r in results if r.ok]
    assert len(ok_cells) == 4  # the fast cells all survived the faults


@pytest.mark.parametrize("mode_name", [m for m in EXEC_MODES if m != "serial"])
def test_fault_campaign_matches_serial(fault_matrix, mode_name):
    serial, _ = fault_matrix["serial"]
    other, _ = fault_matrix[mode_name]
    assert _normalized(other) == _normalized(serial)


@pytest.mark.parametrize("mode_name", list(EXEC_MODES))
def test_fault_campaign_traces_one_span_per_cell(fault_matrix, mode_name):
    results, tel = fault_matrix[mode_name]
    assert len(tel.spans) == len(results)
    assert sorted(s.status for s in tel.spans) == sorted(
        r.status for r in results
    )


def test_timeout_campaign_statuses_are_the_expected_mix(timeout_matrix):
    results, _ = timeout_matrix["serial"]
    by_key = {r.cell_key: r for r in results}
    assert len(results) == 4
    hung = by_key[("kron", "baseline", "cc", "slow-cc")]
    assert hung.status == "timeout"
    assert hung.trial_seconds == [] and not hung.verified
    assert sum(r.ok for r in results) == 3


@pytest.mark.parametrize("mode_name", [m for m in EXEC_MODES if m != "serial"])
def test_timeout_campaign_matches_serial(timeout_matrix, mode_name):
    serial, _ = timeout_matrix["serial"]
    other, _ = timeout_matrix[mode_name]
    assert _normalized(other) == _normalized(serial)


@pytest.mark.parametrize("mode_name", list(EXEC_MODES))
def test_timeout_campaign_traces_one_span_per_cell(timeout_matrix, mode_name):
    results, tel = timeout_matrix[mode_name]
    assert len(tel.spans) == len(results)
    timeout_spans = [s for s in tel.spans if s.status == "timeout"]
    assert len(timeout_spans) == 1
    assert timeout_spans[0].attributes["framework"] == "slow-cc"


def test_campaign_meta_records_the_pool_flavor():
    results = _run("threads", [GAPReference()], ["bfs"], {})
    assert results.meta["pool"] == "threads"
    assert results.meta["spec"]["pool"] == "threads"
    results = _run("process-batched", [GAPReference()], ["bfs"], {})
    assert results.meta["pool"] == "process"
    assert results.meta["spec"]["batch_size"] == 3
