"""Warm worker pool: reuse across campaigns, respawn, stale-message hygiene.

Tier-1 guarantees pinned here:

* a :class:`WorkerPool` handle runs *multiple* campaigns on the same
  worker processes — the PIDs do not change between campaigns, which is
  the whole point of warm pools (spawn cost paid once);
* an externally owned pool survives a campaign that aborts mid-flight,
  and the next campaign on it produces clean results (stale messages
  from the aborted campaign are filtered by sequence stamp);
* ``reset()`` replaces every worker;
* a dead worker is replaced at the next ``begin_campaign``.
"""

import pytest

from repro.core import (
    BenchmarkSpec,
    Telemetry,
    WorkerPool,
    run_suite_parallel,
)
from repro.frameworks import KERNELS, Mode
from repro.gapbs import GAPReference

SPEC = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})


def _campaign(pool, kernels=("bfs",), telemetry=None, **kw):
    return run_suite_parallel(
        [GAPReference()],
        ["kron"],
        kernels=list(kernels),
        modes=[Mode.BASELINE],
        spec=SPEC,
        jobs=pool.jobs,
        telemetry=telemetry,
        pool=pool,
        **kw,
    )


def test_pool_is_reused_across_campaigns():
    with WorkerPool(2) as pool:
        pids_before = pool.pids()
        assert len(pids_before) == 2
        first = _campaign(pool, kernels=("bfs", "cc"))
        second = _campaign(pool, kernels=("pr", "tc"))
        assert all(r.ok for r in first) and len(first) == 2
        assert all(r.ok for r in second) and len(second) == 2
        # Same processes served both campaigns: warm, not respawned.
        assert pool.pids() == pids_before


def test_pool_survives_aborted_campaign():
    with WorkerPool(2) as pool:
        def abort(label):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            _campaign(pool, kernels=("bfs", "cc"), progress=abort)
        # The pool handle is still usable; the aborted campaign's workers
        # were replaced and its stray messages are dropped by stamp.
        telemetry = Telemetry()
        results = _campaign(pool, kernels=("bfs", "cc"), telemetry=telemetry)
        assert len(results) == 2 and all(r.ok for r in results)
        assert len(telemetry.spans) == 2


def test_reset_replaces_every_worker():
    with WorkerPool(2) as pool:
        pids_before = pool.pids()
        pool.reset()
        pids_after = pool.pids()
        assert set(pids_before.values()).isdisjoint(set(pids_after.values()))
        results = _campaign(pool)
        assert len(results) == 1 and all(r.ok for r in results)


def test_dead_worker_is_replaced_at_next_campaign():
    with WorkerPool(2) as pool:
        victim = pool._slots[0]["process"]
        victim.terminate()
        victim.join(5.0)
        assert not pool.is_alive(0)
        results = _campaign(pool, kernels=("bfs", "cc"))
        assert len(results) == 2 and all(r.ok for r in results)
        assert pool.is_alive(0)


def test_shutdown_is_idempotent():
    pool = WorkerPool(2)
    pool.shutdown()
    pool.shutdown()
    assert not any(pool.is_alive(slot) for slot in range(pool.jobs))


def test_pool_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        WorkerPool(0)
