"""Unit suite for the shared linear-algebra substrate (``repro.la``).

Every primitive ships two engines — the optimized path and the verbatim
pre-port reference — switched by :mod:`repro.la.config`.  This suite pins
that the two engines are observationally identical on the cases that
matter (empty/full frontiers, int32/int64 CSR dtypes, structural and
complement masks), that the semiring paths satisfy the algebraic laws the
kernels rely on, and that the early-exit pull examines strictly fewer
edges while claiming identical parents.
"""

import numpy as np
import pytest

from repro.core import GraphCase
from repro.la import (
    ALPHA,
    BETA,
    DirectionOptimizer,
    enabled,
    frontier_spmv,
    gather_edges,
    gather_edges_weighted,
    is_full_range,
    masked_pull_claim,
    plus_times_operator,
    set_enabled,
    spmv_min_plus,
    use_substrate,
)
from repro.la.gather import _flat_edge_index, _reference_flat_edge_index
from repro.semiring.ops import ANY_SECONDI, MIN_PLUS, PLUS_TIMES


@pytest.fixture(scope="module")
def kron():
    return GraphCase.build("kron", scale=7).graph


@pytest.fixture(scope="module")
def road():
    return GraphCase.build("road", scale=7).weighted


def _csr(dtype):
    """A small fixed CSR: 5 vertices, ragged rows including an empty one."""
    indptr = np.array([0, 2, 5, 5, 6, 8], dtype=dtype)
    indices = np.array([1, 3, 0, 2, 4, 4, 1, 2], dtype=dtype)
    weights = np.arange(1, 9, dtype=np.float64)
    return indptr, indices, weights


class TestConfig:
    def test_toggle_restores(self):
        before = enabled()
        with use_substrate(False):
            assert not enabled()
            with use_substrate(True):
                assert enabled()
            assert not enabled()
        assert enabled() == before

    def test_set_enabled_returns_previous(self):
        previous = set_enabled(False)
        try:
            assert previous == True or previous == False
            assert not enabled()
        finally:
            set_enabled(previous)


class TestGather:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_matches_reference(self, dtype):
        indptr, indices, weights = _csr(dtype)
        rows = np.array([0, 1, 2, 4], dtype=dtype)
        with use_substrate(True):
            src_o, tgt_o = gather_edges(indptr, indices, rows)
        with use_substrate(False):
            src_r, tgt_r = gather_edges(indptr, indices, rows)
        np.testing.assert_array_equal(src_o, src_r)
        np.testing.assert_array_equal(tgt_o, tgt_r)

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_weighted_matches_reference(self, dtype):
        indptr, indices, weights = _csr(dtype)
        rows = np.array([1, 3], dtype=dtype)
        with use_substrate(True):
            out_o = gather_edges_weighted(indptr, indices, weights, rows)
        with use_substrate(False):
            out_r = gather_edges_weighted(indptr, indices, weights, rows)
        for a, b in zip(out_o, out_r):
            np.testing.assert_array_equal(a, b)

    def test_empty_frontier(self):
        indptr, indices, _ = _csr(np.int64)
        for flag in (True, False):
            with use_substrate(flag):
                src, tgt = gather_edges(indptr, indices, np.empty(0, dtype=np.int64))
            assert src.size == 0 and tgt.size == 0

    def test_empty_rows_only(self):
        indptr, indices, _ = _csr(np.int64)
        src, tgt = gather_edges(indptr, indices, np.array([2], dtype=np.int64))
        assert src.size == 0 and tgt.size == 0

    def test_full_range_fast_path_is_view(self):
        indptr, indices, weights = _csr(np.int64)
        rows = np.arange(5, dtype=np.int64)
        with use_substrate(True):
            src, tgt, w = gather_edges_weighted(indptr, indices, weights, rows)
        assert tgt is indices and w is weights
        np.testing.assert_array_equal(src, np.repeat(rows, np.diff(indptr)))

    def test_is_full_range(self):
        assert is_full_range(np.arange(5, dtype=np.int64), 5)
        assert not is_full_range(np.arange(4, dtype=np.int64), 5)
        assert not is_full_range(np.array([0, 1, 2, 3, 3]), 5)
        assert is_full_range(np.empty(0, dtype=np.int64), 0)

    def test_flat_index_engines_agree_on_graph(self, kron):
        rows = np.flatnonzero(np.diff(kron.indptr) > 0)[::3]
        o = _flat_edge_index(kron.indptr, rows)
        r = _reference_flat_edge_index(kron.indptr, rows)
        np.testing.assert_array_equal(o[0], r[0])
        np.testing.assert_array_equal(o[1], r[1])
        assert o[2] == r[2]


class TestPlusTimes:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_dense_product(self, weighted):
        indptr, indices, weights = _csr(np.int64)
        data = weights if weighted else None
        x = np.array([0.5, -1.0, 2.0, 0.0, 3.0])
        dense = np.zeros((5, 5))
        for row in range(5):
            for pos in range(indptr[row], indptr[row + 1]):
                dense[row, indices[pos]] += data[pos] if weighted else 1.0
        for flag in (True, False):
            with use_substrate(flag):
                op = plus_times_operator(indptr, indices, data)
                np.testing.assert_allclose(op(x), dense @ x, atol=1e-12)

    def test_distributes_over_addition(self):
        """(+, x) law the PageRank sweep relies on: A(x + y) = Ax + Ay."""
        indptr, indices, _ = _csr(np.int64)
        op = plus_times_operator(indptr, indices)
        rng = np.random.default_rng(0)
        x, y = rng.random(5), rng.random(5)
        np.testing.assert_allclose(op(x + y), op(x) + op(y), atol=1e-12)


class TestMinPlus:
    def test_matches_dense_tropical(self):
        indptr, indices, weights = _csr(np.int64)
        x = np.array([0.0, 1.0, np.inf, 2.0, 0.5])
        expected = np.full(5, np.inf)
        for row in range(5):
            for pos in range(indptr[row], indptr[row + 1]):
                expected[row] = min(expected[row], weights[pos] + x[indices[pos]])
        for flag in (True, False):
            with use_substrate(flag):
                got = spmv_min_plus(indptr, indices, weights, x)
            np.testing.assert_array_equal(got, expected)

    def test_empty_matrix(self):
        indptr = np.zeros(4, dtype=np.int64)
        got = spmv_min_plus(indptr, np.empty(0, dtype=np.int64), np.empty(0), np.zeros(3))
        assert np.all(np.isinf(got))

    def test_inf_identity_absorbed(self):
        """min's identity: an unreachable source never improves a row."""
        indptr, indices, weights = _csr(np.int64)
        x = np.full(5, np.inf)
        got = spmv_min_plus(indptr, indices, weights, x)
        assert np.all(np.isinf(got))


class TestFrontierSpmv:
    def _one_hop(self, graph, frontier_ids):
        x = np.zeros(graph.num_vertices)
        x[frontier_ids] = 1.0
        return frontier_spmv(
            graph.indptr, graph.indices, frontier_ids, x, PLUS_TIMES
        )

    def test_plus_times_counts_in_edges(self, kron):
        frontier = np.array([0, 1, 2], dtype=np.int64)
        ids, vals, examined = self._one_hop(kron, frontier)
        deg = np.diff(kron.indptr)
        assert examined == int(deg[frontier].sum())
        # y[t] = number of frontier in-neighbors of t.
        src, tgt = gather_edges(kron.indptr, kron.indices, frontier)
        expected = np.bincount(tgt, minlength=kron.num_vertices)
        got = np.zeros(kron.num_vertices)
        got[ids] = vals
        np.testing.assert_allclose(got, expected)

    def test_any_secondi_adopts_a_frontier_parent(self, kron):
        frontier = np.array([0, 5], dtype=np.int64)
        x = np.zeros(kron.num_vertices)
        ids, parents, _ = frontier_spmv(
            kron.indptr, kron.indices, frontier, x, ANY_SECONDI
        )
        assert np.all(np.isin(parents.astype(np.int64), frontier))

    def test_structural_and_complement_masks(self, kron):
        frontier = np.array([0, 1], dtype=np.int64)
        x = np.zeros(kron.num_vertices)
        mask = np.zeros(kron.num_vertices, dtype=bool)
        src, tgt = gather_edges(kron.indptr, kron.indices, frontier)
        half = np.unique(tgt)[: max(1, np.unique(tgt).size // 2)]
        mask[half] = True
        inside, _, _ = frontier_spmv(
            kron.indptr, kron.indices, frontier, x, ANY_SECONDI, mask_bits=mask
        )
        outside, _, _ = frontier_spmv(
            kron.indptr, kron.indices, frontier, x, ANY_SECONDI,
            mask_bits=mask, complement=True,
        )
        assert np.all(mask[inside])
        assert not np.any(mask[outside])
        both = np.union1d(inside, outside)
        unmasked, _, _ = frontier_spmv(
            kron.indptr, kron.indices, frontier, x, ANY_SECONDI
        )
        np.testing.assert_array_equal(both, unmasked)

    def test_min_plus_relaxation(self, road):
        frontier = np.array([0], dtype=np.int64)
        dist = np.full(road.num_vertices, np.inf)
        dist[0] = 0.0
        ids, vals, _ = frontier_spmv(
            road.indptr, road.indices, frontier, dist, MIN_PLUS,
            weights=road.weights,
        )
        for t, v in zip(ids, vals):
            row = slice(road.indptr[0], road.indptr[1])
            candidates = [
                road.weights[p] for p in range(road.indptr[0], road.indptr[1])
                if road.indices[p] == t
            ]
            assert v == min(candidates)

    def test_empty_frontier(self, kron):
        ids, vals, examined = self._one_hop(kron, np.empty(0, dtype=np.int64))
        assert ids.size == 0 and vals.size == 0 and examined == 0


class TestMaskedPullClaim:
    def _setup(self, graph, frontier_ids):
        parents = np.full(graph.num_vertices, -1, dtype=np.int64)
        parents[frontier_ids] = frontier_ids
        bits = np.zeros(graph.num_vertices, dtype=bool)
        bits[frontier_ids] = True
        unvisited = np.flatnonzero(parents < 0)
        return parents, bits, unvisited

    @pytest.mark.parametrize("graph_name", ["kron", "road"])
    def test_early_exit_matches_full_scan_with_fewer_edges(self, graph_name):
        graph = GraphCase.build(graph_name, scale=7).graph
        frontier = np.arange(0, graph.num_vertices, 3, dtype=np.int64)
        parents_full, bits, unvisited = self._setup(graph, frontier)
        fresh_full, edges_full = masked_pull_claim(
            graph.in_indptr, graph.in_indices, unvisited, bits,
            parents_full, early_exit=False,
        )
        parents_fast, bits, unvisited = self._setup(graph, frontier)
        fresh_fast, edges_fast = masked_pull_claim(
            graph.in_indptr, graph.in_indices, unvisited, bits,
            parents_fast, early_exit=True,
        )
        np.testing.assert_array_equal(fresh_full, fresh_fast)
        np.testing.assert_array_equal(parents_full, parents_fast)
        assert edges_fast <= edges_full
        # With a third of all vertices in the frontier most rows hit early.
        assert edges_fast < edges_full

    def test_adopted_parent_is_first_frontier_in_neighbor(self, kron):
        frontier = np.array([0, 1, 2, 3], dtype=np.int64)
        parents, bits, unvisited = self._setup(kron, frontier)
        fresh, _ = masked_pull_claim(
            kron.in_indptr, kron.in_indices, unvisited, bits, parents
        )
        for v in fresh[:50]:
            row = kron.in_indices[kron.in_indptr[v]: kron.in_indptr[v + 1]]
            in_frontier = row[bits[row]]
            assert parents[v] == in_frontier[0]

    def test_empty_unvisited(self, kron):
        parents = np.arange(kron.num_vertices, dtype=np.int64)
        bits = np.ones(kron.num_vertices, dtype=bool)
        fresh, examined = masked_pull_claim(
            kron.in_indptr, kron.in_indices,
            np.empty(0, dtype=np.int64), bits, parents,
        )
        assert fresh.size == 0 and examined == 0


class TestDirectionOptimizer:
    def test_beamer_constants(self):
        assert ALPHA == 15 and BETA == 18

    def test_pull_trigger_matches_legacy_inequality(self):
        policy = DirectionOptimizer(num_vertices=100, num_edges=1000)
        # Legacy: scout > max(edges_remaining, 1) // ALPHA
        assert not policy.wants_pull(1000 // ALPHA)
        assert policy.wants_pull(1000 // ALPHA + 1)

    def test_charge_decrements_remaining(self):
        policy = DirectionOptimizer(num_vertices=10, num_edges=50)
        policy.charge(30)
        assert policy.edges_remaining == 20
        # Remaining can go negative; the max(..., 1) guard keeps pull armed.
        policy.charge(40)
        assert policy.wants_pull(1)

    def test_frontier_is_small_boundary(self):
        policy = DirectionOptimizer(num_vertices=180, num_edges=1000)
        # Legacy loop pulls while frontier.size > n // BETA, i.e. resumes
        # pushing at size <= n // BETA.
        assert policy.frontier_is_small(180 // BETA)
        assert not policy.frontier_is_small(180 // BETA + 1)

    def test_lagraph_variant_triggers_on_either(self):
        policy = DirectionOptimizer(num_vertices=180, num_edges=1000)
        assert policy.lagraph_wants_pull(scout=0, frontier_size=11)
        assert not policy.lagraph_wants_pull(scout=0, frontier_size=10)
        assert policy.lagraph_wants_pull(scout=67, frontier_size=0)
