"""Differential matrix: substrate engines must be observationally identical.

The port moved every framework's hot loops onto :mod:`repro.la`, whose
primitives keep the verbatim pre-port formulations as reference paths.
Running a kernel under ``use_substrate(False)`` therefore reproduces the
pre-port implementation *exactly* — the oracle.  This suite runs every
framework x kernel x graph cell under both engines and requires:

* identical outputs — exact for BFS/SSSP/CC/TC (integer or first-writer
  semantics), tight float tolerance for PR (SciPy matvec vs the prefix-sum
  reference round differently) and BC (which consumes PR-free float sums
  in a fixed edge order, but shares gather outputs);
* identical work counters — the substrate must not change the repo's
  machine-independent cost model (``edges_examined``, rounds, iterations).

The matrix runs at the tier-2 grid (scale-7 road/kron/urand).
"""

import numpy as np
import pytest

from repro.core import GraphCase, SourcePicker, counters
from repro.frameworks import KERNELS, RunContext, get
from repro.frameworks.registry import FRAMEWORK_NAMES
from repro.la import use_substrate

DIFF_SCALE = 7
DIFF_GRAPHS = ("road", "kron", "urand")
PR_RTOL = 1e-9


@pytest.fixture(scope="module")
def cases():
    return {name: GraphCase.build(name, scale=DIFF_SCALE) for name in DIFF_GRAPHS}


@pytest.fixture(scope="module")
def sources(cases):
    picked = {}
    for name, case in cases.items():
        picker = SourcePicker(case.graph, seed=0)
        picked[name] = (picker.next_source(), picker.next_sources(4))
    return picked


def _run(framework_name, kernel, case, source, roots, graph_name):
    framework = get(framework_name)
    ctx = RunContext(graph_name=graph_name)
    with counters.counting() as work:
        if kernel == "bfs":
            out = framework.bfs(case.graph, source, ctx)
        elif kernel == "sssp":
            out = framework.sssp(case.weighted, source, ctx)
        elif kernel == "cc":
            out = framework.connected_components(case.graph, ctx)
        elif kernel == "pr":
            out = framework.pagerank(case.graph, ctx)
        elif kernel == "bc":
            out = framework.betweenness(case.graph, roots, ctx)
        else:
            out = framework.triangle_count(case.undirected, ctx)
    return out, work.edges_examined, work.rounds, work.iterations


@pytest.fixture(scope="module")
def matrix(cases, sources):
    """Both engines' (output, counters) for every cell, computed once."""
    computed = {}
    for graph_name, case in cases.items():
        source, roots = sources[graph_name]
        for framework_name in FRAMEWORK_NAMES:
            for kernel in KERNELS:
                cell = {}
                for engine, flag in (("substrate", True), ("oracle", False)):
                    with use_substrate(flag):
                        cell[engine] = _run(
                            framework_name, kernel, case, source, roots, graph_name
                        )
                computed[(framework_name, kernel, graph_name)] = cell
    return computed


@pytest.mark.tier2
@pytest.mark.parametrize("graph_name", DIFF_GRAPHS)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("framework_name", FRAMEWORK_NAMES)
def test_substrate_output_matches_oracle(matrix, framework_name, kernel, graph_name):
    cell = matrix[(framework_name, kernel, graph_name)]
    out_sub, *_ = cell["substrate"]
    out_ref, *_ = cell["oracle"]
    if kernel in ("pr", "bc"):
        np.testing.assert_allclose(out_sub, out_ref, rtol=PR_RTOL, atol=1e-12)
    elif kernel == "tc":
        assert int(out_sub) == int(out_ref)
    else:
        # First-writer claims and min-relaxations are engine-exact: same
        # parents, same distances, same labels — not merely equivalent.
        np.testing.assert_array_equal(np.asarray(out_sub), np.asarray(out_ref))


@pytest.mark.tier2
@pytest.mark.parametrize("graph_name", DIFF_GRAPHS)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("framework_name", FRAMEWORK_NAMES)
def test_substrate_preserves_work_counters(matrix, framework_name, kernel, graph_name):
    """The cost model is part of the contract: same edges, rounds, sweeps."""
    cell = matrix[(framework_name, kernel, graph_name)]
    _, edges_sub, rounds_sub, iters_sub = cell["substrate"]
    _, edges_ref, rounds_ref, iters_ref = cell["oracle"]
    assert edges_sub == edges_ref
    assert rounds_sub == rounds_ref
    assert iters_sub == iters_ref
