"""Tests for repro.graphs.transforms."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    CSRGraph,
    degree_order_permutation,
    induced_subgraph,
    lower_triangle_counts,
    permute,
    relabel_by_degree,
)


class TestPermute:
    def test_identity(self, tiny_graph):
        same = permute(tiny_graph, np.arange(7))
        assert same == tiny_graph

    def test_edge_follows_permutation(self, tiny_graph):
        perm = np.array([1, 0, 2, 3, 4, 5, 6])
        g = permute(tiny_graph, perm)
        assert g.has_edge(1, 0)  # was 0 -> 1

    def test_weights_travel(self):
        g = CSRGraph.from_arrays(
            3, np.array([0, 1]), np.array([1, 2]), np.array([5.0, 7.0])
        )
        p = permute(g, np.array([2, 1, 0]))
        # edge 0->1 (w=5) becomes 2->1; edge 1->2 (w=7) becomes 1->0
        assert p.neighbor_weights(2).tolist() == [5.0]
        assert p.neighbor_weights(1).tolist() == [7.0]

    def test_degree_multiset_preserved(self, corpus_graph):
        _, graph = corpus_graph
        perm = degree_order_permutation(graph)
        relabeled = permute(graph, perm)
        assert sorted(graph.out_degrees.tolist()) == sorted(
            relabeled.out_degrees.tolist()
        )


class TestDegreeOrder:
    def test_ascending_order(self, corpus_graph):
        _, graph = corpus_graph
        relabeled, _ = relabel_by_degree(graph, ascending=True)
        degrees = relabeled.out_degrees
        # The *original* degree of the vertex placed at position i must be
        # non-decreasing; the relabeled graph's own degrees are identical to
        # the originals carried along.
        perm = degree_order_permutation(graph, ascending=True)
        original_sorted = graph.out_degrees[np.argsort(perm)]
        assert (np.diff(original_sorted) >= 0).all()
        del degrees

    def test_descending_reverses(self, corpus_graph):
        _, graph = corpus_graph
        asc = degree_order_permutation(graph, ascending=True)
        desc = degree_order_permutation(graph, ascending=False)
        # The highest-degree vertex gets the largest id ascending, smallest
        # descending.
        top = int(np.argmax(graph.out_degrees))
        assert asc[top] > desc[top] or graph.num_vertices == 1

    def test_is_permutation(self, corpus_graph):
        _, graph = corpus_graph
        perm = degree_order_permutation(graph)
        assert np.array_equal(np.sort(perm), np.arange(graph.num_vertices))


class TestInducedSubgraph:
    def test_simple(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert mapping.tolist() == [0, 1, 2]
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2) and sub.has_edge(0, 2)

    def test_drops_external_edges(self, tiny_graph):
        sub, _ = induced_subgraph(tiny_graph, np.array([0, 3]))
        # only 3 -> 0 survives
        assert sub.num_edges == 1
        assert sub.has_edge(1, 0)

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            induced_subgraph(tiny_graph, np.array([99]))

    def test_undirected_stays_symmetric(self, triangle_graph):
        sub, _ = induced_subgraph(triangle_graph, np.array([0, 1, 2]))
        src, dst = sub.edge_array()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)


class TestLowerTriangle:
    def test_counts(self, triangle_graph):
        counts = lower_triangle_counts(triangle_graph)
        # vertex 0 has no smaller neighbor; vertex 2 has 0 and 1.
        assert counts[0] == 0
        assert counts[2] == 2

    def test_total_is_half_of_edges(self, triangle_graph):
        counts = lower_triangle_counts(triangle_graph)
        assert counts.sum() == triangle_graph.num_undirected_edges
