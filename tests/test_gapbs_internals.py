"""Unit tests for the GAP reference implementation's building blocks."""

import numpy as np
import pytest

from repro.core import counters
from repro.core.bitmap import Bitmap
from repro.gapbs.bc import brandes_backward, brandes_forward
from repro.gapbs.bfs import direction_optimizing_bfs, pull_step, push_step
from repro.gapbs.pagerank import segment_sums
from repro.gapbs.sssp import delta_stepping
from repro.gapbs.tc import forward_adjacency, ordered_count, worth_relabelling
from repro.graphs import CSRGraph


class TestBFSSteps:
    def test_push_step_claims_targets(self, tiny_graph):
        parents = np.full(7, -1, dtype=np.int64)
        parents[0] = 0
        frontier = push_step(tiny_graph, np.array([0]), parents)
        assert sorted(frontier.tolist()) == [1, 2]
        assert parents[1] == 0 and parents[2] == 0

    def test_push_step_first_writer_wins(self, tiny_graph):
        # 0 and 1 both point at 2; the first edge in expansion order wins.
        parents = np.full(7, -1, dtype=np.int64)
        parents[0] = 0
        parents[1] = 1
        push_step(tiny_graph, np.array([0, 1]), parents)
        assert parents[2] in (0, 1)

    def test_push_step_ignores_visited(self, tiny_graph):
        parents = np.full(7, -1, dtype=np.int64)
        parents[[0, 1, 2]] = [0, 0, 0]
        frontier = push_step(tiny_graph, np.array([1]), parents)
        assert frontier.size == 0  # 1 -> 2 already claimed

    def test_pull_step_finds_parents(self, tiny_graph):
        parents = np.full(7, -1, dtype=np.int64)
        parents[0] = 0
        bits = Bitmap.from_indices(7, np.array([0]))
        frontier = pull_step(tiny_graph, bits, parents)
        assert sorted(frontier.tolist()) == [1, 2]

    def test_full_bfs_counts_direction_switches(self, corpus):
        graph = corpus["kron"]
        source = int(np.argmax(graph.out_degrees))
        with counters.counting() as work:
            direction_optimizing_bfs(graph, source)
        assert work.extras.get("direction_switches", 0) >= 1


class TestSegmentSums:
    def test_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        indptr = np.array([0, 2, 2, 4])
        assert segment_sums(values, indptr).tolist() == [3.0, 0.0, 7.0]

    def test_empty(self):
        assert segment_sums(np.array([]), np.array([0, 0])).tolist() == [0.0]


class TestDeltaStepping:
    def test_unreachable_inf(self, weighted_corpus):
        graph = weighted_corpus["road"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        dist = delta_stepping(graph, source, delta=64)
        # Road has multiple components, so some distance must be inf.
        assert np.isinf(dist).any()

    def test_fusion_does_not_change_result(self, weighted_corpus):
        graph = weighted_corpus["web"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        fused = delta_stepping(graph, source, delta=32, bucket_fusion=True)
        plain = delta_stepping(graph, source, delta=32, bucket_fusion=False)
        assert np.array_equal(
            np.nan_to_num(fused, posinf=-1.0), np.nan_to_num(plain, posinf=-1.0)
        )

    def test_zero_distance_source_only(self, weighted_corpus):
        graph = weighted_corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        dist = delta_stepping(graph, source, delta=16)
        # Weights are >= 1, so only the source sits at distance 0.
        assert np.flatnonzero(dist == 0.0).tolist() == [source]


class TestBrandesPieces:
    def test_forward_sigma_counts_paths(self):
        # Diamond: 0->1, 0->2, 1->3, 2->3 gives sigma[3] = 2.
        graph = CSRGraph.from_arrays(
            4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3])
        )
        depth, sigma, levels, dag = brandes_forward(graph, 0)
        assert sigma[3] == 2.0
        assert depth[3] == 2
        assert len(levels) == 3

    def test_backward_splits_dependency(self):
        graph = CSRGraph.from_arrays(
            4, np.array([0, 0, 1, 2]), np.array([1, 2, 3, 3])
        )
        _, sigma, levels, dag = brandes_forward(graph, 0)
        scores = np.zeros(4)
        brandes_backward(sigma, levels, dag, scores, 0)
        # 1 and 2 each carry half of the single dependency on 3.
        assert scores[1] == pytest.approx(0.5)
        assert scores[2] == pytest.approx(0.5)
        assert scores[0] == 0.0


class TestTCPieces:
    def test_forward_adjacency_strictly_increasing(self, triangle_graph):
        indptr, indices = forward_adjacency(triangle_graph)
        rows = np.repeat(np.arange(indptr.size - 1), np.diff(indptr))
        assert (indices > rows).all()

    def test_ordered_count_triangle(self, triangle_graph):
        indptr, indices = forward_adjacency(triangle_graph)
        assert ordered_count(indptr, indices) == 5

    def test_worth_relabelling_detects_skew(self, corpus):
        assert worth_relabelling(corpus["kron"])
        assert not worth_relabelling(corpus["urand"])
        assert not worth_relabelling(corpus["road"])
