"""Tests for storage integrity: checksums, verify, quarantine, scrub."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.results import ResultSet, RunResult
from repro.core.spec import BenchmarkSpec
from repro.frameworks import Mode
from repro.store import RunArchive
from repro.store.cellindex import CellIndex, cell_digest
from repro.store.environment import fingerprint
from repro.store.integrity import (
    ScrubReport,
    last_scrub_report,
    line_crc,
    open_self_healing_index,
    quarantine_count,
    quarantine_run,
    scrub,
    seal_line,
    verify_line,
    verify_run,
)

CELL = ("kron", "baseline", "bfs", "gap")


def _result(graph="kron", kernel="bfs", framework="gap", status="ok"):
    return RunResult(
        framework=framework,
        kernel=kernel,
        graph=graph,
        mode=Mode.BASELINE,
        trial_seconds=[1.0] if status == "ok" else [],
        status=status,
    )


def _seeded_archive(root: Path, kernels=("bfs", "cc")):
    """An archive holding one run with the given kernels; returns
    ``(archive, spec, record)``."""
    archive = RunArchive(root)
    spec = BenchmarkSpec(scale=8)
    results = ResultSet(
        [_result(kernel=k) for k in kernels],
        meta={"environment": fingerprint()},
    )
    record = archive.archive_run(results, spec=spec)
    return archive, spec, record


class TestLineChecksums:
    def test_seal_verify_round_trip(self):
        record = {"digest": "d1", "run_id": "run-a", "cell": list(CELL)}
        sealed = seal_line(record)
        assert verify_line(sealed)
        # Round trip through the exact on-disk serialization.
        reparsed = json.loads(json.dumps(sealed, default=str))
        assert verify_line(reparsed)

    def test_tamper_detected(self):
        sealed = seal_line({"digest": "d1", "run_id": "run-a"})
        sealed["run_id"] = "run-b"
        assert not verify_line(sealed)

    def test_legacy_lines_without_crc_accepted(self):
        assert verify_line({"digest": "d1", "run_id": "run-a"})

    def test_crc_field_order_insensitive(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert line_crc(a) == line_crc(b)

    def test_stringified_values_hash_stably(self):
        # default=str values (a Path) must hash the same before
        # serialization and after the round trip re-parse.
        sealed = seal_line({"path": Path("/tmp/x"), "n": 1})
        reparsed = json.loads(json.dumps(sealed, default=str))
        assert verify_line(reparsed)


class TestVerifyRun:
    def test_archived_run_verifies_clean(self, tmp_path):
        _, _, record = _seeded_archive(tmp_path)
        assert verify_run(record.path) == []

    def test_manifest_records_integrity_digests(self, tmp_path):
        _, _, record = _seeded_archive(tmp_path)
        integrity = record.manifest.get("integrity")
        assert isinstance(integrity, dict)
        assert "results.json" in integrity

    def test_bit_flip_in_results_detected(self, tmp_path):
        _, _, record = _seeded_archive(tmp_path)
        results = record.path / "results.json"
        raw = bytearray(results.read_bytes())
        raw[len(raw) // 2] ^= 0x20
        results.write_bytes(bytes(raw))
        problems = verify_run(record.path)
        assert any("digest mismatch" in p for p in problems)

    def test_unreadable_manifest_reported(self, tmp_path):
        _, _, record = _seeded_archive(tmp_path)
        (record.path / "manifest.json").write_text("{ not json")
        problems = verify_run(record.path)
        assert problems and "manifest unreadable" in problems[0]

    def test_run_id_mismatch_reported(self, tmp_path):
        _, _, record = _seeded_archive(tmp_path)
        manifest = json.loads((record.path / "manifest.json").read_text())
        manifest["run_id"] = "somebody-else"
        (record.path / "manifest.json").write_text(json.dumps(manifest))
        problems = verify_run(record.path)
        assert any("does not match directory" in p for p in problems)


class TestQuarantine:
    def test_quarantine_moves_and_counts(self, tmp_path):
        archive, _, record = _seeded_archive(tmp_path)
        assert quarantine_count(archive.root) == 0
        target = quarantine_run(archive, record.run_id)
        assert not record.path.exists()
        assert target.is_dir()
        assert quarantine_count(archive.root) == 1

    def test_quarantine_targets_never_collide(self, tmp_path):
        archive, _, record = _seeded_archive(tmp_path)
        first = quarantine_run(archive, record.run_id)
        # A fresh run under the same id (re-archived identical payload).
        record.path.mkdir(parents=True)
        (record.path / "manifest.json").write_text("{}")
        second = quarantine_run(archive, record.run_id)
        assert first != second
        assert quarantine_count(archive.root) == 2


class TestScrub:
    def test_clean_archive_clean_verdict(self, tmp_path):
        archive, spec, record = _seeded_archive(tmp_path)
        with CellIndex.for_archive(archive) as index:
            index.rebuild_from_archive(archive)
        report = scrub(archive)
        assert report.verdict == "clean"
        assert report.checked_runs == 1
        assert not report.quarantined
        # The verdict is persisted for /health and the status CLI.
        persisted = last_scrub_report(archive.root)
        assert persisted["verdict"] == "clean"

    def test_damaged_run_quarantined_and_healed(self, tmp_path):
        archive, spec, record = _seeded_archive(tmp_path)
        with CellIndex.for_archive(archive) as index:
            index.rebuild_from_archive(archive)
        results = record.path / "results.json"
        raw = bytearray(results.read_bytes())
        raw[len(raw) // 2] ^= 0x20
        results.write_bytes(bytes(raw))

        report = scrub(archive)
        assert report.verdict == "healed"
        assert report.quarantined[0]["run_id"] == record.run_id
        assert not record.path.exists()
        assert quarantine_count(archive.root) >= 1
        # The run is gone, so its index entries went stale -> rebuilt.
        assert report.index_rebuilt
        assert report.index_entries == 0
        # Healing converges: a second pass finds nothing.
        assert scrub(RunArchive(tmp_path)).verdict == "clean"

    def test_quarantine_disabled_reports_failed(self, tmp_path):
        archive, _, record = _seeded_archive(tmp_path)
        (record.path / "manifest.json").write_text("{ not json")
        report = scrub(archive, quarantine=False)
        assert report.verdict == "failed"
        assert record.path.exists()  # nothing moved
        assert report.unresolved

    def test_stale_index_entry_detected(self, tmp_path):
        archive, spec, _ = _seeded_archive(tmp_path)
        with CellIndex.for_archive(archive) as index:
            index.rebuild_from_archive(archive)
            index.add("feedfeedfeed", "no-such-run", CELL)
        report = scrub(archive)
        assert any("not derivable" in p for p in report.index_problems)
        assert report.index_rebuilt
        assert report.verdict == "healed"
        with CellIndex.for_archive(archive) as index:
            assert "feedfeedfeed" not in index

    def test_missing_index_entry_detected(self, tmp_path):
        archive, spec, record = _seeded_archive(tmp_path)
        # No index at all: every archived cell is missing from it.
        report = scrub(archive)
        assert any("archived but not indexed" in p for p in report.index_problems)
        assert report.index_rebuilt
        assert report.index_entries == 2
        digest = cell_digest(spec, CELL, environment=fingerprint())
        with CellIndex.for_archive(archive) as index:
            assert index.run_id_for(digest) == record.run_id

    def test_verdict_precedence(self):
        report = ScrubReport(archive_root="x", started_at="t")
        assert report.verdict == "clean"
        report.index_rebuilt = True
        assert report.verdict == "healed"
        report.unresolved.append("boom")
        assert report.verdict == "failed"


class TestSelfHealingOpen:
    def test_clean_index_opens_without_heal(self, tmp_path):
        archive, _, _ = _seeded_archive(tmp_path)
        with CellIndex.for_archive(archive) as index:
            index.rebuild_from_archive(archive)
        index, heal = open_self_healing_index(archive)
        assert heal is None
        assert len(index) == 2
        index.close()

    def test_corrupt_index_quarantined_and_rebuilt(self, tmp_path):
        archive, spec, record = _seeded_archive(tmp_path)
        path = archive.root / "cell_index.jsonl"
        with CellIndex(path) as index:
            index.rebuild_from_archive(archive)
            index.add("deadbeefdead", "run-x", CELL)  # keeps damage interior
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"digest"', b'"digest', 1))

        index, heal = open_self_healing_index(archive)
        assert heal is not None
        assert heal["reindexed_cells"] == 2
        assert "quarantined" in heal
        digest = cell_digest(spec, CELL, environment=fingerprint())
        assert index.run_id_for(digest) == record.run_id
        index.close()
        # The damaged file is preserved as forensic evidence.
        assert quarantine_count(archive.root) == 1
