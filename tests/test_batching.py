"""Batch-planner invariants (see ``repro.core.batching``).

Tier-1 guarantees pinned here:

* the planned batches are an exact partition of the input cell list —
  order preserved, nothing duplicated, nothing dropped — across a grid
  of cell counts, job counts, and batch sizes;
* timeout-sensitive cells are never packed with neighbors: a cell under
  a hard deadline always forms a singleton batch;
* ``jobs=1`` and ``batch_size=1`` degrade to per-cell dispatch exactly;
* the auto cost model actually batches (multi-cell batches exist) while
  keeping enough batches per worker to load-balance.
"""

import pytest

from repro.core import BenchmarkSpec
from repro.core.batching import BATCHES_PER_WORKER, Cell, plan_batches
from repro.frameworks import KERNELS, Mode

KERNEL_CYCLE = list(KERNELS)


def _cells(count):
    """A deterministic synthetic campaign of ``count`` cells."""
    return [
        Cell(
            index=i,
            graph=f"g{i % 3}",
            mode=Mode.BASELINE if i % 2 == 0 else Mode.OPTIMIZED,
            kernel=KERNEL_CYCLE[i % len(KERNEL_CYCLE)],
            framework=f"fw{i % 4}",
        )
        for i in range(count)
    ]


SPEC = BenchmarkSpec(scale=8)
GRID = [
    (count, jobs, batch_size)
    for count in (0, 1, 2, 7, 30, 360)
    for jobs in (1, 2, 4, 8)
    for batch_size in (None, 1, 3, 100)
]


@pytest.mark.parametrize("count,jobs,batch_size", GRID)
def test_batches_partition_cells_exactly_once(count, jobs, batch_size):
    cells = _cells(count)
    batches = plan_batches(cells, SPEC, jobs, batch_size)
    flattened = [cell for batch in batches for cell in batch]
    assert flattened == cells  # order kept, no duplicates, no drops
    assert all(batch for batch in batches)  # no empty batches


@pytest.mark.parametrize("count,jobs,batch_size", GRID)
def test_sensitive_cells_are_always_singletons(count, jobs, batch_size):
    cells = _cells(count)
    sensitive = lambda cell: cell.index % 5 == 0
    batches = plan_batches(cells, SPEC, jobs, batch_size, sensitive=sensitive)
    assert [cell for batch in batches for cell in batch] == cells
    for batch in batches:
        if any(sensitive(cell) for cell in batch):
            assert len(batch) == 1


def test_trial_timeout_makes_every_cell_sensitive():
    spec = BenchmarkSpec(scale=8, trial_timeout=5.0)
    batches = plan_batches(_cells(40), spec, jobs=4)
    assert all(len(batch) == 1 for batch in batches)


@pytest.mark.parametrize("batch_size", [None, 3, 100])
def test_jobs_1_degrades_to_per_cell_dispatch(batch_size):
    batches = plan_batches(_cells(30), SPEC, jobs=1, batch_size=batch_size)
    assert all(len(batch) == 1 for batch in batches)
    assert len(batches) == 30


def test_batch_size_1_degrades_to_per_cell_dispatch():
    batches = plan_batches(_cells(30), SPEC, jobs=4, batch_size=1)
    assert all(len(batch) == 1 for batch in batches)


def test_explicit_batch_size_caps_batch_length():
    batches = plan_batches(_cells(100), SPEC, jobs=4, batch_size=7)
    assert max(len(batch) for batch in batches) <= 7
    assert any(len(batch) > 1 for batch in batches)


def test_auto_model_batches_but_keeps_workers_fed():
    """Without a deadline, the cost model forms multi-cell batches while
    planning several batches per worker for load balancing."""
    jobs = 2
    cells = _cells(360)
    batches = plan_batches(cells, SPEC, jobs)
    assert any(len(batch) > 1 for batch in batches)
    # Enough batches that a worker drawing fast cells picks up more work.
    assert len(batches) >= jobs * BATCHES_PER_WORKER // 2
    # Dispatch overhead actually amortized: far fewer messages than cells.
    assert len(batches) < len(cells) // 2


def test_mixed_sensitivity_plan_keeps_batchable_cells_batched():
    cells = _cells(60)
    sensitive = lambda cell: cell.index in (10, 30)
    batches = plan_batches(cells, SPEC, jobs=2, sensitive=sensitive)
    singleton_indices = {
        batch[0].index for batch in batches if len(batch) == 1
    }
    assert {10, 30} <= singleton_indices
    assert any(len(batch) > 1 for batch in batches)


def test_invalid_batch_size_rejected():
    with pytest.raises(ValueError):
        plan_batches(_cells(4), SPEC, jobs=2, batch_size=0)


def test_empty_cell_list_plans_no_batches():
    assert plan_batches([], SPEC, jobs=4) == []
