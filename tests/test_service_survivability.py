"""Tests for service survivability: /health, degraded admission, watchdog."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    BenchmarkService,
    CampaignRequest,
    ServiceClient,
    ServiceHTTPServer,
)

pytestmark = pytest.mark.tier2


def _request(**overrides):
    payload = {
        "graphs": ("urand",),
        "kernels": ("bfs",),
        "frameworks": ("gap",),
        "modes": ("baseline",),
        "scale": 6,
    }
    payload.update(overrides)
    return CampaignRequest(**payload)


@pytest.fixture()
def service(tmp_path):
    svc = BenchmarkService(
        archive_dir=tmp_path / "archive",
        cache_dir=tmp_path / "graphs",
        jobs=1,
        watchdog_interval=0.1,
    )
    yield svc
    svc.shutdown()


def _cells(events):
    return [e for e in events if e["event"] == "cell"]


class TestHealth:
    def test_healthy_payload(self, service):
        payload = service.health()
        assert payload["ok"] is True
        assert payload["degraded"] is False
        assert payload["degraded_reasons"] == []
        assert payload["draining"] is False
        assert payload["engine_alive"] is True
        assert payload["engine_restarts"] == 0
        assert payload["queue_capacity"] > 0
        assert payload["quarantine_count"] == 0
        assert payload["index_healed_at_startup"] is None
        assert payload["last_scrub_verdict"] is None
        assert "watermarks" in payload
        assert set(payload["graph_cache"]) == {
            "hits", "misses", "corrupt", "corrupt_events",
        }

    def test_degraded_flips_ok(self, service):
        service.min_free_bytes = 10**18
        payload = service.health()
        assert payload["ok"] is False
        assert payload["degraded"] is True
        assert any("disk critically low" in r for r in payload["degraded_reasons"])

    def test_health_over_http(self, tmp_path):
        svc = BenchmarkService(
            archive_dir=tmp_path / "archive", cache_dir=tmp_path / "graphs"
        )
        server = ServiceHTTPServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host=host, port=port) as client:
                payload = client.health()
                assert payload["ok"] is True
                # A degraded server answers 503 with the same JSON body;
                # the client returns it rather than raising.
                svc.min_free_bytes = 10**18
                degraded = client.health()
                assert degraded["ok"] is False
                assert degraded["degraded"] is True
        finally:
            server.shutdown()
            server.server_close()
            svc.shutdown()


class TestDegradedAdmission:
    def test_misses_rejected_hits_still_served(self, service):
        # Seed one cell while healthy...
        seeded = service.submit_collect(_request())
        assert seeded[-1]["event"] == "done"
        # ...then cross the disk watermark.
        service.min_free_bytes = 10**18
        events = service.submit_collect(_request(kernels=("bfs", "cc")))
        terminal = events[-1]
        assert terminal["event"] == "degraded"
        assert terminal["rejected"] == 1
        assert terminal["rejected_cells"] == [["urand", "baseline", "cc", "gap"]]
        assert terminal["retry_after_seconds"] > 0
        assert any("disk critically low" in r for r in terminal["reasons"])
        # The seeded cell was still served read-only, as a hit.
        cells = _cells(events)
        assert len(cells) == 1
        assert cells[0]["cached"] is True
        assert service.stats["cells_degraded_rejected"] == 1
        assert service.stats["submissions_degraded"] == 1

    def test_rejection_writes_nothing(self, service, tmp_path):
        service.min_free_bytes = 10**18
        events = service.submit_collect(_request())
        assert events[-1]["event"] == "degraded"
        runs_dir = tmp_path / "archive" / "runs"
        assert not runs_dir.is_dir() or not list(runs_dir.glob("*"))
        assert len(service.index) == 0
        assert service.stats["cells_executed"] == 0

    def test_draining_is_a_degraded_reason(self, service):
        service._draining = True
        reasons = service.degraded_reasons()
        assert any("draining" in r for r in reasons)
        events = service.submit_collect(_request())
        assert events[-1]["event"] == "degraded"


class TestWatchdog:
    # The engine thread dies by design here; pytest flags the escaped
    # SystemExit as an unhandled thread exception — that IS the test.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_engine_crash_resolves_job_and_restarts(self, service, monkeypatch):
        # SystemExit is a BaseException: it escapes _engine_loop's
        # Exception handler and kills the engine thread mid-job —
        # exactly the hole the watchdog exists to cover.
        monkeypatch.setattr(
            service,
            "_execute",
            lambda job: (_ for _ in ()).throw(SystemExit("engine died")),
        )
        events = service.submit_collect(_request())
        # The orphaned job resolved with error events, not a hang.
        assert events[-1]["event"] == "error"
        assert "engine thread crashed" in events[-1]["message"]
        cells = _cells(events)
        assert cells and cells[0]["result"] is None
        assert "engine thread crashed" in cells[0]["error"]

        # The watchdog respawned the engine; service keeps working.
        monkeypatch.undo()
        deadline = threading.Event()
        for _ in range(100):
            if service.health()["engine_alive"]:
                break
            deadline.wait(0.05)
        assert service.health()["engine_alive"]
        assert service.stats["engine_restarts"] == 1
        recovered = service.submit_collect(_request())
        assert recovered[-1]["event"] == "done"
        assert len(_cells(recovered)) == 1

    def test_job_level_failure_does_not_restart_engine(self, service, monkeypatch):
        # Plain exceptions are contained by the engine loop itself: the
        # job fails, the engine survives, the watchdog never fires.
        def _boom(job):
            raise RuntimeError("job blew up")

        monkeypatch.setattr(service, "_execute", _boom)
        events = service.submit_collect(_request())
        assert events[-1]["event"] == "error"
        assert service.health()["engine_alive"]
        assert service.stats["engine_restarts"] == 0
        assert service.stats["jobs_failed"] == 1


class TestDrain:
    def test_drain_is_terminal_and_idempotent(self, tmp_path):
        svc = BenchmarkService(
            archive_dir=tmp_path / "archive", cache_dir=tmp_path / "graphs"
        )
        events = svc.submit_collect(_request())
        assert events[-1]["event"] == "done"
        svc.drain(timeout=30.0)
        assert svc._draining is True
        svc.drain(timeout=1.0)  # idempotent, like shutdown
        svc.shutdown()
