"""Tests for the Graphalytics extension kernels (CDLP, LCC)."""

import networkx as nx
import numpy as np
import pytest

from repro.extensions import cdlp, lcc
from repro.graphs import CSRGraph

from .conftest import to_networkx


class TestCDLP:
    def test_two_cliques_separate_communities(self):
        # Two K4s joined by one bridge edge: labels must not merge.
        src = [0, 0, 0, 1, 1, 2, 4, 4, 4, 5, 5, 6, 3]
        dst = [1, 2, 3, 2, 3, 3, 5, 6, 7, 6, 7, 7, 4]
        graph = CSRGraph.from_arrays(8, np.array(src), np.array(dst), directed=False)
        labels = cdlp(graph, max_iterations=20)
        left = set(labels[:4].tolist())
        right = set(labels[4:].tolist())
        assert len(left) == 1 and len(right) == 1
        assert left != right

    def test_isolated_vertex_keeps_own_label(self):
        graph = CSRGraph.from_arrays(
            3, np.array([0]), np.array([1]), directed=False
        )
        labels = cdlp(graph)
        assert labels[2] == 2

    def test_converges_and_is_deterministic(self, corpus):
        graph = corpus["kron"]
        a = cdlp(graph, max_iterations=10)
        b = cdlp(graph, max_iterations=10)
        assert np.array_equal(a, b)

    def test_labels_are_vertex_ids(self, corpus):
        labels = cdlp(corpus["twitter"], max_iterations=5)
        assert labels.min() >= 0
        assert labels.max() < corpus["twitter"].num_vertices

    def test_tie_breaks_to_smaller_label(self):
        # Path 0 - 1 - 2: vertex 1 sees labels {0, 2} once each -> picks 0.
        graph = CSRGraph.from_arrays(
            3, np.array([0, 1]), np.array([1, 2]), directed=False
        )
        labels = cdlp(graph, max_iterations=1)
        assert labels[1] == 0

    def test_respects_iteration_budget(self, corpus):
        from repro.core import counters

        with counters.counting() as work:
            cdlp(corpus["road"], max_iterations=3)
        assert work.iterations <= 3


class TestLCC:
    def test_triangle_is_fully_clustered(self):
        graph = CSRGraph.from_arrays(
            3, np.array([0, 1, 2]), np.array([1, 2, 0]), directed=False
        )
        assert np.allclose(lcc(graph), 1.0)

    def test_star_is_unclustered(self):
        n = 6
        graph = CSRGraph.from_arrays(
            n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n), directed=False
        )
        assert np.allclose(lcc(graph), 0.0)

    def test_degree_below_two_is_zero(self):
        graph = CSRGraph.from_arrays(
            4, np.array([0]), np.array([1]), directed=False
        )
        values = lcc(graph)
        assert values[0] == 0.0 and values[3] == 0.0

    @pytest.mark.parametrize("name", ["kron", "urand", "road"])
    def test_matches_networkx(self, corpus, nx_corpus, name):
        graph = corpus[name]
        oracle_graph = (
            nx_corpus[name].to_undirected() if graph.directed else nx_corpus[name]
        )
        oracle = nx.clustering(oracle_graph)
        ours = lcc(graph)
        for vertex in range(graph.num_vertices):
            assert ours[vertex] == pytest.approx(oracle[vertex]), (name, vertex)

    def test_directed_input_symmetrized(self, corpus):
        graph = corpus["twitter"]
        direct = lcc(graph)
        explicit = lcc(graph.to_undirected())
        assert np.allclose(direct, explicit)
