"""Crash-durability of the benchmark service.

The contract under test: a SIGKILLed server loses nothing it journaled.
Completed cells are fsynced to the per-campaign journal *before* they are
streamed to any client, so after a restart with ``--resume`` every cell a
client saw (and possibly more) is archived, indexed, and served as a
cache hit — re-submitting the interrupted campaign re-executes only the
genuinely unfinished cells.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient

pytestmark = [pytest.mark.tier2, pytest.mark.slow]

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Slow enough per cell (tc with boosted trials) that SIGKILL reliably
#: lands mid-campaign, fast enough to keep the test under a minute.
CAMPAIGN = {
    "graphs": ["urand"],
    "kernels": ["tc"],
    "frameworks": ["gap", "suitesparse"],
    "modes": ["baseline", "optimized"],
    "scale": 14,
    "trials": {"tc": 9},
}
TOTAL_CELLS = 4


def _start_server(tmp_path: Path, resume: bool = False) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` in its own session; returns (proc, port).

    ``start_new_session=True`` puts the server and its pool workers in one
    process group, so the test's SIGKILL takes down the workers too — the
    hard-crash scenario, not a graceful anything.
    """
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--archive-dir", str(tmp_path / "archive"),
        "--cache-dir", str(tmp_path / "graphs"),
        "--journal-dir", str(tmp_path / "journals"),
    ]
    if resume:
        argv.append("--resume")
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
        start_new_session=True,
    )
    deadline = time.time() + 60.0
    port = None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"server exited early (code {proc.poll()})")
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port is not None, "server never reported its port"
    return proc, port


def _sigkill_group(proc: subprocess.Popen) -> None:
    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    proc.wait(timeout=30.0)


class TestCrashRecovery:
    def test_sigkill_mid_campaign_then_resume_serves_journaled_cells(
        self, tmp_path
    ):
        proc, port = _start_server(tmp_path)
        seen_before_kill: list[tuple[str, ...]] = []
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120.0)
            try:
                for event in client.submit(CAMPAIGN):
                    if event["event"] == "cell":
                        seen_before_kill.append(tuple(event["cell"]))
                        if len(seen_before_kill) >= 2:
                            break
                else:  # pragma: no cover - campaign finished too fast
                    pytest.skip("campaign completed before the kill window")
            finally:
                _sigkill_group(proc)
                proc = None
                client.close()
        finally:
            if proc is not None:
                _sigkill_group(proc)

        # The crash left the journal behind: nothing archived it yet.
        journals = list((tmp_path / "journals").glob("*.jsonl"))
        assert journals, "crashed server should leave its campaign journal"

        proc, port = _start_server(tmp_path, resume=True)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120.0)
            status = client.status()
            assert status["recovery"], "resume must report the recovered journal"
            recovered = sum(
                int(entry.get("recovered_cells", 0))
                for entry in status["recovery"]
                if isinstance(entry, dict)
            )
            assert recovered >= len(seen_before_kill)
            assert not list((tmp_path / "journals").glob("*.jsonl"))

            events = client.submit_and_collect(CAMPAIGN)
            assert events[-1]["event"] == "done"
            cells = [e for e in events if e["event"] == "cell"]
            assert len(cells) == TOTAL_CELLS
            by_key = {tuple(c["cell"]): c for c in cells}
            # Every cell the first client saw is a zero-recompute hit
            # backed by a real archived run.
            for key in seen_before_kill:
                assert by_key[key]["cached"] is True
                assert by_key[key]["run_id"]
            # Only the genuinely unfinished cells re-executed.
            assert events[-1]["executed"] == TOTAL_CELLS - events[0]["hits"]
            assert events[0]["hits"] >= len(seen_before_kill)
            client.close()
        finally:
            _sigkill_group(proc)

    def test_resume_on_clean_archive_is_a_no_op(self, tmp_path):
        (tmp_path / "archive").mkdir()
        proc, port = _start_server(tmp_path, resume=True)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=60.0)
            assert client.status()["recovery"] == []
            client.close()
        finally:
            _sigkill_group(proc)
