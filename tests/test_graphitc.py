"""Tests for the GraphIt-style DSL substrate (schedules, vertexsets, engine)."""

import numpy as np
import pytest

from repro.core import counters
from repro.errors import SchedulingError
from repro.graphitc import (
    BucketPriorityQueue,
    Direction,
    FrontierLayout,
    Schedule,
    VertexSet,
    edgeset_apply_all,
    edgeset_apply_from,
)


class TestSchedule:
    def test_defaults(self):
        s = Schedule()
        assert s.direction is Direction.DENSE_PULL_SPARSE_PUSH
        assert s.deduplicate

    def test_with_builder(self):
        s = Schedule().with_(num_segments=4)
        assert s.num_segments == 4
        assert Schedule().num_segments == 0  # original untouched

    def test_invalid_pull_sparse(self):
        with pytest.raises(SchedulingError):
            Schedule(direction=Direction.DENSE_PULL, frontier=FrontierLayout.SPARSE_ARRAY)

    def test_pull_with_bitvector_ok(self):
        Schedule(direction=Direction.DENSE_PULL, frontier=FrontierLayout.BITVECTOR)

    def test_negative_segments_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(num_segments=-1)

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(delta=0)


class TestVertexSet:
    def test_sparse_basics(self):
        vs = VertexSet.from_ids(10, np.array([3, 1, 3]))
        assert vs.size() == 2
        assert vs.ids().tolist() == [1, 3]

    def test_bitvector_basics(self):
        vs = VertexSet.from_ids(10, np.array([5]), FrontierLayout.BITVECTOR)
        assert vs.size() == 1
        assert vs.contains(np.array([5, 6])).tolist() == [True, False]

    def test_layout_conversion_counted(self):
        vs = VertexSet.from_ids(10, np.array([2]))
        with counters.counting() as work:
            vs.to_layout(FrontierLayout.BITVECTOR)
        assert work.extras.get("frontier_conversions") == 1

    def test_noop_conversion_free(self):
        vs = VertexSet.from_ids(10, np.array([2]))
        with counters.counting() as work:
            assert vs.to_layout(FrontierLayout.SPARSE_ARRAY) is vs
        assert "frontier_conversions" not in work.extras

    def test_bool(self):
        assert not VertexSet(4)
        assert VertexSet.from_ids(4, np.array([0]))

    def test_contains_empty_sparse(self):
        vs = VertexSet(4)
        assert vs.contains(np.array([1])).tolist() == [False]


class TestEngine:
    def _collect_edges(self, graph, frontier_ids, schedule, to_filter=None):
        seen = []

        def record(srcs, dsts, weights):
            seen.extend(zip(srcs.tolist(), dsts.tolist()))
            return np.ones(dsts.size, dtype=bool)

        frontier = VertexSet.from_ids(
            graph.num_vertices, np.array(frontier_ids), schedule.frontier
        )
        out = edgeset_apply_from(graph, frontier, record, schedule, to_filter)
        return sorted(set(seen)), out

    def test_push_and_pull_see_same_edges(self, tiny_graph):
        push = Schedule(direction=Direction.SPARSE_PUSH)
        pull = Schedule(
            direction=Direction.DENSE_PULL, frontier=FrontierLayout.BITVECTOR
        )
        edges_push, _ = self._collect_edges(tiny_graph, [0, 1], push)
        edges_pull, _ = self._collect_edges(tiny_graph, [0, 1], pull)
        assert edges_push == edges_pull == [(0, 1), (0, 2), (1, 2)]

    def test_to_filter_restricts_destinations(self, tiny_graph):
        schedule = Schedule(direction=Direction.SPARSE_PUSH)
        allowed = np.zeros(tiny_graph.num_vertices, dtype=bool)
        allowed[2] = True
        edges, _ = self._collect_edges(tiny_graph, [0, 1], schedule, allowed)
        assert edges == [(0, 2), (1, 2)]

    def test_output_frontier_layout_follows_schedule(self, tiny_graph):
        schedule = Schedule(
            direction=Direction.SPARSE_PUSH, frontier=FrontierLayout.BITVECTOR
        )
        _, out = self._collect_edges(tiny_graph, [0], schedule)
        assert out.layout is FrontierLayout.BITVECTOR

    def test_deduplicate(self, tiny_graph):
        # 0 and 1 both reach 2; with dedup the output frontier has 2 once.
        schedule = Schedule(direction=Direction.SPARSE_PUSH, deduplicate=True)
        _, out = self._collect_edges(tiny_graph, [0, 1], schedule)
        assert out.ids().tolist() == [1, 2]

    def test_apply_all_visits_every_edge(self, tiny_graph):
        total = {"count": 0}

        def count(srcs, dsts, weights):
            total["count"] += srcs.size
            return np.zeros(dsts.size, dtype=bool)

        edgeset_apply_all(tiny_graph, count, Schedule(), pull=True)
        assert total["count"] == tiny_graph.num_edges

    def test_apply_all_segmented_visits_every_edge(self, corpus):
        graph = corpus["kron"]
        total = {"count": 0}

        def count(srcs, dsts, weights):
            total["count"] += srcs.size
            return np.zeros(dsts.size, dtype=bool)

        with counters.counting() as work:
            edgeset_apply_all(graph, count, Schedule(num_segments=4), pull=True)
        assert total["count"] == graph.num_edges
        assert work.extras.get("cache_segments", 0) >= 2

    def test_apply_all_push_pull_orientation(self, tiny_graph):
        pairs_pull = []
        pairs_push = []

        def rec_pull(srcs, dsts, weights):
            pairs_pull.extend(zip(srcs.tolist(), dsts.tolist()))
            return np.zeros(dsts.size, dtype=bool)

        def rec_push(srcs, dsts, weights):
            pairs_push.extend(zip(srcs.tolist(), dsts.tolist()))
            return np.zeros(dsts.size, dtype=bool)

        edgeset_apply_all(tiny_graph, rec_pull, Schedule(), pull=True)
        edgeset_apply_all(tiny_graph, rec_push, Schedule(), pull=False)
        assert sorted(pairs_pull) == sorted(pairs_push)


class TestBuckets:
    def test_priority_order(self):
        q = BucketPriorityQueue()
        q.push(np.array([4]), np.array([1]))
        q.push(np.array([5]), np.array([0]))
        priority, members = q.pop_lowest()
        assert priority == 0 and members.tolist() == [5]

    def test_fusion_reduces_rounds(self):
        """Same workload, fused vs unfused: fusion must save rounds."""

        def run(fusion):
            dist = np.array([0.0, np.inf, np.inf, np.inf])
            chain = {0: 1, 1: 2, 2: 3}

            def relax(members):
                improved = []
                for m in members.tolist():
                    nxt = chain.get(m)
                    if nxt is not None and dist[nxt] > dist[m] + 1:
                        dist[nxt] = dist[m] + 1
                        improved.append(nxt)
                return np.array(improved, dtype=np.int64)

            q = BucketPriorityQueue(fusion=fusion)
            q.push(np.array([0]), np.array([0]))
            with counters.counting() as work:
                q.process(relax, dist, delta=100)  # whole chain in one bucket
            return dist.copy(), work

        fused_dist, fused_work = run(True)
        plain_dist, plain_work = run(False)
        assert np.array_equal(fused_dist, plain_dist)
        assert fused_work.rounds < plain_work.rounds
        assert fused_work.extras.get("fused_rounds", 0) > 0
