"""Shared fixtures: a small test corpus, oracle helpers, a test watchdog.

Set ``REPRO_TEST_TIMEOUT`` (seconds) to arm a per-test ``SIGALRM``
watchdog: any single test exceeding the budget fails with a clear
message instead of hanging the whole suite.  This is how CI guards the
fault-injection tests (which deliberately create hangs) without any
third-party timeout plugin.
"""

from __future__ import annotations

import os
import signal

import networkx as nx
import numpy as np
import pytest

from repro.frameworks import FRAMEWORK_NAMES, get
from repro.generators import build_graph, weighted_version
from repro.graphs import CSRGraph, EdgeList

TEST_SCALE = 9
GRAPHS = ["road", "twitter", "web", "kron", "urand"]

_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Per-test wall-clock watchdog, armed by ``$REPRO_TEST_TIMEOUT``.

    Uses ``SIGALRM`` directly (no plugin dependency), so it is a no-op on
    platforms without it and when the variable is unset.  Tests that
    install their own ``SIGALRM`` handler (the trial-deadline tests) are
    unaffected: the watchdog restores the previous handler afterwards and
    only fires if the test is still running at the deadline.
    """
    if _TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:g}s: {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session", params=GRAPHS)
def corpus_graph(request):
    """Each of the five corpus analogs at test scale."""
    return request.param, build_graph(request.param, scale=TEST_SCALE)


@pytest.fixture(scope="session")
def corpus():
    """All five corpus graphs keyed by name."""
    return {name: build_graph(name, scale=TEST_SCALE) for name in GRAPHS}


@pytest.fixture(scope="session")
def weighted_corpus(corpus):
    return {name: weighted_version(graph) for name, graph in corpus.items()}


@pytest.fixture(scope="session", params=FRAMEWORK_NAMES)
def framework(request):
    return get(request.param)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """A small hand-made directed graph with known structure.

    0 -> 1 -> 2 -> 3, 0 -> 2, 3 -> 0 (a cycle with a chord), plus isolated 4
    and a separate pair 5 <-> 6.
    """
    edges = EdgeList(
        7,
        np.array([0, 1, 2, 0, 3, 5, 6]),
        np.array([1, 2, 3, 2, 0, 6, 5]),
    )
    return CSRGraph.from_edge_list(edges, directed=True)


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """Undirected: a triangle 0-1-2 plus a pendant 3 and one 4-clique 4..7."""
    src = [0, 1, 2, 2, 4, 4, 4, 5, 5, 6]
    dst = [1, 2, 0, 3, 5, 6, 7, 6, 7, 7]
    return CSRGraph.from_arrays(8, np.array(src), np.array(dst), directed=False)


def to_networkx(graph: CSRGraph, weighted: bool = False) -> nx.Graph:
    """Oracle view of a CSRGraph."""
    out = nx.DiGraph() if graph.directed else nx.Graph()
    out.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_array()
    if weighted and graph.weights is not None:
        out.add_weighted_edges_from(
            zip(src.tolist(), dst.tolist(), graph.weights.tolist())
        )
    else:
        out.add_edges_from(zip(src.tolist(), dst.tolist()))
    return out


@pytest.fixture(scope="session")
def nx_corpus(corpus):
    return {name: to_networkx(graph) for name, graph in corpus.items()}
