"""Tests for the element-wise GraphBLAS operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError
from repro.semiring import (
    MIN_OP,
    PLUS_OP,
    SECOND,
    Vector,
    apply_masked,
    ewise_add,
    ewise_mult,
    extract,
)


def vec(n, entries):
    idx = np.array(sorted(entries), dtype=np.int64)
    vals = np.array([entries[i] for i in sorted(entries)])
    return Vector.from_entries(n, idx, vals)


class TestEwiseAdd:
    def test_union_semantics(self):
        u = vec(6, {0: 1.0, 2: 3.0})
        v = vec(6, {2: 10.0, 4: 5.0})
        w = ewise_add(u, v, PLUS_OP)
        assert dict(zip(*[a.tolist() for a in w.entries()])) == {
            0: 1.0,
            2: 13.0,
            4: 5.0,
        }

    def test_min_combine(self):
        u = vec(4, {1: 9.0})
        v = vec(4, {1: 2.0})
        w = ewise_add(u, v, MIN_OP)
        assert w.values_at(np.array([1]))[0] == 2.0

    def test_empty_operand(self):
        u = vec(4, {0: 1.0})
        w = ewise_add(u, Vector.empty(4), PLUS_OP)
        assert w.indices().tolist() == [0]

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            ewise_add(Vector.empty(3), Vector.empty(4), PLUS_OP)

    @given(
        st.dictionaries(st.integers(0, 9), st.floats(-10, 10), max_size=10),
        st.dictionaries(st.integers(0, 9), st.floats(-10, 10), max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_union_structure(self, a, b):
        w = ewise_add(vec(10, a), vec(10, b), PLUS_OP)
        assert set(w.indices().tolist()) == set(a) | set(b)


class TestEwiseMult:
    def test_intersection_semantics(self):
        u = vec(6, {0: 1.0, 2: 3.0})
        v = vec(6, {2: 10.0, 4: 5.0})
        w = ewise_mult(u, v, PLUS_OP)
        assert w.indices().tolist() == [2]
        assert w.entries()[1].tolist() == [13.0]

    def test_disjoint_supports(self):
        w = ewise_mult(vec(4, {0: 1.0}), vec(4, {1: 1.0}), PLUS_OP)
        assert w.nvals == 0

    def test_second_takes_right_value(self):
        w = ewise_mult(vec(4, {2: 7.0}), vec(4, {2: 9.0}), SECOND)
        assert w.entries()[1].tolist() == [9.0]

    @given(
        st.dictionaries(st.integers(0, 9), st.floats(-10, 10), max_size=10),
        st.dictionaries(st.integers(0, 9), st.floats(-10, 10), max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_intersection_structure(self, a, b):
        w = ewise_mult(vec(10, a), vec(10, b), PLUS_OP)
        assert set(w.indices().tolist()) == set(a) & set(b)


class TestExtract:
    def test_basic(self):
        u = vec(6, {1: 10.0, 3: 30.0})
        w = extract(u, np.array([3, 0, 1]))
        assert w.n == 3
        assert dict(zip(*[a.tolist() for a in w.entries()])) == {0: 30.0, 2: 10.0}

    def test_absent_stays_absent(self):
        u = vec(6, {1: 10.0})
        w = extract(u, np.array([0, 2]))
        assert w.nvals == 0

    def test_out_of_range(self):
        with pytest.raises(DimensionMismatchError):
            extract(vec(3, {0: 1.0}), np.array([5]))


class TestApplyMasked:
    def test_mask_restricts(self):
        u = vec(5, {0: 1.0, 1: 2.0, 2: 3.0})
        mask = vec(5, {1: 1.0})
        w = apply_masked(u, lambda x: x * 10, mask)
        assert w.indices().tolist() == [1]
        assert w.entries()[1].tolist() == [20.0]

    def test_complement(self):
        u = vec(5, {0: 1.0, 1: 2.0})
        mask = vec(5, {1: 1.0})
        w = apply_masked(u, lambda x: -x, mask, complement=True)
        assert w.indices().tolist() == [0]
        assert w.entries()[1].tolist() == [-1.0]

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            apply_masked(vec(3, {}), lambda x: x, vec(4, {}))
