"""Cross-framework correctness: BFS and SSSP on every corpus graph.

Every framework must produce GAP-spec-conformant output on every topology;
oracles are networkx (independent of all our code).
"""

import networkx as nx
import numpy as np
import pytest

from repro.frameworks import Mode, RunContext
from repro.generators import weighted_version

from .conftest import to_networkx


def pick_sources(graph, count=3, seed=1):
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.out_degrees > 0)
    return rng.choice(candidates, size=min(count, candidates.size), replace=False)


class TestBFS:
    def test_parents_valid(self, framework, corpus_graph, nx_corpus):
        name, graph = corpus_graph
        oracle = nx_corpus[name]
        for source in pick_sources(graph):
            parents = framework.bfs(graph, int(source))
            depths = nx.single_source_shortest_path_length(oracle, int(source))
            reached = np.flatnonzero(parents >= 0)
            assert set(reached.tolist()) == set(depths), (
                framework.name,
                name,
                "reachable set",
            )
            assert parents[source] == source
            for v in reached.tolist():
                if v == source:
                    continue
                p = int(parents[v])
                assert graph.has_edge(p, v), (framework.name, name, v, p)
                assert depths[p] + 1 == depths[v], (framework.name, name, v)

    def test_unreachable_marked(self, framework, tiny_graph):
        parents = framework.bfs(tiny_graph, 5)
        assert parents[5] == 5
        assert parents[6] == 5
        assert (parents[[0, 1, 2, 3, 4]] == -1).all()

    def test_single_vertex_frontier_end(self, framework, tiny_graph):
        # Source with no outgoing path beyond its component.
        parents = framework.bfs(tiny_graph, 0)
        assert set(np.flatnonzero(parents >= 0).tolist()) == {0, 1, 2, 3}

    def test_optimized_mode_also_correct(self, framework, corpus_graph):
        name, graph = corpus_graph
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name=name)
        source = int(pick_sources(graph, 1)[0])
        parents_opt = framework.bfs(graph, source, ctx)
        parents_base = framework.bfs(graph, source)
        reached_opt = set(np.flatnonzero(parents_opt >= 0).tolist())
        reached_base = set(np.flatnonzero(parents_base >= 0).tolist())
        assert reached_opt == reached_base


class TestSSSP:
    def test_distances_match_dijkstra(self, framework, corpus_graph, weighted_corpus):
        name, _ = corpus_graph
        graph = weighted_corpus[name]
        oracle_graph = to_networkx(graph, weighted=True)
        for source in pick_sources(graph, count=2):
            dist = framework.sssp(graph, int(source))
            oracle = nx.single_source_dijkstra_path_length(oracle_graph, int(source))
            for v, d in oracle.items():
                assert dist[v] == pytest.approx(d), (framework.name, name, v)
            unreachable = set(range(graph.num_vertices)) - set(oracle)
            assert np.isinf(dist[list(unreachable)]).all() if unreachable else True

    def test_source_distance_zero(self, framework, weighted_corpus):
        graph = weighted_corpus["kron"]
        source = int(pick_sources(graph, 1)[0])
        assert framework.sssp(graph, source)[source] == 0.0

    def test_delta_insensitive(self, framework, weighted_corpus):
        """Result must not depend on the delta tuning parameter."""
        graph = weighted_corpus["road"]
        source = int(pick_sources(graph, 1)[0])
        d_small = framework.sssp(graph, source, RunContext(delta=4))
        d_large = framework.sssp(graph, source, RunContext(delta=1024))
        assert np.array_equal(
            np.nan_to_num(d_small, posinf=-1.0), np.nan_to_num(d_large, posinf=-1.0)
        )

    def test_optimized_mode_matches_baseline(self, framework, weighted_corpus):
        graph = weighted_corpus["urand"]
        source = int(pick_sources(graph, 1)[0])
        base = framework.sssp(graph, source, RunContext(mode=Mode.BASELINE, graph_name="urand"))
        opt = framework.sssp(graph, source, RunContext(mode=Mode.OPTIMIZED, graph_name="urand"))
        assert np.array_equal(
            np.nan_to_num(base, posinf=-1.0), np.nan_to_num(opt, posinf=-1.0)
        )
