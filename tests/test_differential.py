"""Differential test harness: every framework pair must agree on every kernel.

The paper's cross-framework tables are only meaningful if the frameworks
solve the *same problem*; a silently divergent implementation would turn a
performance comparison into nonsense.  This harness runs every registered
framework on every GAP kernel over multiple graph topologies, checks each
output against the shared oracle in :mod:`repro.core.verify`, and then
asserts pairwise agreement on a canonical form of the output:

* BFS parent arrays are canonicalized to depth arrays (different valid
  parent trees are fine, different depths are not);
* CC labelings are canonicalized to the minimum vertex id per component;
* SSSP distances must match exactly (integer weights — every correct
  algorithm returns identical float64 distances);
* PR scores must agree to well within the convergence tolerance;
* BC scores must agree to relative 1e-6; TC counts must be equal.

The full matrix is marked ``tier2`` — deselect with ``-m 'not tier2'``.
"""

import itertools

import numpy as np
import pytest

from repro.core import GraphCase, SourcePicker, verify
from repro.frameworks import KERNELS, RunContext, get
from repro.frameworks.registry import FRAMEWORK_NAMES

DIFF_SCALE = 7
DIFF_GRAPHS = ("road", "kron", "urand")
PR_TOLERANCE = 1e-7
PAIRS = list(itertools.combinations(FRAMEWORK_NAMES, 2))


def bfs_depths_from_parents(parents: np.ndarray, source: int) -> np.ndarray:
    """Canonical BFS output: depth per vertex, derived only from parents."""
    n = parents.size
    depths = np.full(n, -1, dtype=np.int64)
    depths[source] = 0
    for _ in range(n):
        known = depths >= 0
        frontier = (~known) & (parents >= 0) & known[np.where(parents >= 0, parents, 0)]
        if not frontier.any():
            break
        depths[frontier] = depths[parents[frontier]] + 1
    return depths


def canonical_cc_labels(labels: np.ndarray) -> np.ndarray:
    """Canonical CC output: each vertex labeled by its component's min id."""
    canonical = np.full(labels.size, -1, dtype=np.int64)
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    for group in np.split(order, boundaries):
        canonical[group] = group.min()
    return canonical


@pytest.fixture(scope="module")
def cases():
    return {name: GraphCase.build(name, scale=DIFF_SCALE) for name in DIFF_GRAPHS}


@pytest.fixture(scope="module")
def sources(cases):
    """One BFS/SSSP source and one BC root batch per graph, shared by all."""
    picked = {}
    for name, case in cases.items():
        picker = SourcePicker(case.graph, seed=0)
        picked[name] = (picker.next_source(), picker.next_sources(4))
    return picked


@pytest.fixture(scope="module")
def outputs(cases, sources):
    """Every framework's raw output for every (kernel, graph), computed once."""
    computed = {}
    for graph_name, case in cases.items():
        source, roots = sources[graph_name]
        for framework_name in FRAMEWORK_NAMES:
            framework = get(framework_name)
            ctx = RunContext(graph_name=graph_name)
            computed[(framework_name, "bfs", graph_name)] = framework.bfs(
                case.graph, source, ctx
            )
            computed[(framework_name, "sssp", graph_name)] = framework.sssp(
                case.weighted, source, ctx
            )
            computed[(framework_name, "cc", graph_name)] = (
                framework.connected_components(case.graph, ctx)
            )
            computed[(framework_name, "pr", graph_name)] = framework.pagerank(
                case.graph, ctx, tolerance=PR_TOLERANCE, max_iterations=500
            )
            computed[(framework_name, "bc", graph_name)] = framework.betweenness(
                case.graph, roots, ctx
            )
            computed[(framework_name, "tc", graph_name)] = framework.triangle_count(
                case.undirected, ctx
            )
    return computed


@pytest.mark.tier2
@pytest.mark.parametrize("graph_name", DIFF_GRAPHS)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("framework_name", FRAMEWORK_NAMES)
def test_output_verifies_against_oracle(
    outputs, cases, sources, framework_name, kernel, graph_name
):
    """Each framework's output passes the shared oracle for that kernel."""
    case = cases[graph_name]
    source, roots = sources[graph_name]
    output = outputs[(framework_name, kernel, graph_name)]
    if kernel == "bfs":
        verify.verify_bfs(case.graph, source, output)
    elif kernel == "sssp":
        verify.verify_sssp(case.weighted, source, output)
    elif kernel == "cc":
        verify.verify_cc(case.graph, output)
    elif kernel == "pr":
        verify.verify_pr(case.graph, output, tolerance=PR_TOLERANCE)
    elif kernel == "bc":
        reference = outputs[("gap", "bc", graph_name)]
        verify.verify_bc(reference, output)
    elif kernel == "tc":
        verify.verify_tc(case.undirected, int(output))


@pytest.mark.tier2
@pytest.mark.parametrize("graph_name", DIFF_GRAPHS)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "name_a,name_b", PAIRS, ids=["-".join(pair) for pair in PAIRS]
)
def test_framework_pair_agrees(outputs, sources, name_a, name_b, kernel, graph_name):
    """Canonicalized outputs of the two frameworks are interchangeable."""
    out_a = outputs[(name_a, kernel, graph_name)]
    out_b = outputs[(name_b, kernel, graph_name)]
    if kernel == "bfs":
        source, _ = sources[graph_name]
        depths_a = bfs_depths_from_parents(np.asarray(out_a), source)
        depths_b = bfs_depths_from_parents(np.asarray(out_b), source)
        np.testing.assert_array_equal(depths_a, depths_b)
    elif kernel == "sssp":
        np.testing.assert_allclose(out_a, out_b, rtol=0, atol=1e-9)
    elif kernel == "cc":
        np.testing.assert_array_equal(
            canonical_cc_labels(np.asarray(out_a)),
            canonical_cc_labels(np.asarray(out_b)),
        )
    elif kernel == "pr":
        # Converged to L1 residual < PR_TOLERANCE; solutions can differ by
        # O(tolerance / (1 - damping)) in L1, far below this bound.
        assert float(np.abs(np.asarray(out_a) - np.asarray(out_b)).sum()) < 1e-4
    elif kernel == "bc":
        magnitude = max(1.0, float(np.abs(out_a).max()))
        assert float(np.abs(np.asarray(out_a) - np.asarray(out_b)).max()) <= (
            1e-6 * magnitude
        )
    elif kernel == "tc":
        assert int(out_a) == int(out_b)


def test_differential_matrix_is_complete():
    """The matrix covers all framework pairs, all six kernels, >=2 graphs."""
    assert len(PAIRS) == len(FRAMEWORK_NAMES) * (len(FRAMEWORK_NAMES) - 1) // 2
    assert set(KERNELS) == {"bfs", "sssp", "cc", "pr", "bc", "tc"}
    assert len(DIFF_GRAPHS) >= 2
