"""Tests for framework-specific algorithm variants and mode switches."""

import numpy as np
import pytest

from repro.core import counters
from repro.frameworks import Mode, RunContext, get
from repro.generators import build_graph, weighted_version


class TestGaloisVariants:
    def test_edge_blocking_cc_same_partition(self, corpus):
        from repro.galois.cc import galois_afforest

        graph = corpus["web"]
        plain = galois_afforest(graph, edge_blocking=False)
        blocked = galois_afforest(graph, edge_blocking=True)
        # Identical partitions (labels may differ by representative).
        _, plain_ids = np.unique(plain, return_inverse=True)
        _, blocked_ids = np.unique(blocked, return_inverse=True)
        assert np.array_equal(plain_ids, blocked_ids)

    def test_optimized_web_uses_edge_blocking(self, corpus):
        graph = corpus["web"]
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="web")
        labels = get("galois").connected_components(graph, ctx)
        oracle = get("gap").connected_components(graph)
        assert len(np.unique(labels)) == len(np.unique(oracle))

    def test_sync_async_sssp_agree(self, weighted_corpus):
        from repro.galois.sssp import async_delta_stepping, sync_delta_stepping

        graph = weighted_corpus["web"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        a = sync_delta_stepping(graph, source, delta=32)
        b = async_delta_stepping(graph, source, delta=32)
        assert np.array_equal(
            np.nan_to_num(a, posinf=-1.0), np.nan_to_num(b, posinf=-1.0)
        )

    def test_async_chunk_size_irrelevant_to_result(self, weighted_corpus):
        from repro.galois.sssp import async_delta_stepping

        graph = weighted_corpus["road"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        a = async_delta_stepping(graph, source, delta=64, chunk_size=16)
        b = async_delta_stepping(graph, source, delta=64, chunk_size=4096)
        assert np.array_equal(
            np.nan_to_num(a, posinf=-1.0), np.nan_to_num(b, posinf=-1.0)
        )


class TestGraphItVariants:
    def test_intersect_methods_agree(self, corpus):
        from repro.graphit.tc import graphit_tc

        graph = corpus["kron"]
        assert graphit_tc(graph, intersect="hash") == graphit_tc(
            graph, intersect="merge"
        )

    def test_optimized_road_tc_uses_merge(self, corpus):
        """The Optimized Road schedule switches back to naive intersection."""
        graph = corpus["road"].to_undirected()
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="road")
        baseline = get("graphit").triangle_count(graph)
        optimized = get("graphit").triangle_count(graph, ctx)
        assert baseline == optimized

    def test_schedule_table_defaults(self):
        from repro.graphit.schedules import baseline_schedule, optimized_schedule
        from repro.graphitc import Direction, FrontierLayout

        assert baseline_schedule("sssp").bucket_fusion
        assert baseline_schedule("bc").frontier is FrontierLayout.BITVECTOR
        assert optimized_schedule("bc", "road").frontier is FrontierLayout.SPARSE_ARRAY
        assert optimized_schedule("pr", "twitter").num_segments > 0
        assert optimized_schedule("pr", "web").num_segments == 0  # good locality
        assert optimized_schedule("bfs", "kron").direction is not Direction.SPARSE_PUSH

    def test_tiled_pr_matches_untiled(self, corpus):
        graph = corpus["kron"]
        ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="kron")
        tiled = get("graphit").pagerank(graph, ctx)
        plain = get("graphit").pagerank(graph)
        assert np.allclose(tiled, plain)

    def test_bitvector_and_sparse_bc_agree(self, corpus):
        from repro.graphit import graphit_bc
        from repro.graphit.schedules import baseline_schedule
        from repro.graphitc import FrontierLayout

        graph = corpus["road"]
        sources = np.flatnonzero(graph.out_degrees > 0)[:4]
        bitvector = graphit_bc(graph, sources, baseline_schedule("bc"))
        sparse = graphit_bc(
            graph,
            sources,
            baseline_schedule("bc").with_(frontier=FrontierLayout.SPARSE_ARRAY),
        )
        assert np.allclose(bitvector, sparse)


class TestNWGraphDetails:
    def test_simple_switch_uses_pull_on_dense_frontier(self, corpus):
        """NWGraph's size-only heuristic must enter pull mode on kron."""
        from repro.nwgraph.bfs import nwgraph_bfs

        graph = corpus["kron"]
        source = int(np.argmax(graph.out_degrees))
        with counters.counting() as work:
            nwgraph_bfs(graph, source)
        # Pull rounds scan the in-adjacency of unvisited vertices: edge
        # count exceeds pure-push volume when the pull path was taken.
        push_volume = int(graph.out_degrees[source])  # lower bound sanity
        assert work.edges_examined > push_volume

    def test_tc_always_relabels(self, corpus):
        """NWGraph's TC sorts/relabels unconditionally (edge-list strategy)."""
        from repro.nwgraph.tc import nwgraph_tc
        from repro.gapbs.tc import triangle_count as gap_tc

        graph = corpus["urand"]
        assert nwgraph_tc(graph) == gap_tc(graph)


class TestGKCDetails:
    def test_sssp_buffered_buckets_note_flushes(self, weighted_corpus):
        from repro.gkc.sssp import gkc_sssp

        graph = weighted_corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        with counters.counting() as work:
            gkc_sssp(graph, source, delta=16)
        assert work.extras.get("buffer_flushes", 0) > 0

    def test_sv_working_set_shrinks(self, corpus):
        """The hybrid refinement: settled edges leave the working set, so
        total edge work is below passes * |E|."""
        from repro.gkc.cc import gkc_cc

        graph = corpus["kron"]
        with counters.counting() as work:
            gkc_cc(graph)
        total_possible = work.iterations * graph.num_edges * (
            2 if graph.directed else 1
        )
        assert work.edges_examined < total_possible


class TestModeEquivalence:
    """Optimized-mode tuning must never change *results*, only performance."""

    @pytest.mark.parametrize("fw_name", ["gap", "suitesparse", "galois", "nwgraph", "graphit", "gkc"])
    def test_pagerank_identical_across_modes(self, corpus, fw_name):
        graph = corpus["twitter"]
        framework = get(fw_name)
        base = framework.pagerank(graph, RunContext(graph_name="twitter"))
        opt = framework.pagerank(
            graph, RunContext(mode=Mode.OPTIMIZED, graph_name="twitter")
        )
        assert np.allclose(base, opt, atol=1e-4)

    @pytest.mark.parametrize("fw_name", ["galois", "graphit"])
    def test_bc_identical_across_modes(self, corpus, fw_name):
        graph = corpus["road"]
        sources = np.flatnonzero(graph.out_degrees > 0)[:4]
        framework = get(fw_name)
        base = framework.betweenness(graph, sources, RunContext(graph_name="road"))
        opt = framework.betweenness(
            graph, sources, RunContext(mode=Mode.OPTIMIZED, graph_name="road")
        )
        assert np.allclose(base, opt)


class TestGaloisAsyncBC:
    def test_async_matches_sync(self, corpus):
        from repro.galois.bc import galois_bc, galois_bc_async

        for name in ("road", "kron", "urand"):
            graph = corpus[name]
            sources = np.flatnonzero(graph.out_degrees > 0)[:4]
            sync = galois_bc(graph, sources)
            eager = galois_bc_async(graph, sources)
            assert np.allclose(sync, eager), name

    def test_async_does_extra_sigma_pass_work(self, corpus):
        """The async variant rebuilds path counts after depths settle —
        its work-efficiency price, which the paper measured as a Baseline
        penalty on Urand."""
        from repro.galois.bc import galois_bc, galois_bc_async

        graph = corpus["urand"]
        sources = np.flatnonzero(graph.out_degrees > 0)[:2]
        with counters.counting() as sync:
            galois_bc(graph, sources)
        with counters.counting() as eager:
            galois_bc_async(graph, sources)
        assert eager.edges_examined > sync.edges_examined

    def test_framework_dispatches_by_heuristic(self, corpus):
        """Baseline on a power-law graph: sync (rounds counted in the
        forward phase); on a uniform graph: async forward."""
        galois = get("galois")
        sources = np.flatnonzero(corpus["kron"].out_degrees > 0)[:2]
        ref = get("gap").betweenness(corpus["kron"], sources)
        out = galois.betweenness(corpus["kron"], sources)
        assert np.allclose(out, ref)
        sources_u = np.flatnonzero(corpus["urand"].out_degrees > 0)[:2]
        ref_u = get("gap").betweenness(corpus["urand"], sources_u)
        out_u = galois.betweenness(corpus["urand"], sources_u)
        assert np.allclose(out_u, ref_u)
