"""Tests for the markdown report generator."""

import pytest

from repro.core import BenchmarkSpec, run_suite
from repro.core.report import markdown_table, results_to_markdown, write_markdown_report
from repro.frameworks import KERNELS, Mode, get


@pytest.fixture(scope="module")
def small_campaign():
    spec = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})
    return run_suite(
        [get("gap"), get("gkc"), get("galois")],
        ["kron"],
        modes=[Mode.BASELINE, Mode.OPTIMIZED],
        spec=spec,
    )


class TestMarkdownTable:
    def test_basic(self):
        text = markdown_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.strip().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"

    def test_empty(self):
        assert markdown_table([]) == "(no rows)\n"


class TestCampaignReport:
    def test_contains_all_sections(self, small_campaign):
        text = results_to_markdown(small_campaign, ["kron"])
        assert "## Table IV" in text
        assert "## Table V" in text
        assert "## Shape agreement" in text
        assert "### Work counters" in text

    def test_table5_has_every_kernel(self, small_campaign):
        text = results_to_markdown(small_campaign, ["kron"])
        for label in ("BFS", "SSSP", "CC", "PR", "BC", "TC"):
            assert label in text

    def test_write_to_file(self, tmp_path, small_campaign):
        path = tmp_path / "report.md"
        write_markdown_report(small_campaign, ["kron"], path)
        assert path.read_text(encoding="utf-8").startswith("# Campaign report")

    def test_agreement_section_uses_paper_data(self, small_campaign):
        text = results_to_markdown(small_campaign, ["kron"])
        assert "direction agreement" in text
