"""Tests for the GraphIt-style schedule autotuner."""

import numpy as np
import pytest

from repro.graphit import graphit_bfs
from repro.graphitc import Direction, FrontierLayout, Schedule, autotune


class TestSearchMechanics:
    def test_budget_respected(self):
        calls = {"count": 0}

        def run(schedule):
            calls["count"] += 1

        result = autotune(run, budget=7)
        assert result.evaluations == 7
        assert calls["count"] == 7

    def test_returns_minimum_of_history(self):
        def run(schedule):
            pass

        result = autotune(run, budget=6)
        assert result.best_seconds == min(t for _, t in result.history)

    def test_finds_planted_optimum(self):
        """A synthetic cost function with one clearly best direction."""
        import time

        def run(schedule):
            if schedule.direction is not Direction.SPARSE_PUSH:
                time.sleep(0.002)

        result = autotune(run, budget=14, seed=1)
        assert result.best_schedule.direction is Direction.SPARSE_PUSH

    def test_fixed_fields_pinned(self):
        seen = set()

        def run(schedule):
            seen.add(schedule.delta)

        autotune(run, budget=8, fixed={"delta": 64})
        assert seen == {64}

    def test_all_candidates_valid(self):
        """The search must never produce a schedule the DSL would reject."""
        def run(schedule):
            # Schedule construction already validates; re-validate the
            # invariant the DSL cares about.
            if schedule.direction is Direction.DENSE_PULL:
                assert schedule.frontier is FrontierLayout.BITVECTOR

        autotune(run, budget=20, seed=3)

    def test_exploration_phase_deterministic(self):
        """The random probes depend only on the seed (mutations afterward
        depend on measured times, which are inherently noisy)."""

        def run(schedule):
            pass

        a = autotune(run, budget=6, seed=9)
        b = autotune(run, budget=6, seed=9)
        probes = max(2, 6 // 3)
        assert [s for s, _ in a.history[:probes]] == [
            s for s, _ in b.history[:probes]
        ]


class TestOnRealKernel:
    def test_tuned_bfs_is_correct_and_competitive(self, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        reference = graphit_bfs(graph, source, Schedule())

        def run(schedule):
            parents = graphit_bfs(graph, source, schedule)
            assert np.array_equal(parents >= 0, reference >= 0)

        result = autotune(run, budget=10, seed=0, fixed={"num_segments": 0})
        assert result.best_seconds < np.inf
        # The tuned schedule must not lose to the default by much.
        import time

        start = time.perf_counter()
        graphit_bfs(graph, source, Schedule())
        default_seconds = time.perf_counter() - start
        assert result.best_seconds <= default_seconds * 3
