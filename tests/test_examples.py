"""Smoke tests: every example script must run end to end.

Run via subprocess at small scales so the examples stay honest (no import
errors, no drifted APIs) without inflating test time.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "gap", "kron", "9")
    assert "triangles" in out
    assert "bfs" in out


def test_quickstart_other_framework():
    out = run_example("quickstart.py", "gkc", "road", "9")
    assert "Graph Kernel Collection" in out


def test_road_network_analysis():
    out = run_example("road_network_analysis.py", "10")
    assert "scheduling comparison" in out
    assert "most critical junctions" in out


def test_social_network_analysis():
    out = run_example("social_network_analysis.py", "10")
    assert "Gauss-Seidel" in out
    assert "triangles=" in out


def test_web_structure_analysis():
    out = run_example("web_structure_analysis.py", "10")
    assert "communities" in out
    assert "local clustering" in out


def test_semiring_playground():
    out = run_example("semiring_playground.py")
    assert "triangle counting" in out
    assert "min-plus" in out


@pytest.mark.slow
def test_report_tables_small():
    out = run_example("report_tables.py", "9")
    assert "Table V" in out
    assert "Shape agreement" in out


def test_direction_optimization_study():
    out = run_example("direction_optimization_study.py", "10")
    assert "bottom-up window" in out
    assert "pure push" in out


def test_autotune_schedules():
    out = run_example("autotune_schedules.py", "10", "6")
    assert "autotuned" in out
    assert "evals" in out
