"""End-to-end tests for the regression gate and the archive CLI.

The acceptance scenario for the gate subsystem: an unmodified re-run of
the same campaign must pass the gate at the default noise threshold (no
false positives), while a 2x slowdown injected into one kernel's trial
times must fail it with that cell named.  Both runs here are *real*
campaigns through ``run_suite``, not synthetic numbers, so the
no-false-positive half exercises genuine trial noise.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.core import BenchmarkSpec, Telemetry, run_suite
from repro.frameworks import Mode, get
from repro.store import RunArchive, classify_cells

SCALE = 8
KERNELS_USED = ["bfs", "cc"]
# Extra trials tighten the bootstrap interval for the re-run comparison.
SPEC = BenchmarkSpec(scale=SCALE, trials={"bfs": 6, "cc": 6})


def _campaign():
    return run_suite(
        [get("gap")],
        ["kron"],
        kernels=KERNELS_USED,
        modes=[Mode.BASELINE],
        spec=SPEC,
    )


@pytest.fixture(scope="module")
def two_runs(tmp_path_factory):
    """The same campaign measured twice, saved as results files.

    Kernels at this scale run in microseconds, so a load spike on the
    test machine between the two measurements can exceed the 25% noise
    threshold for real.  Mirror the benchmarking practice for that case
    (re-measure before believing a delta): re-run the candidate until it
    is statistically indistinguishable from the baseline, a few attempts
    at most.  An actual false-positive bug in the classifier would fail
    every attempt and still fail the fixture — while the injected-2x
    test below stays regressed no matter which candidate was kept.
    """
    tmp = tmp_path_factory.mktemp("gate-campaigns")
    _campaign()  # warm-up: discard first-touch allocator/cache effects
    baseline = _campaign()
    for _ in range(4):
        candidate = _campaign()
        deltas = classify_cells(baseline, candidate)
        if all(d.classification == "unchanged" for d in deltas):
            break
    base_path = tmp / "baseline.json"
    cand_path = tmp / "candidate.json"
    baseline.save_json(base_path)
    candidate.save_json(cand_path)
    return base_path, cand_path


class TestGateCLI:
    def test_clean_rerun_passes_gate(self, two_runs, tmp_path, capsys):
        base_path, cand_path = two_runs
        out = tmp_path / "BENCH_gate.json"
        code = main(
            [
                "gate",
                "--baseline", str(base_path),
                "--results", str(cand_path),
                "--fail-on-regression",
                "--out", str(out),
            ]
        )
        assert code == 0, capsys.readouterr().out
        assert "gate: PASS" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["bench"] == "gate"
        assert payload["data"]["passed"] is True
        assert payload["data"]["regressions"] == []

    def test_injected_regression_fails_gate_and_names_cell(
        self, two_runs, tmp_path, capsys
    ):
        base_path, cand_path = two_runs
        slowed = json.loads(cand_path.read_text())
        for record in slowed["results"]:
            if record["kernel"] == "cc":
                record["trial_seconds"] = [
                    t * 2.0 for t in record["trial_seconds"]
                ]
        slow_path = tmp_path / "slowed.json"
        slow_path.write_text(json.dumps(slowed), encoding="ascii")
        out = tmp_path / "BENCH_gate.json"
        code = main(
            [
                "gate",
                "--baseline", str(base_path),
                "--results", str(slow_path),
                "--fail-on-regression",
                "--out", str(out),
            ]
        )
        assert code != 0
        printed = capsys.readouterr().out
        assert "gate: FAIL" in printed
        assert "gap/cc/kron/baseline" in printed
        payload = json.loads(out.read_text())
        assert payload["data"]["passed"] is False
        assert "gap/cc/kron/baseline" in payload["data"]["regressions"]
        # The untouched kernel must not be dragged into the verdict.
        assert "gap/bfs/kron/baseline" not in payload["data"]["regressions"]

    def test_report_only_mode_exits_zero_on_regression(
        self, two_runs, tmp_path, capsys
    ):
        base_path, cand_path = two_runs
        slowed = json.loads(cand_path.read_text())
        for record in slowed["results"]:
            record["trial_seconds"] = [t * 3.0 for t in record["trial_seconds"]]
        slow_path = tmp_path / "slowed.json"
        slow_path.write_text(json.dumps(slowed), encoding="ascii")
        code = main(
            ["gate", "--baseline", str(base_path), "--results", str(slow_path)]
        )
        assert code == 0  # no --fail-on-regression: report-only (fork PRs)
        assert "gate: FAIL" in capsys.readouterr().out

    def test_promote_installs_candidate_as_baseline(
        self, two_runs, tmp_path, capsys
    ):
        base_path, cand_path = two_runs
        new_baseline = tmp_path / "baselines" / "smoke.json"
        # Bootstrap: no baseline file yet.
        code = main(
            [
                "gate",
                "--baseline", str(new_baseline),
                "--results", str(cand_path),
                "--promote",
            ]
        )
        assert code == 0
        assert "promoted" in capsys.readouterr().out
        promoted = json.loads(new_baseline.read_text())
        candidate = json.loads(cand_path.read_text())
        assert promoted["results"] == candidate["results"]
        # Re-promoting over an existing baseline replaces it atomically.
        code = main(
            [
                "gate",
                "--baseline", str(new_baseline),
                "--results", str(base_path),
                "--promote",
            ]
        )
        assert code == 0
        assert (
            json.loads(new_baseline.read_text())["results"]
            == json.loads(base_path.read_text())["results"]
        )

    def test_promote_refuses_archive_ref_baseline(self, two_runs):
        _, cand_path = two_runs
        with pytest.raises(SystemExit):
            main(
                [
                    "gate",
                    "--baseline", "latest",
                    "--results", str(cand_path),
                    "--promote",
                ]
            )

    def test_missing_ref_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "gate",
                    "--baseline", str(tmp_path / "nope.json"),
                    "--results", str(tmp_path / "also-nope.json"),
                ]
            )


class TestArchiveCLI:
    def test_archive_history_diff_roundtrip(self, two_runs, tmp_path, capsys):
        """Two archived runs of the same spec: history lists both, diff
        reports every cell unchanged (the subsystem acceptance check)."""
        base_path, cand_path = two_runs
        arch = tmp_path / "archive"
        for path in (base_path, cand_path):
            code = main(
                ["archive", "--results", str(path), "--archive-dir", str(arch)]
            )
            assert code == 0
        capsys.readouterr()

        assert main(["history", "--archive-dir", str(arch)]) == 0
        history = capsys.readouterr().out
        run_ids = [
            line.split()[0]
            for line in history.splitlines()[1:]
            if line.strip()
        ]
        assert len(run_ids) == 2

        code = main(
            [
                "diff",
                "--baseline", run_ids[1],
                "--candidate", run_ids[0],
                "--archive-dir", str(arch),
            ]
        )
        assert code == 0
        diff_out = capsys.readouterr().out
        assert "regressed: 0" in diff_out
        assert "broke: 0" in diff_out
        assert f"unchanged: {len(KERNELS_USED)}" in diff_out

    def test_run_archive_flag_persists_spans(self, tmp_path, capsys):
        arch = tmp_path / "archive"
        code = main(
            [
                "run",
                "--scale", "8",
                "--graphs", "kron",
                "--kernels", "cc",
                "--frameworks", "gap",
                "--modes", "baseline",
                "--archive",
                "--archive-dir", str(arch),
            ]
        )
        assert code == 0
        assert "archived as" in capsys.readouterr().out
        store = RunArchive(arch)
        record = store.lookup("latest")
        assert record.manifest["cells"] == 1
        assert record.manifest["spec"]["scale"] == 8
        spans = record.load_spans()
        assert any(rec.get("kernel") == "cc" for rec in spans)
        results = record.load_results()
        assert results.results[0].trial_seconds  # per-trial data survived

    def test_history_empty_archive(self, tmp_path, capsys):
        assert main(["history", "--archive-dir", str(tmp_path / "empty")]) == 0
        assert "no archived runs" in capsys.readouterr().out


class TestVersionFlag:
    def test_version_flag_prints_version_and_sha(self, capsys):
        from repro import __version__
        from repro.store import version_string

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        printed = capsys.readouterr().out
        assert __version__ in printed
        assert version_string() in printed

    def test_run_banner_carries_version(self, capsys):
        code = main(
            [
                "run",
                "--scale", "7",
                "--graphs", "kron",
                "--kernels", "cc",
                "--frameworks", "gap",
                "--modes", "baseline",
            ]
        )
        assert code == 0
        from repro.store import version_string

        assert f"repro {version_string()}" in capsys.readouterr().out
