"""Tests for the workload-characterization traces."""

import numpy as np

from repro.core.workload import FrontierTrace, RoundTrace, sparkline, trace_bfs
from repro.frameworks import get


class TestTraceBFS:
    def test_rounds_match_bfs_depth(self, corpus):
        graph = corpus["road"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        trace = trace_bfs(graph, source)
        # Round count equals the eccentricity of the source + 1 (the last
        # round discovers nothing new but drains the frontier).
        from repro.core.verify import reference_bfs_depths

        depths = reference_bfs_depths(graph, source)
        assert trace.num_rounds == int(depths.max()) + 1

    def test_discovered_sums_to_reachable(self, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        trace = trace_bfs(graph, source)
        parents = get("gap").bfs(graph, source)
        reachable = int((parents >= 0).sum())
        assert 1 + sum(r.discovered for r in trace.rounds) == reachable

    def test_topology_contrast(self, corpus):
        """Road: many tiny rounds.  Kron: few rounds with one huge spike."""
        road_src = int(np.flatnonzero(corpus["road"].out_degrees > 0)[0])
        kron_src = int(np.flatnonzero(corpus["kron"].out_degrees > 0)[0])
        road_trace = trace_bfs(corpus["road"], road_src)
        kron_trace = trace_bfs(corpus["kron"], kron_src)
        assert road_trace.num_rounds > 5 * kron_trace.num_rounds
        assert (
            kron_trace.peak_frontier / corpus["kron"].num_vertices
            > road_trace.peak_frontier / corpus["road"].num_vertices
        )

    def test_power_law_gets_pull_rounds(self, corpus):
        """Direction optimization fires on the scale-free graph only."""
        kron_src = int(np.argmax(corpus["kron"].out_degrees))
        assert trace_bfs(corpus["kron"], kron_src).pull_rounds > 0

    def test_frontier_sizes_series(self, corpus):
        graph = corpus["kron"]
        source = int(np.flatnonzero(graph.out_degrees > 0)[0])
        trace = trace_bfs(graph, source)
        assert trace.frontier_sizes()[0] == 1

    def test_isolated_source(self):
        from repro.graphs import CSRGraph

        graph = CSRGraph.from_arrays(3, np.array([0]), np.array([1]))
        trace = trace_bfs(graph, 2)
        assert trace.num_rounds == 1
        assert trace.rounds[0].discovered == 0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_levels(self):
        line = sparkline([1, 5, 10])
        assert len(line) == 3
        assert line[0] < line[1] < line[2] or line[2] == "@"

    def test_downsampling_preserves_length(self):
        line = sparkline(list(range(200)), width=50)
        assert len(line) == 50

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "
