"""Failure-injection tests: the harness must refuse broken frameworks.

The paper's discussion asks for "more formally specified verification and
validation procedures" — these tests prove the runner actually enforces
them by registering deliberately broken kernels and checking the campaign
fails loudly rather than recording bogus timings.
"""

import numpy as np
import pytest

from repro.core import BenchmarkSpec, GraphCase, run_cell
from repro.core.spec import SourcePicker
from repro.errors import VerificationError
from repro.frameworks import KERNELS, Mode, RunContext
from repro.gapbs import GAPReference


TINY_SPEC = BenchmarkSpec(scale=8, trials={k: 1 for k in KERNELS})


@pytest.fixture(scope="module")
def case():
    return GraphCase.build("kron", scale=8)


class BrokenBFS(GAPReference):
    """Claims an unreachable vertex was reached."""

    def bfs(self, graph, source, ctx=RunContext()):
        parents = super().bfs(graph, source, ctx)
        missing = np.flatnonzero(parents < 0)
        if missing.size:
            parents[missing[0]] = source
        else:  # fully reachable: corrupt a parent pointer instead
            victim = (source + 1) % graph.num_vertices
            parents[victim] = victim
        return parents


class BrokenSSSP(GAPReference):
    """Returns distances that are off by one."""

    def sssp(self, graph, source, ctx=RunContext()):
        dist = super().sssp(graph, source, ctx)
        finite = np.isfinite(dist) & (dist > 0)
        dist[finite] += 1.0
        return dist


class BrokenCC(GAPReference):
    """Splits the largest component in two."""

    def connected_components(self, graph, ctx=RunContext()):
        labels = super().connected_components(graph, ctx)
        biggest = np.bincount(labels).argmax()
        members = np.flatnonzero(labels == biggest)
        labels[members[: members.size // 2]] = labels.max() + 1
        return labels


class BrokenPR(GAPReference):
    """Returns a uniform vector regardless of structure."""

    def pagerank(self, graph, ctx=RunContext(), damping=0.85, tolerance=1e-4,
                 max_iterations=100):
        return np.full(graph.num_vertices, 1.0 / graph.num_vertices)


class BrokenTC(GAPReference):
    """Always one triangle short."""

    def triangle_count(self, graph, ctx=RunContext()):
        return super().triangle_count(graph, ctx) - 1


class BrokenBC(GAPReference):
    """Scales the scores by a constant."""

    def betweenness(self, graph, sources, ctx=RunContext()):
        return 2.0 * super().betweenness(graph, sources, ctx)


@pytest.mark.parametrize(
    "kernel,broken_class",
    [
        ("bfs", BrokenBFS),
        ("sssp", BrokenSSSP),
        ("cc", BrokenCC),
        ("pr", BrokenPR),
        ("tc", BrokenTC),
        ("bc", BrokenBC),
    ],
)
def test_runner_rejects_broken_kernel(case, kernel, broken_class):
    with pytest.raises(VerificationError):
        run_cell(broken_class(), kernel, case, Mode.BASELINE, TINY_SPEC)


def test_runner_accepts_correct_kernels(case):
    for kernel in KERNELS:
        result = run_cell(GAPReference(), kernel, case, Mode.BASELINE, TINY_SPEC)
        assert result.verified


def test_verification_can_be_disabled(case):
    """`verify=False` skips the oracles (for timing-only sweeps)."""
    spec = BenchmarkSpec(scale=8, trials={"tc": 1}, verify=False)
    result = run_cell(BrokenTC(), "tc", case, Mode.BASELINE, spec)
    assert result.seconds > 0  # measured despite the broken output


def test_bc_scores_nonzero_to_make_scaling_detectable(case):
    """Guard for BrokenBC: the roots chosen must yield nonzero scores,
    otherwise the 2x corruption would be invisible."""
    picker = SourcePicker(case.graph, TINY_SPEC.seed)
    roots = picker.next_sources(TINY_SPEC.bc_roots)
    scores = GAPReference().betweenness(case.graph, roots)
    assert np.abs(scores).max() > 0
