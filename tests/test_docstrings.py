"""Meta-test: every public item must carry documentation.

Deliverable hygiene for the library: all public modules, classes, and
functions under ``repro`` must have docstrings, so the API is navigable
without reading implementations.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


def test_all_modules_documented():
    undocumented = [
        module.__name__
        for module in _public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_all_public_functions_documented():
    missing = []
    for module in _public_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(item) and item.__module__ == module.__name__:
                if not (item.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_all_public_classes_documented():
    missing = []
    for module in _public_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(item) and item.__module__ == module.__name__:
                if not (item.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                for method_name, method in vars(item).items():
                    if method_name.startswith("_") or not inspect.isfunction(method):
                        continue
                    # getdoc follows the MRO, so overriding an interface
                    # method documented on the base class is fine.
                    if not (inspect.getdoc(getattr(item, method_name)) or "").strip():
                        missing.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
    assert missing == []
