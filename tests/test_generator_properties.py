"""Property-based tests for the five corpus generators.

Table I picked the GAP corpus for topological *diversity*; the scaled
analogs are only valid substitutes while they preserve each topology
class's invariants.  These tests pin the properties the kernels and the
paper's discussion rely on: reproducibility (identical graphs for
identical seeds — the cross-framework tables depend on every framework
seeing the same input), degree-distribution shape (bounded for Road,
heavy-tailed for the power-law graphs, concentrated for Urand), and
monotonic growth of |V| and |E| with ``scale``.
"""

import numpy as np
import pytest

from repro.generators import GAP_GRAPHS, GRAPH_NAMES, build_graph

SHAPE_SCALE = 10
HEAVY_TAIL_GRAPHS = ("twitter", "kron")


def _edge_key(graph):
    src, dst = graph.edge_array()
    return src, dst


class TestSeedDeterminism:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_same_seed_same_graph(self, name):
        first = build_graph(name, scale=8, seed=3)
        second = build_graph(name, scale=8, seed=3)
        assert first.num_vertices == second.num_vertices
        assert first.num_edges == second.num_edges
        for a, b in zip(_edge_key(first), _edge_key(second)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_different_seed_different_graph(self, name):
        first = build_graph(name, scale=8, seed=0)
        second = build_graph(name, scale=8, seed=1)
        if first.num_edges != second.num_edges:
            return  # edge counts differ — clearly different graphs
        same = all(
            np.array_equal(a, b)
            for a, b in zip(_edge_key(first), _edge_key(second))
        )
        assert not same

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_directedness_matches_spec(self, name):
        graph = build_graph(name, scale=8)
        assert graph.directed == GAP_GRAPHS[name].directed


class TestDegreeShape:
    def test_road_degree_is_bounded(self):
        """Road analogs stay lattice-like: no vertex grows a hub."""
        graph = build_graph("road", scale=SHAPE_SCALE)
        degrees = graph.out_degrees
        assert degrees.max() <= 8
        assert degrees.max() <= 4 * max(degrees.mean(), 1.0)

    @pytest.mark.parametrize("name", HEAVY_TAIL_GRAPHS)
    def test_power_law_graphs_have_heavy_tail(self, name):
        """Twitter/Kron analogs keep a hub: max degree >> mean degree."""
        graph = build_graph(name, scale=SHAPE_SCALE)
        degrees = graph.out_degrees
        assert degrees.max() >= 8 * degrees.mean()
        # The tail is sparse: hubs above 4x mean are a small minority.
        hubs = (degrees > 4 * degrees.mean()).sum()
        assert 0 < hubs < 0.10 * graph.num_vertices

    def test_urand_degree_is_concentrated(self):
        """Erdős–Rényi analog: degrees cluster tightly around the mean."""
        graph = build_graph("urand", scale=SHAPE_SCALE)
        degrees = graph.out_degrees
        assert degrees.max() <= 4 * degrees.mean()

    def test_heavy_tail_exceeds_urand_skew(self):
        """The shape contrast the paper's analysis leans on, made explicit."""
        skew = {}
        for name in ("kron", "urand"):
            degrees = build_graph(name, scale=SHAPE_SCALE).out_degrees
            skew[name] = degrees.max() / degrees.mean()
        assert skew["kron"] > 4 * skew["urand"]


class TestScaleMonotonicity:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_vertices_and_edges_grow_with_scale(self, name):
        sizes = [build_graph(name, scale=s) for s in (7, 8, 9, 10)]
        vertex_counts = [g.num_vertices for g in sizes]
        edge_counts = [g.num_edges for g in sizes]
        assert vertex_counts == sorted(vertex_counts)
        assert len(set(vertex_counts)) == len(vertex_counts)
        assert edge_counts == sorted(edge_counts)
        assert len(set(edge_counts)) == len(edge_counts)

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_scale_reaches_target_vertex_count(self, name):
        graph = build_graph(name, scale=9)
        # Generators may drop isolated/merged vertices but must stay near 2**scale.
        assert 2**8 < graph.num_vertices <= 2**9
