"""LAGraph connected components: FastSV (Zhang, Azad & Hu, 2020).

FastSV improves Shiloach–Vishkin by hooking onto *grandparents* (labels of
labels) and combining three moves per iteration — stochastic hooking,
aggressive hooking, and shortcutting — each expressible as a semiring
product or an element-wise min.  The core product is
``mngp = min_second(A, gp)``: for every vertex, the minimum grandparent
label among its neighbors.

The paper notes that the GraphBLAS C API leaves min-accumulated assignment
with duplicate indices undefined, forcing LAGraph's CC to carry its own
implementation of that kernel; our ``Monoid.accumulate_into`` plays that
role here.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..semiring import MIN, MIN_SECOND, Matrix, Vector, mxv

__all__ = ["fastsv"]


def fastsv(graph: CSRGraph) -> np.ndarray:
    """FastSV weakly connected components; returns min-label per component."""
    n = graph.num_vertices
    matrix = Matrix.from_graph(graph)
    transpose = matrix.T if graph.directed else None

    f = np.arange(n, dtype=np.float64)  # parent labels
    gp = f.copy()                       # grandparent labels

    while True:
        counters.add_iteration()
        # mngp[v] = min grandparent label among v's neighbors (both edge
        # directions for weak connectivity on directed graphs).
        gp_vec = Vector.full(n, gp)
        mngp = mxv(matrix, gp_vec, MIN_SECOND).to_numpy(fill=np.inf)
        if transpose is not None:
            mngp = np.minimum(
                mngp, mxv(transpose, gp_vec, MIN_SECOND).to_numpy(fill=np.inf)
            )

        before = f.copy()
        # Stochastic hooking: hook the *parent* of v under mngp[v]:
        # f[f[v]] = min(f[f[v]], mngp[v]).  (min-accumulated assignment.)
        parents = before.astype(np.int64)
        finite = np.isfinite(mngp)
        MIN.accumulate_into(f, parents[finite], mngp[finite])
        # Aggressive hooking: hook v directly under the minimum as well.
        np.minimum.at(f, np.flatnonzero(finite), mngp[finite])
        # Shortcutting: f = min(f, grandparent).
        np.minimum(f, gp, out=f)
        # Recompute grandparents.
        gp = f[f.astype(np.int64)]
        if np.array_equal(before, f):
            break
    return f.astype(np.int64)
