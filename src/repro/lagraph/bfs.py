"""LAGraph BFS: direction-optimizing, written as masked semiring products.

The essential kernel is the paper's ``q'<!pi> = q' * A`` — one masked
vector-matrix product over the ``any_secondi`` semiring per level:

* **push**: ``q'<!pi> = q' * A`` expands the sparse frontier;
* **pull**: ``q<!pi> = A' * q`` lets every undiscovered vertex scan its
  in-edges for any frontier member (the masked ``mxv`` computes only
  unvisited rows);
* ``pi<q> = q`` then records the parents found (``secondi`` made the value
  of each new frontier entry the id of the vertex it was reached from).

As in SuiteSparse, the frontier is converted to a *bitmap* (dense) for pull
steps and back to a *sparse list* for push steps, and those conversions are
part of the measured time — the paper calls this out explicitly.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..semiring import ANY_SECONDI, Matrix, Vector, mxv, vxm

__all__ = ["lagraph_bfs"]

ALPHA = 15
BETA = 18


def lagraph_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Direction-optimizing BFS over GraphBLAS ops; returns parent array."""
    n = graph.num_vertices
    matrix = Matrix.from_graph(graph)
    transpose = matrix.T

    pi = Vector.from_entries(n, np.array([source]), np.array([float(source)]))
    q = Vector.from_entries(n, np.array([source]), np.array([float(source)]))
    out_degrees = graph.out_degrees
    edges_remaining = graph.num_edges

    while q.nvals:
        counters.add_round()
        frontier = q.indices()
        scout = int(out_degrees[frontier].sum())
        edges_remaining -= scout
        use_pull = scout > max(edges_remaining, 1) // ALPHA or q.nvals > n // BETA
        if use_pull:
            q.to_dense()  # bitmap conversion, timed (see module docstring)
            q = mxv(transpose, q, ANY_SECONDI, mask=pi, complement=True)
        else:
            q.to_sparse()
            q = vxm(q, matrix, ANY_SECONDI, mask=pi, complement=True)
        if q.nvals == 0:
            break
        pi.assign_vector(q)

    parents = np.full(n, -1, dtype=np.int64)
    idx, vals = pi.entries()
    parents[idx] = vals.astype(np.int64)
    return parents
