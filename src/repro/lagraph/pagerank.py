"""LAGraph PageRank: Jacobi iteration over the ``plus_second`` semiring.

Classic PageRank is ``plus_times`` against a column-normalized adjacency;
LAGraph instead divides the score vector by the out-degrees up front and
multiplies over ``plus_second`` so that only the *structure* of A is ever
read — the adjacency values are never touched (the paper highlights this
choice).  Like the GAP reference, the iteration is Jacobi: every update
reads the previous iteration's vector, and the paper notes an asynchronous
Gauss–Seidel variant is beyond what the GraphBLAS API can express.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..semiring import PLUS_SECOND, Matrix, Vector, mxv

__all__ = ["lagraph_pagerank"]


def lagraph_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
) -> np.ndarray:
    """PageRank via ``r = teleport + d * (A' plus_second (r / d_out))``."""
    n = graph.num_vertices
    transpose = Matrix.from_graph(graph).T
    out_degrees = graph.out_degrees.astype(np.float64)
    safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
    teleport = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)

    for _ in range(max_iterations):
        counters.add_iteration()
        importance = np.where(out_degrees > 0, scores / safe_degrees, 0.0)
        pulled = mxv(transpose, Vector.full(n, importance), PLUS_SECOND)
        new_scores = teleport + damping * pulled.to_numpy()
        change = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if change < tolerance:
            break
    return scores
