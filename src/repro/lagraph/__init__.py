"""LAGraph-style algorithms on the GraphBLAS engine (SuiteSparse framework).

The six GAP kernels expressed as sparse linear algebra over semirings,
following the paper's Section III-A: BFS via masked ``any_secondi``
products, SSSP via ``min_plus`` delta-stepping, FastSV connected
components, ``plus_second`` PageRank, batch Brandes BC, and the
``C<L> = L*U'`` triangle count.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import lagraph_bc
from .bfs import lagraph_bfs
from .cc import fastsv
from .pagerank import lagraph_pagerank
from .sssp import lagraph_sssp
from .tc import lagraph_tc

__all__ = [
    "SuiteSparseFramework",
    "lagraph_bfs",
    "lagraph_sssp",
    "fastsv",
    "lagraph_pagerank",
    "lagraph_bc",
    "lagraph_tc",
]


class SuiteSparseFramework(Framework):
    """SuiteSparse:GraphBLAS + LAGraph as a Framework."""

    attributes = FrameworkAttributes(
        name="suitesparse",
        full_name="SuiteSparse GraphBLAS (LAGraph)",
        framework_type="high-level library",
        graph_structure="outgoing & incoming edges w/ (opt.) hypersparsity",
        abstraction="sparse linear algebra",
        synchronization="level-synchronous",
        dependences="C11, OpenMP (original); NumPy/SciPy (this reproduction)",
        intended_users="graph/matrix domain experts",
        algorithms={
            "bfs": "Direction-optimizing (any_secondi masked products)",
            "sssp": "Delta-stepping (min_plus)",
            "cc": "FastSV",
            "pr": "Jacobi SpMV (plus_second)",
            "bc": "Brandes (batched, plus_first)",
            "tc": "C<L>=L*U' (plus_pair) + heuristic presort",
        },
        unmodelled=(
            "64-bit index requirement (vs 32-bit elsewhere)",
            "non-blocking mode / kernel fusion (also absent upstream)",
        ),
    )

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return lagraph_bfs(graph, source)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return lagraph_sssp(graph, source, delta=ctx.delta)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return lagraph_pagerank(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        return fastsv(graph)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return lagraph_bc(graph, sources)

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        return lagraph_tc(undirected, seed=ctx.seed)
