"""LAGraph SSSP: delta-stepping over the min-plus tropical semiring.

Each relaxation is ``tReq = tmasked' * A`` over ``min_plus`` — the sparse
frontier of the current bucket, carrying tentative distances, is multiplied
into the weighted adjacency.  Bucket membership is recomputed by *selecting*
from the dense distance vector, as LAGraph does: that select is an O(n)
scan per inner round, which is why the paper's GraphBLAS SSSP collapses to
0.35% of the reference on Road (thousands of near-empty buckets, each
paying full-vector work).  We reproduce that cost structure deliberately.

The paper also notes the BFS-only bitmap format is not yet available to
SSSP in SuiteSparse; accordingly this implementation keeps its frontier
sparse and its distance vector dense, with no adaptive format switching.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..semiring import MIN_PLUS, Matrix, Vector, vxm

__all__ = ["lagraph_sssp"]


def lagraph_sssp(graph: CSRGraph, source: int, delta: int = 16) -> np.ndarray:
    """Delta-stepping SSSP via min-plus products; returns distances."""
    n = graph.num_vertices
    matrix = Matrix.from_graph(graph, use_weights=True)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0

    bucket = 0
    max_bucket = 0
    while True:
        # Select the current bucket from the dense distance vector — the
        # O(n) scan described in the module docstring.
        counters.add_vertices(n)
        lo, hi = bucket * delta, (bucket + 1) * delta
        members = np.flatnonzero((dist >= lo) & (dist < hi))
        if members.size == 0:
            finite = np.isfinite(dist)
            remaining = dist[finite]
            beyond = remaining[remaining >= hi]
            if beyond.size == 0:
                break
            bucket = int(beyond.min() // delta)
            continue
        # Settle this bucket: relax until no member's distance improves.
        while members.size:
            counters.add_round()
            frontier = Vector.from_entries(n, members, dist[members])
            req = vxm(frontier, matrix, MIN_PLUS)
            idx, vals = req.entries()
            better = vals < dist[idx]
            idx, vals = idx[better], vals[better]
            np.minimum.at(dist, idx, vals)
            in_bucket = (dist[idx] >= lo) & (dist[idx] < hi)
            members = np.unique(idx[in_bucket])
        max_bucket = max(max_bucket, bucket)
        bucket += 1
    counters.note("buckets_processed", float(max_bucket + 1))
    return dist
