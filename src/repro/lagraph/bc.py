"""LAGraph betweenness centrality: batch Brandes over ``plus_first``.

LAGraph runs all four GAP roots *simultaneously*: the frontier is a dense
4-by-n block and every step is a product of that block with the adjacency
(``plus_first`` — sum the path counts of predecessor frontier entries).
The paper describes the whole algorithm as "a mere 97 lines of very
readable code"; the batching is what makes BC the GraphBLAS success story
of the study (70–92% of the reference on the large graphs).

The dense-block products dispatch to SciPy's compiled sparse-dense matmul,
our stand-in for SuiteSparse's compiled kernels.  Per-level masking keeps
the accumulation on the BFS DAG: an edge contributes only when it connects
consecutive levels, exactly as in the scalar Brandes formulation.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..semiring import Matrix

__all__ = ["lagraph_bc"]


def lagraph_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Batched Brandes from the given roots; returns accumulated scores."""
    n = graph.num_vertices
    sources = np.asarray(sources, dtype=np.int64)
    batch = sources.size
    adjacency = Matrix.from_graph(graph).to_scipy()   # A: push direction
    adjacency_t = adjacency.T.tocsr()                 # A': backward pull

    # Forward phase: levels[d] is a batch-by-n block of per-level path
    # counts (nonzero exactly at the vertices whose BFS depth is d).
    root_block = np.zeros((batch, n), dtype=np.float64)
    root_block[np.arange(batch), sources] = 1.0
    visited = root_block > 0.0
    sigma = root_block.copy()
    levels: list[np.ndarray] = [root_block]

    frontier = root_block
    while True:
        counters.add_round()
        counters.add_edges(adjacency.nnz)
        frontier = np.asarray(frontier @ adjacency)   # plus_first push
        frontier[visited] = 0.0                       # keep new vertices only
        if not frontier.any():
            break
        levels.append(frontier.copy())
        sigma += frontier
        visited |= frontier > 0.0

    # Backward phase: delta[b, v] accumulates the dependency of root b on v.
    delta = np.zeros((batch, n), dtype=np.float64)
    safe_sigma = np.where(sigma > 0.0, sigma, 1.0)
    for depth in range(len(levels) - 1, 0, -1):
        counters.add_round()
        counters.add_edges(adjacency.nnz)
        level_mask = levels[depth] > 0.0
        w = np.where(level_mask, (1.0 + delta) / safe_sigma, 0.0)
        pulled = np.asarray(w @ adjacency_t)          # t[u] = sum w[out(u)]
        prev_mask = levels[depth - 1] > 0.0
        delta[prev_mask] += (pulled * sigma)[prev_mask]

    # Brandes excludes each root from its own accumulation.
    delta[np.arange(batch), sources] = 0.0
    return delta.sum(axis=0)
