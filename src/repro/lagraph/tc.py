"""LAGraph triangle counting: ``C<L> = L * U'`` over ``plus_pair``.

The paper gives the whole method in pseudo-MATLAB::

    L = tril(A, -1);  U = triu(A, 1);  C<L> = L * U';  ntri = sum(C)

Each masked entry ``C[i,j]`` counts vertices adjacent to both ``i`` and
``j`` with the ``pair`` multiply (always 1), i.e. the wedges closing edge
``(i, j)`` — summing gives the triangle count.  A degree-sort permutation
of A is optionally applied first, decided by a sampling heuristic, exactly
as in LAGraph.  The paper notes the whole C matrix is materialized and then
reduced (kernel fusion would give ~2x; not yet available in SuiteSparse) —
our SciPy-based ``mxm_masked`` has the same materialize-then-reduce shape.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation
from ..semiring import PLUS_PAIR, Matrix, mxm_masked, reduce_matrix

__all__ = ["lagraph_tc"]

SAMPLE_SIZE = 1000
SKEW_RATIO = 2.0


def _presort_wanted(graph: CSRGraph, seed: int) -> bool:
    """Sampling heuristic for the optional degree-sort permutation."""
    rng = np.random.default_rng(seed)
    sample = graph.out_degrees[
        rng.integers(0, graph.num_vertices, size=min(SAMPLE_SIZE, graph.num_vertices))
    ]
    return float(sample.mean()) > SKEW_RATIO * max(float(np.median(sample)), 1.0)


def lagraph_tc(graph: CSRGraph, seed: int = 0) -> int:
    """Triangle count via the masked ``plus_pair`` matrix product."""
    matrix = Matrix.from_graph(graph)
    if _presort_wanted(graph, seed):
        counters.note("relabelled")
        perm = degree_order_permutation(graph, ascending=True)
        matrix = matrix.permuted(perm)
    lower = matrix.select_lower_triangle()
    upper = matrix.select_upper_triangle()
    closed = mxm_masked(lower, upper.T, PLUS_PAIR, mask=lower)
    return int(round(reduce_matrix(closed)))
