"""Concurrent-worklist analogs: the scheduling substrate of Galois.

Galois implements data-driven algorithms with scalable concurrent
worklists; the paper stresses that it uses *sparse* worklists (arrays of
active vertices) where most frameworks use dense bitvectors, and that the
same worklists enable *asynchronous* execution without round barriers.

We model a worklist as a queue of vertex *chunks* (NumPy arrays), matching
Galois' chunked work-stealing queues: operators are applied to one chunk at
a time, and the executor's draining policy (per-round vs eager) realizes
bulk-synchronous vs asynchronous semantics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["ChunkedWorklist", "OrderedByIntegerMetric"]


class ChunkedWorklist:
    """FIFO worklist of vertex chunks (Galois' dChunkedFIFO analog)."""

    def __init__(self, chunk_size: int = 4096) -> None:
        self.chunk_size = int(chunk_size)
        self._chunks: deque[np.ndarray] = deque()

    def push(self, vertices: np.ndarray) -> None:
        """Add active vertices, splitting into chunk-sized pieces."""
        vertices = np.asarray(vertices, dtype=np.int64)
        for start in range(0, vertices.size, self.chunk_size):
            piece = vertices[start: start + self.chunk_size]
            if piece.size:
                self._chunks.append(piece)

    def pop(self) -> np.ndarray | None:
        """Remove and return the oldest work, merged up to one chunk's size.

        Small pushes (a few activations each) are coalesced on pop so a
        worker always grabs a full chunk where one is available — matching
        Galois' chunked queues, where work is handed out chunk-at-a-time
        regardless of how it trickled in.
        """
        if not self._chunks:
            return None
        first = self._chunks.popleft()
        if first.size >= self.chunk_size or not self._chunks:
            return first
        pieces = [first]
        size = int(first.size)
        while self._chunks and size < self.chunk_size:
            piece = self._chunks.popleft()
            pieces.append(piece)
            size += int(piece.size)
        return np.concatenate(pieces)

    def drain_all(self) -> np.ndarray:
        """Remove everything currently queued as one array (round barrier)."""
        if not self._chunks:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(list(self._chunks))
        self._chunks.clear()
        return merged

    def __len__(self) -> int:
        return sum(chunk.size for chunk in self._chunks)

    def __bool__(self) -> bool:
        return bool(self._chunks)


class OrderedByIntegerMetric:
    """Priority worklist of chunks, bucketed by an integer metric (OBIM).

    Galois' OBIM approximates priority order cheaply: work items land in the
    bucket given by their metric and buckets are drained lowest-first, with
    no ordering inside a bucket.  Delta-stepping's buckets map directly.
    """

    def __init__(self, chunk_size: int = 4096) -> None:
        self.chunk_size = int(chunk_size)
        self._buckets: dict[int, ChunkedWorklist] = {}

    def push(self, vertices: np.ndarray, priorities: np.ndarray) -> None:
        """Add vertices, each under its integer priority."""
        vertices = np.asarray(vertices, dtype=np.int64)
        priorities = np.asarray(priorities, dtype=np.int64)
        for priority in np.unique(priorities):
            members = vertices[priorities == priority]
            bucket = self._buckets.get(int(priority))
            if bucket is None:
                bucket = ChunkedWorklist(self.chunk_size)
                self._buckets[int(priority)] = bucket
            bucket.push(members)

    def current_priority(self) -> int | None:
        """Lowest non-empty priority, or None when empty."""
        while self._buckets:
            lowest = min(self._buckets)
            if self._buckets[lowest]:
                return lowest
            del self._buckets[lowest]
        return None

    def pop_chunk(self) -> tuple[int, np.ndarray] | None:
        """Remove one chunk from the lowest bucket: (priority, vertices)."""
        priority = self.current_priority()
        if priority is None:
            return None
        chunk = self._buckets[priority].pop()
        if not self._buckets[priority]:
            del self._buckets[priority]
        return priority, chunk

    def drain_priority(self, priority: int) -> np.ndarray:
        """Drain one bucket completely (bulk-synchronous bucket step)."""
        bucket = self._buckets.pop(priority, None)
        return bucket.drain_all() if bucket else np.empty(0, dtype=np.int64)

    def __bool__(self) -> bool:
        return self.current_priority() is not None
