"""Operator-formulation executors: bulk-synchronous and asynchronous.

Galois programs are written as an *operator* applied to active vertices
(the paper's Section III-B).  The executor decides the schedule:

* ``for_each_round`` — bulk-synchronous: drain everything queued, apply the
  operator, queue the newly activated vertices for the *next* round.  One
  round == one global barrier.
* ``for_each_eager`` — asynchronous: pop chunks and apply the operator
  immediately; newly activated vertices go back into the *same* worklist
  and can be processed within what a BSP execution would call the current
  round.  No barriers — updated labels are visible to later chunks at once,
  which converges faster on high-diameter graphs (fewer redundant
  re-activations) at the cost of redundant work on low-diameter ones,
  exactly the trade-off the paper measures on Road vs Urand.

Operators are *bulk*: they receive a chunk (array) of active vertices and
return the vertices they activated.  This matches Galois' chunked execution
while keeping the Python reproduction vectorizable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import counters
from .worklists import ChunkedWorklist

__all__ = ["for_each_round", "for_each_eager"]

BulkOperator = Callable[[np.ndarray], np.ndarray]

# Async chunk budget: large enough that per-chunk dispatch overhead
# amortizes, small enough that freshly-updated labels still propagate
# within what a BSP execution would call a round.
ASYNC_CHUNK_SIZE = 1024


def for_each_round(initial: np.ndarray, operator: BulkOperator) -> int:
    """Bulk-synchronous execution; returns the number of rounds."""
    worklist = ChunkedWorklist()
    worklist.push(initial)
    rounds = 0
    while worklist:
        rounds += 1
        counters.add_round()
        active = np.unique(worklist.drain_all())
        counters.add_vertices(active.size)
        activated = operator(active)
        if activated.size:
            worklist.push(activated)
    return rounds


def for_each_eager(
    initial: np.ndarray,
    operator: BulkOperator,
    chunk_size: int = ASYNC_CHUNK_SIZE,
) -> int:
    """Asynchronous execution; returns the number of chunks processed."""
    worklist = ChunkedWorklist(chunk_size)
    worklist.push(np.asarray(initial, dtype=np.int64))
    chunks = 0
    while True:
        chunk = worklist.pop()
        if chunk is None:
            return chunks
        chunks += 1
        counters.add_vertices(chunk.size)
        activated = operator(chunk)
        if activated.size:
            worklist.push(activated)
