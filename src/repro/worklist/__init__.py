"""Galois-style runtime substrate: worklists and operator executors."""

from .executor import ASYNC_CHUNK_SIZE, for_each_eager, for_each_round
from .worklists import ChunkedWorklist, OrderedByIntegerMetric

__all__ = [
    "ASYNC_CHUNK_SIZE",
    "ChunkedWorklist",
    "OrderedByIntegerMetric",
    "for_each_eager",
    "for_each_round",
]
