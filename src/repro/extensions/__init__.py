"""Beyond-GAP extension kernels (LDBC Graphalytics coverage).

The paper's introduction compares the GAP suite with LDBC Graphalytics,
whose kernel set adds community detection by label propagation (CDLP) and
local clustering coefficient (LCC) to the shared BFS/SSSP/PR/CC core.
These extensions implement both over the same graph substrate, letting
the harness cover the union of the two benchmarks' kernels.
"""

from .cdlp import cdlp
from .lcc import lcc

__all__ = ["cdlp", "lcc"]
