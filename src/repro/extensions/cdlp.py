"""Community detection by label propagation (CDLP) — Graphalytics kernel.

The paper's introduction positions the GAP suite against LDBC
Graphalytics, whose workload adds CDLP and LCC to the shared kernels; this
extension implements both so the harness can cover the union of the two
benchmarks' kernels.

CDLP (Raghavan et al.'s label propagation for communities): every vertex
starts in its own community and repeatedly adopts the *most frequent*
label among its neighbors (ties broken toward the smallest label, per the
Graphalytics specification), for a fixed number of iterations or until no
label changes.  Unlike the connected-components label propagation, the
mode (not the min) is adopted — so the result depends on local density,
not mere reachability.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph

__all__ = ["cdlp"]


def _mode_per_vertex(
    n: int, owners: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per owner, the most frequent label (smallest on ties).

    ``owners``/``labels`` are parallel arrays of (vertex, neighbor-label)
    pairs; returns (vertices, winning labels) for owners with >= 1 pair.
    """
    if owners.size == 0:
        return owners, labels
    # Count multiplicity of each (owner, label) pair, then pick per owner
    # the pair with the highest count; ties resolve to the smaller label
    # because of the sort order.
    order = np.lexsort((labels, owners))
    owners_sorted = owners[order]
    labels_sorted = labels[order]
    boundary = np.concatenate(
        [[True], (owners_sorted[1:] != owners_sorted[:-1]) | (labels_sorted[1:] != labels_sorted[:-1])]
    )
    group_ids = np.cumsum(boundary) - 1
    pair_counts = np.bincount(group_ids)
    pair_owner = owners_sorted[boundary]
    pair_label = labels_sorted[boundary]
    # Rank pairs per owner: highest count wins; among equals the pair list
    # is already in ascending label order, so a stable sort by (-count)
    # within owner keeps the smallest label first.
    selection = np.lexsort((pair_label, -pair_counts, pair_owner))
    pair_owner = pair_owner[selection]
    pair_label = pair_label[selection]
    first = np.concatenate([[True], pair_owner[1:] != pair_owner[:-1]])
    return pair_owner[first], pair_label[first]


def cdlp(graph: CSRGraph, max_iterations: int = 10) -> np.ndarray:
    """Community labels after at most ``max_iterations`` propagation rounds.

    Directed graphs follow the Graphalytics rule: both in- and out-
    neighbors vote (an edge in either direction contributes one vote each
    way it appears).
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src, dst = graph.edge_array()
    if graph.directed:
        voters = np.concatenate([src, dst])
        owners = np.concatenate([dst, src])
    else:
        owners, voters = src, dst

    for _ in range(max_iterations):
        counters.add_iteration()
        counters.add_edges(owners.size)
        vertex_ids, winning = _mode_per_vertex(n, owners, labels[voters])
        updated = labels.copy()
        updated[vertex_ids] = winning
        if np.array_equal(updated, labels):
            break
        labels = updated
    return labels
