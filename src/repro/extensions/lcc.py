"""Local clustering coefficient (LCC) — Graphalytics kernel.

LCC(v) = (number of edges among v's neighbors) / (d(v) * (d(v) - 1))
counted on the symmetrized graph, i.e. the density of v's neighborhood.
It shares triangle counting's wedge-closure core, so the implementation
reuses the batched closure test from the TC kernels — each closed wedge
(u, v, w) contributes to the mid vertex's numerator.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph

__all__ = ["lcc"]

WEDGE_BLOCK = 1 << 17


def lcc(graph: CSRGraph) -> np.ndarray:
    """Per-vertex local clustering coefficient (0 where degree < 2)."""
    undirected = graph.to_undirected() if graph.directed else graph
    n = undirected.num_vertices
    degrees = undirected.out_degrees  # symmetric, so out == in
    src, dst = undirected.edge_array()

    # Sorted edge keys for closure testing.
    keys = src * np.int64(n) + dst  # already lexsorted by construction
    closed = np.zeros(n, dtype=np.int64)

    # For each directed pair (v, u) enumerate v's other neighbors w > u and
    # test (u, w); each unordered neighbor pair of v is then checked once,
    # and a hit means u-w are adjacent: one link inside v's neighborhood.
    positions = np.arange(src.size, dtype=np.int64)
    tail_len = undirected.indptr[src + 1] - (positions + 1)
    cost = np.concatenate([[0], np.cumsum(tail_len)])
    start = 0
    while start < src.size:
        stop = int(np.searchsorted(cost, cost[start] + WEDGE_BLOCK, side="right"))
        stop = min(max(stop, start + 1), src.size)
        sel = slice(start, stop)
        lengths = tail_len[sel]
        total = int(lengths.sum())
        if total:
            mids = np.repeat(src[sel], lengths)
            anchors = np.repeat(dst[sel], lengths)
            offsets = np.arange(total, dtype=np.int64)
            begin = np.repeat(np.cumsum(lengths) - lengths, lengths)
            flat = np.repeat(positions[sel] + 1, lengths) + (offsets - begin)
            tails = dst[flat]
            counters.add_edges(total)
            lo = np.minimum(anchors, tails)
            hi = np.maximum(anchors, tails)
            wedge_keys = lo * np.int64(n) + hi
            found = np.searchsorted(keys, wedge_keys)
            found[found == keys.size] = 0
            hit = keys[found] == wedge_keys
            np.add.at(closed, mids[hit], 1)
        start = stop

    possible = degrees.astype(np.float64) * (degrees - 1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        # Each adjacent neighbor pair was found once; the conventional
        # formula counts ordered pairs, hence the factor of two.
        coefficients = np.where(possible > 0, 2.0 * closed / possible, 0.0)
    return coefficients
