"""Binary operators, monoids, and semirings for the GraphBLAS-style engine.

GraphBLAS generalizes matrix multiplication ``C = A * B`` by replacing the
scalar multiply with any binary operator and the scalar add with any monoid
(associative, commutative, with identity).  The LAGraph algorithms in the
paper use a small set of these:

* ``any_secondi`` — BFS: "adopt any parent; the value is the parent's id";
* ``min_plus`` — SSSP's tropical semiring;
* ``plus_second`` / ``plus_times`` — PageRank's SpMV (structure-only / classic);
* ``plus_first`` — betweenness centrality's path-count accumulation;
* ``plus_pair`` — triangle counting ("multiply" is the constant 1);
* ``min_second`` — FastSV's label minimization.

Positional operators (``secondi``, ``firsti``) return an *index* of an
operand rather than a value; the engine passes operand indices alongside
values so they can be expressed uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import InvalidValueError
from ..la import config as la_config
from ..la.frontier import first_occurrence_mask

__all__ = [
    "BinaryOp",
    "Monoid",
    "Semiring",
    "ANY",
    "MIN",
    "MAX",
    "PLUS",
    "TIMES",
    "LOR",
    "FIRST",
    "SECOND",
    "PAIR",
    "FIRSTI",
    "SECONDI",
    "PLUS_OP",
    "MIN_OP",
    "TIMES_OP",
    "semiring",
    "ANY_SECONDI",
    "MIN_PLUS",
    "PLUS_TIMES",
    "PLUS_SECOND",
    "PLUS_FIRST",
    "PLUS_PAIR",
    "MIN_SECOND",
]


@dataclass(frozen=True)
class BinaryOp:
    """A multiplicative operator ``z = f(x, y)``.

    ``fn`` receives ``(x_values, y_values, x_indices, y_indices)`` so that
    positional operators (GraphBLAS ``FIRSTI``/``SECONDI``) can be expressed
    with the same interface; value-only operators ignore the index arrays.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    positional: bool = False

    def apply(
        self,
        x: np.ndarray,
        y: np.ndarray,
        ix: np.ndarray | None = None,
        iy: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply element-wise over aligned operand arrays."""
        return self.fn(x, y, ix, iy)


@dataclass(frozen=True)
class Monoid:
    """An additive monoid: associative, commutative reducer with identity.

    ``reducer`` is a NumPy ufunc (or None for ANY).  The special ANY monoid
    returns an arbitrary member of each reduction group — GraphBLAS exposes
    it so reductions can short-circuit, which LAGraph's BFS exploits to stop
    at the first parent found.
    """

    name: str
    reducer: np.ufunc | None
    identity: float

    @property
    def is_any(self) -> bool:
        return self.reducer is None

    def segment_reduce(
        self, keys: np.ndarray, values: np.ndarray, domain: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reduce ``values`` grouped by ``keys``; returns (unique_keys, reduced).

        Keys need not be sorted.  For ANY, the first occurrence per key wins
        (any member is a valid answer by definition).  ``domain`` (the key
        universe size, when the caller knows it) lets ANY use the substrate's
        sort-free first-occurrence scan instead of ``np.unique``.
        """
        if keys.size == 0:
            return keys, values
        if self.is_any:
            if domain is not None and la_config.enabled():
                mask = first_occurrence_mask(keys, domain)
                out_keys, out_vals = keys[mask], values[mask]
                order = np.argsort(out_keys)  # k log k on unique keys only
                return out_keys[order], out_vals[order]
            unique, first = np.unique(keys, return_index=True)
            return unique, values[first]
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        values_sorted = values[order]
        boundaries = np.flatnonzero(
            np.concatenate([[True], keys_sorted[1:] != keys_sorted[:-1]])
        )
        reduced = self.reducer.reduceat(values_sorted, boundaries)
        return keys_sorted[boundaries], reduced

    def accumulate_into(
        self, target: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """In-place ``target[k] = monoid(target[k], v)`` for each pair."""
        if self.is_any:
            # ANY keeps the existing value when present; defined here as
            # "first writer wins" via unique-first selection.
            unique, first = np.unique(keys, return_index=True)
            target[unique] = values[first]
            return
        self.reducer.at(target, keys, values)


@dataclass(frozen=True)
class Semiring:
    """An (add-monoid, multiply-op) pair, e.g. min-plus or plus-pair."""

    add: Monoid
    multiply: BinaryOp

    @property
    def name(self) -> str:
        return f"{self.add.name}_{self.multiply.name}"


# ---------------------------------------------------------------------------
# Standard monoids
# ---------------------------------------------------------------------------

ANY = Monoid("any", None, 0.0)
MIN = Monoid("min", np.minimum, np.inf)
MAX = Monoid("max", np.maximum, -np.inf)
PLUS = Monoid("plus", np.add, 0.0)
TIMES = Monoid("times", np.multiply, 1.0)
LOR = Monoid("lor", np.logical_or, False)


# ---------------------------------------------------------------------------
# Standard multiplicative operators
# ---------------------------------------------------------------------------

def _first(x, y, ix, iy):
    del y, ix, iy
    return x


def _second(x, y, ix, iy):
    del x, ix, iy
    return y


def _pair(x, y, ix, iy):
    del y, ix, iy
    return np.ones_like(x, dtype=np.int64) if hasattr(x, "dtype") else 1


def _times(x, y, ix, iy):
    del ix, iy
    return x * y


def _plus(x, y, ix, iy):
    del ix, iy
    return x + y


def _min(x, y, ix, iy):
    del ix, iy
    return np.minimum(x, y)


def _firsti(x, y, ix, iy):
    del x, y, iy
    if ix is None:
        raise InvalidValueError("FIRSTI requires first-operand indices")
    return ix


def _secondi(x, y, ix, iy):
    del x, y, ix
    if iy is None:
        raise InvalidValueError("SECONDI requires second-operand indices")
    return iy


FIRST = BinaryOp("first", _first)
SECOND = BinaryOp("second", _second)
PAIR = BinaryOp("pair", _pair)
TIMES_OP = BinaryOp("times", _times)
PLUS_OP = BinaryOp("plus", _plus)
MIN_OP = BinaryOp("min", _min)
FIRSTI = BinaryOp("firsti", _firsti, positional=True)
SECONDI = BinaryOp("secondi", _secondi, positional=True)


def semiring(add: Monoid, multiply: BinaryOp) -> Semiring:
    """Construct a semiring from a monoid and a multiplicative op."""
    return Semiring(add, multiply)


# The semirings named in the paper's Section III-A.
ANY_SECONDI = semiring(ANY, SECONDI)
MIN_PLUS = semiring(MIN, PLUS_OP)
PLUS_TIMES = semiring(PLUS, TIMES_OP)
PLUS_SECOND = semiring(PLUS, SECOND)
PLUS_FIRST = semiring(PLUS, FIRST)
PLUS_PAIR = semiring(PLUS, PAIR)
MIN_SECOND = semiring(MIN, SECOND)
