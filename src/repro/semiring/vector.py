"""Sparse/dense vectors with masks for the GraphBLAS-style engine.

SuiteSparse:GraphBLAS internally switches a vector between a sparse index
list, a bitmap, and a full array; the paper notes this explicitly — the
LAGraph BFS converts the frontier to a bitmap for pull steps and to a
sparse list for push steps, *and that conversion time is part of the
measured runtime*.  This Vector mirrors that: storage is either ``sparse``
(sorted indices + values) or ``dense`` (full value array + presence bitmap),
conversions are explicit, and each conversion reports to the work counters.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..errors import DimensionMismatchError, InvalidValueError
from .ops import Monoid

__all__ = ["Vector"]


class Vector:
    """A GraphBLAS-style vector of dimension ``n``.

    Entries are "present" or structurally absent; absent is not zero.
    """

    __slots__ = ("n", "mode", "idx", "vals", "present")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self.mode = "sparse"
        self.idx = np.empty(0, dtype=np.int64)
        self.vals = np.empty(0, dtype=np.float64)
        self.present: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_entries(cls, n: int, idx: np.ndarray, vals: np.ndarray) -> "Vector":
        """Sparse vector from (indices, values); indices must be unique."""
        v = cls(n)
        idx = np.asarray(idx, dtype=np.int64)
        vals = np.asarray(vals)
        if idx.shape != vals.shape:
            raise DimensionMismatchError("indices and values differ in length")
        order = np.argsort(idx)
        v.idx = idx[order]
        v.vals = vals[order]
        if v.idx.size > 1 and (v.idx[1:] == v.idx[:-1]).any():
            raise InvalidValueError("duplicate indices in vector build")
        return v

    @classmethod
    def full(cls, n: int, value: float | np.ndarray) -> "Vector":
        """Dense vector with every position present."""
        v = cls(n)
        v.mode = "dense"
        v.vals = np.full(n, value, dtype=np.float64) if np.isscalar(value) else np.asarray(value).copy()
        v.present = np.ones(n, dtype=bool)
        v.idx = np.empty(0, dtype=np.int64)
        return v

    @classmethod
    def empty(cls, n: int) -> "Vector":
        return cls(n)

    def dup(self) -> "Vector":
        """Deep copy."""
        v = Vector(self.n)
        v.mode = self.mode
        v.idx = self.idx.copy()
        v.vals = self.vals.copy()
        v.present = None if self.present is None else self.present.copy()
        return v

    # ------------------------------------------------------------------
    # Storage-format control (timed, as in SuiteSparse)
    # ------------------------------------------------------------------

    def to_sparse(self) -> "Vector":
        """Convert to sparse storage in place; returns self."""
        if self.mode == "sparse":
            return self
        counters.note("format_conversions")
        self.idx = np.flatnonzero(self.present)
        self.vals = self.vals[self.idx]
        self.present = None
        self.mode = "sparse"
        return self

    def to_dense(self, fill: float = 0.0) -> "Vector":
        """Convert to dense (bitmap) storage in place; returns self."""
        if self.mode == "dense":
            return self
        counters.note("format_conversions")
        dense_vals = np.full(self.n, fill, dtype=np.float64)
        present = np.zeros(self.n, dtype=bool)
        if self.idx.size:
            dense_vals[self.idx] = self.vals
            present[self.idx] = True
        self.vals = dense_vals
        self.present = present
        self.idx = np.empty(0, dtype=np.int64)
        self.mode = "dense"
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nvals(self) -> int:
        """Number of present entries."""
        if self.mode == "sparse":
            return int(self.idx.size)
        return int(self.present.sum())

    def indices(self) -> np.ndarray:
        """Sorted indices of present entries."""
        if self.mode == "sparse":
            return self.idx
        return np.flatnonzero(self.present)

    def values_at(self, idx: np.ndarray) -> np.ndarray:
        """Values at the given indices (caller guarantees presence)."""
        if self.mode == "dense":
            return self.vals[idx]
        position = np.searchsorted(self.idx, idx)
        return self.vals[position]

    def entries(self) -> tuple[np.ndarray, np.ndarray]:
        """(indices, values) of all present entries."""
        if self.mode == "sparse":
            return self.idx, self.vals
        idx = np.flatnonzero(self.present)
        return idx, self.vals[idx]

    def contains(self, idx: np.ndarray) -> np.ndarray:
        """Boolean presence test for an index array."""
        if self.mode == "dense":
            return self.present[idx]
        position = np.searchsorted(self.idx, idx)
        position_clipped = np.minimum(position, max(self.idx.size - 1, 0))
        if self.idx.size == 0:
            return np.zeros(idx.shape, dtype=bool)
        return self.idx[position_clipped] == idx

    def to_numpy(self, fill: float = 0.0) -> np.ndarray:
        """Materialize as a plain array with ``fill`` at absent positions."""
        out = np.full(self.n, fill, dtype=np.float64)
        idx, vals = self.entries()
        out[idx] = vals
        return out

    # ------------------------------------------------------------------
    # Element-wise operations
    # ------------------------------------------------------------------

    def reduce(self, monoid: Monoid) -> float:
        """Reduce all present values with the monoid."""
        _, vals = self.entries()
        if vals.size == 0:
            return monoid.identity
        if monoid.is_any:
            return float(vals[0])
        return float(monoid.reducer.reduce(vals))

    def apply(self, fn) -> "Vector":
        """New vector with ``fn`` applied to every present value."""
        idx, vals = self.entries()
        return Vector.from_entries(self.n, idx.copy(), fn(vals))

    def select(self, keep) -> "Vector":
        """New vector keeping entries where ``keep(values, indices)`` holds."""
        idx, vals = self.entries()
        mask = keep(vals, idx)
        return Vector.from_entries(self.n, idx[mask], vals[mask])

    def assign_scalar(
        self,
        value: float,
        mask: "Vector | None" = None,
        complement: bool = False,
    ) -> None:
        """``w<mask> = value`` over the mask's structural support."""
        targets = _mask_targets(self.n, mask, complement)
        self._assign_at(targets, np.full(targets.size, value, dtype=np.float64))

    def assign_vector(
        self,
        u: "Vector",
        mask: "Vector | None" = None,
        complement: bool = False,
    ) -> None:
        """``w<mask> = u``: copy u's entries where the mask allows."""
        if u.n != self.n:
            raise DimensionMismatchError("assign dimensions differ")
        idx, vals = u.entries()
        if mask is not None:
            allowed = mask.contains(idx)
            if complement:
                allowed = ~allowed
            idx, vals = idx[allowed], vals[allowed]
        self._assign_at(idx, vals)

    def _assign_at(self, idx: np.ndarray, vals: np.ndarray) -> None:
        """Insert-or-overwrite entries at ``idx``."""
        if idx.size == 0:
            return
        if self.mode == "dense":
            self.vals[idx] = vals
            self.present[idx] = True
            return
        merged_idx = np.concatenate([self.idx, idx])
        merged_vals = np.concatenate([self.vals.astype(np.float64, copy=False), vals])
        # Later entries win: keep the *last* occurrence of each index.
        unique, last = np.unique(merged_idx[::-1], return_index=True)
        take = merged_idx.size - 1 - last
        self.idx = unique
        self.vals = merged_vals[take]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector(n={self.n}, nvals={self.nvals}, mode={self.mode})"


def _mask_targets(n: int, mask: "Vector | None", complement: bool) -> np.ndarray:
    """Indices a masked assignment writes to."""
    if mask is None:
        return np.arange(n, dtype=np.int64)
    support = mask.indices()
    if not complement:
        return support
    allowed = np.ones(n, dtype=bool)
    allowed[support] = False
    return np.flatnonzero(allowed)
