"""Core GraphBLAS operations: masked vxm / mxv / mxm / reduce.

These are the bulk operations the LAGraph algorithms are written in:

* ``vxm`` — ``w' = u' * A``: the **push** step (expand the support of ``u``
  across the rows of ``A``), naturally sparse-friendly;
* ``mxv`` — ``w = A * u``: the **pull** step (per *output* row, combine the
  row of ``A`` with ``u``); with a mask, only masked rows are computed at
  all — the masked-assignment trick (``q'<!pi> = q'*A``) the paper's
  Section III-A describes as capturing the inner-loop ``if`` of graph
  algorithms in one bulk expression;
* ``mxm_masked`` — masked matrix multiply, used by triangle counting
  (``C<L> = L*U'``); dispatches to SciPy's compiled matmul as the stand-in
  for SuiteSparse's compiled kernels;
* ``reduce_matrix`` — reduction of all stored values to a scalar.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core import counters
from ..errors import DimensionMismatchError
from ..la.gather import flat_edge_index
from .matrix import Matrix
from .ops import PLUS, Semiring
from .vector import Vector

__all__ = ["vxm", "mxv", "mxm_masked", "reduce_matrix", "reduce_rows"]


def _expand_rows(
    matrix: Matrix, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the CSR entries of ``rows``: (row_of_entry, col, value)."""
    row_ids, flat, total = flat_edge_index(matrix.indptr, rows)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    values = matrix.value_array()[flat] if not matrix.iso else np.ones(total)
    return row_ids, matrix.indices[flat], values


def vxm(
    u: Vector,
    matrix: Matrix,
    sr: Semiring,
    mask: Vector | None = None,
    complement: bool = False,
) -> Vector:
    """Push step ``w' = u' * A`` under an optional (complemented) mask."""
    if u.n != matrix.nrows:
        raise DimensionMismatchError("vxm: u length must equal nrows")
    u_idx, u_vals = u.entries()
    rows, cols, a_vals = _expand_rows(matrix, u_idx)
    counters.add_edges(cols.size)
    if cols.size == 0:
        return Vector.empty(matrix.ncols)
    # Align u's values with the expanded entries.
    x = u.values_at(rows)
    z = sr.multiply.apply(x, a_vals, ix=rows, iy=rows)
    if mask is not None:
        allowed = mask.contains(cols)
        if complement:
            allowed = ~allowed
        cols, z = cols[allowed], np.asarray(z)[allowed]
        if cols.size == 0:
            return Vector.empty(matrix.ncols)
    out_idx, out_vals = sr.add.segment_reduce(
        cols, np.asarray(z, dtype=np.float64), domain=matrix.ncols
    )
    return Vector.from_entries(matrix.ncols, out_idx, out_vals)


def mxv(
    matrix: Matrix,
    u: Vector,
    sr: Semiring,
    mask: Vector | None = None,
    complement: bool = False,
) -> Vector:
    """Pull step ``w = A * u`` under an optional (complemented) mask.

    With a mask, only masked output rows are computed — the performance
    semantics that make ``pi<!visited> = A' * q`` a genuine pull BFS.
    """
    if u.n != matrix.ncols:
        raise DimensionMismatchError("mxv: u length must equal ncols")
    if mask is None:
        rows = np.arange(matrix.nrows, dtype=np.int64)
    else:
        support = mask.indices()
        if complement:
            allowed = np.ones(matrix.nrows, dtype=bool)
            allowed[support] = False
            rows = np.flatnonzero(allowed)
        else:
            rows = support

    # Fast path: plus-monoid over a full vector (PageRank's SpMV) — segment
    # sums over the CSR slices, no per-entry filtering needed.
    if (
        sr.add is PLUS
        and mask is None
        and u.mode == "dense"
        and u.present is not None
        and bool(u.present.all())
    ):
        counters.add_edges(matrix.nvals)
        x = matrix.value_array()
        y = u.vals[matrix.indices]
        z = sr.multiply.apply(x, y, ix=None, iy=matrix.indices)
        prefix = np.concatenate([[0.0], np.cumsum(np.asarray(z, dtype=np.float64))])
        sums = prefix[matrix.indptr[1:]] - prefix[matrix.indptr[:-1]]
        return Vector.full(matrix.nrows, sums)

    row_ids, cols, a_vals = _expand_rows(matrix, rows)
    counters.add_edges(cols.size)
    if cols.size == 0:
        return Vector.empty(matrix.nrows)
    hit = u.contains(cols)
    row_ids, cols, a_vals = row_ids[hit], cols[hit], a_vals[hit]
    if cols.size == 0:
        return Vector.empty(matrix.nrows)
    y = u.values_at(cols)
    z = sr.multiply.apply(a_vals, y, ix=row_ids, iy=cols)
    out_idx, out_vals = sr.add.segment_reduce(
        row_ids, np.asarray(z, dtype=np.float64), domain=matrix.nrows
    )
    return Vector.from_entries(matrix.nrows, out_idx, out_vals)


def mxm_masked(
    a: Matrix,
    b: Matrix,
    sr: Semiring,
    mask: Matrix,
) -> Matrix:
    """Masked matrix multiply ``C<M> = A * B`` for plus-based semirings.

    Dispatches to SciPy's compiled sparse matmul — our stand-in for
    SuiteSparse's compiled kernels — then restricts the result to the mask
    pattern.  ``plus_pair`` (triangle counting) multiplies the *patterns*.
    """
    if a.ncols != b.nrows:
        raise DimensionMismatchError("mxm: inner dimensions differ")
    if sr.add is not PLUS:
        raise DimensionMismatchError("mxm_masked supports plus-monoids only")
    counters.add_edges(a.nvals + b.nvals)
    if sr.multiply.name == "pair":
        left = sp.csr_matrix(
            (np.ones(a.nvals), a.indices, a.indptr), shape=(a.nrows, a.ncols)
        )
        right = sp.csr_matrix(
            (np.ones(b.nvals), b.indices, b.indptr), shape=(b.nrows, b.ncols)
        )
    else:
        left, right = a.to_scipy(), b.to_scipy()
    product = left @ right
    mask_pattern = sp.csr_matrix(
        (np.ones(mask.nvals), mask.indices, mask.indptr),
        shape=(mask.nrows, mask.ncols),
    )
    masked = product.multiply(mask_pattern)
    return Matrix.from_scipy(masked)


def reduce_matrix(matrix: Matrix, monoid=PLUS) -> float:
    """Reduce every stored value of the matrix to a scalar."""
    values = matrix.value_array()
    if values.size == 0:
        return monoid.identity
    if monoid.is_any:
        return float(values[0])
    return float(monoid.reducer.reduce(values))


def reduce_rows(matrix: Matrix, monoid=PLUS) -> Vector:
    """Row-wise reduction ``w[i] = monoid over row i`` (GrB_Matrix_reduce).

    Rows with no stored entries are structurally absent in the result,
    per GraphBLAS semantics (absent, not identity).
    """
    degrees = matrix.row_degrees()
    occupied = np.flatnonzero(degrees > 0)
    if occupied.size == 0:
        return Vector.empty(matrix.nrows)
    values = matrix.value_array()
    if monoid.is_any:
        reduced = values[matrix.indptr[occupied]]
    elif monoid.reducer is np.add:
        prefix = np.concatenate([[0.0], np.cumsum(values.astype(np.float64))])
        reduced = (prefix[matrix.indptr[1:]] - prefix[matrix.indptr[:-1]])[occupied]
    else:
        reduced = monoid.reducer.reduceat(values, matrix.indptr[occupied])
    return Vector.from_entries(matrix.nrows, occupied, reduced)
