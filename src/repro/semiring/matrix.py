"""Sparse matrices (CSR + cached transpose) for the GraphBLAS-style engine.

Like SuiteSparse, a Matrix may be *iso-valued* (pattern-only with an
implicit value of 1) — GraphBLAS exploits this for algorithms such as
LAGraph's PageRank that only touch the structure of the adjacency matrix.
The matrix keeps its transpose cached, mirroring the GAP convention that
both orientations of the graph are available without timed conversion.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import DimensionMismatchError
from ..graphs import CSRGraph

__all__ = ["Matrix"]


class Matrix:
    """A GraphBLAS-style sparse matrix in CSR form."""

    __slots__ = ("nrows", "ncols", "indptr", "indices", "values", "_transpose", "_scipy")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray | None = None,
    ) -> None:
        if indptr.shape != (nrows + 1,):
            raise DimensionMismatchError("indptr length must be nrows + 1")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = indptr
        self.indices = indices
        self.values = values  # None => iso-valued pattern matrix (value 1)
        self._transpose: "Matrix | None" = None
        self._scipy: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: CSRGraph, use_weights: bool = False) -> "Matrix":
        """Adjacency matrix of a graph; A[u, v] = 1 (or weight) iff u->v.

        The transpose is pre-linked from the graph's in-adjacency, so — as
        in the GAP setup — no transposition is ever timed.
        """
        values = graph.weights if (use_weights and graph.weights is not None) else None
        matrix = cls(
            graph.num_vertices,
            graph.num_vertices,
            graph.indptr,
            graph.indices,
            None if values is None else values.astype(np.float64),
        )
        in_values = (
            None
            if values is None
            else (graph.in_weights.astype(np.float64) if graph.in_weights is not None else None)
        )
        transpose = cls(
            graph.num_vertices,
            graph.num_vertices,
            graph.in_indptr,
            graph.in_indices,
            in_values,
        )
        matrix._transpose = transpose
        transpose._transpose = matrix
        return matrix

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "Matrix":
        """Wrap a SciPy sparse matrix (converted to CSR)."""
        csr = matrix.tocsr()
        return cls(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float64),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    @property
    def iso(self) -> bool:
        """Whether the matrix is pattern-only (implicit value 1)."""
        return self.values is None

    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i``."""
        return self.indices[self.indptr[i]: self.indptr[i + 1]]

    def row_values(self, i: int) -> np.ndarray:
        """Values of row ``i`` (ones when iso)."""
        if self.values is None:
            return np.ones(self.indptr[i + 1] - self.indptr[i])
        return self.values[self.indptr[i]: self.indptr[i + 1]]

    def row_degrees(self) -> np.ndarray:
        """Entries per row."""
        return np.diff(self.indptr)

    def value_array(self) -> np.ndarray:
        """Values aligned with ``indices`` (ones when iso)."""
        if self.values is None:
            return np.ones(self.indices.size, dtype=np.float64)
        return self.values

    @property
    def T(self) -> "Matrix":
        """Transpose (computed once and cached)."""
        if self._transpose is None:
            csc = self.to_scipy().tocsc()
            transpose = Matrix(
                self.ncols,
                self.nrows,
                csc.indptr.astype(np.int64),
                csc.indices.astype(np.int64),
                None if self.iso else csc.data.astype(np.float64),
            )
            transpose._transpose = self
            self._transpose = transpose
        return self._transpose

    def to_scipy(self) -> sp.csr_matrix:
        """SciPy view (values of 1 when iso); cached."""
        if self._scipy is None:
            self._scipy = sp.csr_matrix(
                (self.value_array(), self.indices, self.indptr),
                shape=(self.nrows, self.ncols),
            )
        return self._scipy

    def select_lower_triangle(self) -> "Matrix":
        """Strictly-lower-triangular part, ``tril(A, -1)`` (pattern kept iso)."""
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        keep = self.indices < rows
        return _from_coo(self.nrows, self.ncols, rows[keep], self.indices[keep],
                         None if self.iso else self.values[keep])

    def select_upper_triangle(self) -> "Matrix":
        """Strictly-upper-triangular part, ``triu(A, 1)``."""
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        keep = self.indices > rows
        return _from_coo(self.nrows, self.ncols, rows[keep], self.indices[keep],
                         None if self.iso else self.values[keep])

    def permuted(self, perm: np.ndarray) -> "Matrix":
        """Symmetric permutation P A P' (used by TC's heuristic presort)."""
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        return _from_coo(
            self.nrows, self.ncols, perm[rows], perm[self.indices],
            None if self.iso else self.values.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        iso = " iso" if self.iso else ""
        return f"Matrix({self.nrows}x{self.ncols}, nvals={self.nvals}{iso})"


def _from_coo(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray | None,
) -> Matrix:
    """Build a Matrix from COO triples (sorted into CSR)."""
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    if values is not None:
        values = values[order]
    counts = np.bincount(rows, minlength=nrows)
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return Matrix(nrows, ncols, indptr, cols.astype(np.int64), values)
