"""Element-wise GraphBLAS operations: eWiseAdd, eWiseMult, extract, apply.

These complete the engine's operation set per the GraphBLAS C API the
paper's Section III-A describes:

* ``ewise_add(u, v, op)`` — union semantics: entries present in either
  operand appear in the result; where both are present they are combined
  with ``op`` (the "add" in the name refers to the *structure*, not the
  operator — GraphBLAS's famously confusing but standard naming);
* ``ewise_mult(u, v, op)`` — intersection semantics: only entries present
  in both operands survive;
* ``extract(u, indices)`` — subvector selection;
* ``apply_masked(u, fn, mask)`` — unary apply restricted to a mask.

All respect structural sparsity: absent is absent, never zero.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import DimensionMismatchError
from .ops import BinaryOp
from .vector import Vector

__all__ = ["ewise_add", "ewise_mult", "extract", "apply_masked"]


def ewise_add(u: Vector, v: Vector, op: BinaryOp) -> Vector:
    """Union combine: ``w[i] = op(u[i], v[i])`` where both, else the one present."""
    if u.n != v.n:
        raise DimensionMismatchError("ewise_add: dimensions differ")
    u_idx, u_vals = u.entries()
    v_idx, v_vals = v.entries()
    common, u_pos, v_pos = np.intersect1d(
        u_idx, v_idx, assume_unique=True, return_indices=True
    )
    combined = (
        np.asarray(op.apply(u_vals[u_pos], v_vals[v_pos], ix=common, iy=common))
        if common.size
        else np.empty(0)
    )
    only_u = np.setdiff1d(u_idx, common, assume_unique=True)
    only_v = np.setdiff1d(v_idx, common, assume_unique=True)
    out_idx = np.concatenate([common, only_u, only_v])
    out_vals = np.concatenate(
        [
            combined,
            u.values_at(only_u) if only_u.size else np.empty(0),
            v.values_at(only_v) if only_v.size else np.empty(0),
        ]
    )
    return Vector.from_entries(u.n, out_idx, out_vals)


def ewise_mult(u: Vector, v: Vector, op: BinaryOp) -> Vector:
    """Intersection combine: entries present in both operands only."""
    if u.n != v.n:
        raise DimensionMismatchError("ewise_mult: dimensions differ")
    u_idx, u_vals = u.entries()
    v_idx, v_vals = v.entries()
    common, u_pos, v_pos = np.intersect1d(
        u_idx, v_idx, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return Vector.empty(u.n)
    combined = np.asarray(op.apply(u_vals[u_pos], v_vals[v_pos], ix=common, iy=common))
    return Vector.from_entries(u.n, common, combined)


def extract(u: Vector, indices: np.ndarray) -> Vector:
    """Subvector: ``w[k] = u[indices[k]]`` for present entries.

    The result has dimension ``len(indices)``; absent source positions
    stay absent in the result (GraphBLAS ``GrB_Vector_extract``).
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= u.n):
        raise DimensionMismatchError("extract: index out of range")
    present = u.contains(indices)
    where = np.flatnonzero(present)
    values = u.values_at(indices[where]) if where.size else np.empty(0)
    return Vector.from_entries(indices.size, where, values)


def apply_masked(
    u: Vector,
    fn: Callable[[np.ndarray], np.ndarray],
    mask: Vector,
    complement: bool = False,
) -> Vector:
    """``w<mask> = fn(u)``: unary apply over the mask's structural support."""
    if u.n != mask.n:
        raise DimensionMismatchError("apply_masked: dimensions differ")
    idx, vals = u.entries()
    allowed = mask.contains(idx)
    if complement:
        allowed = ~allowed
    return Vector.from_entries(u.n, idx[allowed], fn(vals[allowed]))
