"""GraphBLAS-style sparse linear algebra over semirings.

This package is the reproduction's analog of SuiteSparse:GraphBLAS: typed
sparse vectors/matrices, masked assignment, and matrix products generalized
over semirings.  The LAGraph-style graph algorithms built on top live in
``repro.lagraph``; this layer knows nothing about graphs.
"""

from .elementwise import apply_masked, ewise_add, ewise_mult, extract
from .matrix import Matrix
from .operations import mxm_masked, mxv, reduce_matrix, reduce_rows, vxm
from .ops import (
    ANY,
    ANY_SECONDI,
    FIRST,
    FIRSTI,
    LOR,
    MAX,
    MIN,
    MIN_OP,
    MIN_PLUS,
    MIN_SECOND,
    PAIR,
    PLUS,
    PLUS_FIRST,
    PLUS_OP,
    PLUS_PAIR,
    PLUS_SECOND,
    PLUS_TIMES,
    SECOND,
    SECONDI,
    TIMES,
    TIMES_OP,
    BinaryOp,
    Monoid,
    Semiring,
    semiring,
)
from .vector import Vector

__all__ = [
    "Matrix",
    "Vector",
    "apply_masked",
    "ewise_add",
    "ewise_mult",
    "extract",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "semiring",
    "vxm",
    "mxv",
    "mxm_masked",
    "reduce_matrix",
    "reduce_rows",
    "ANY",
    "MIN",
    "MAX",
    "PLUS",
    "TIMES",
    "LOR",
    "FIRST",
    "SECOND",
    "PAIR",
    "FIRSTI",
    "SECONDI",
    "PLUS_OP",
    "MIN_OP",
    "TIMES_OP",
    "ANY_SECONDI",
    "MIN_PLUS",
    "PLUS_TIMES",
    "PLUS_SECOND",
    "PLUS_FIRST",
    "PLUS_PAIR",
    "MIN_SECOND",
]
