"""Registry of the six evaluated frameworks.

Frameworks are constructed lazily on first request so importing the
registry does not pull in every substrate.  Names follow the paper:
``gap``, ``suitesparse``, ``galois``, ``nwgraph``, ``graphit``, ``gkc``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownFrameworkError
from .base import Framework

__all__ = [
    "EXTENDED_FRAMEWORK_NAMES",
    "FRAMEWORK_NAMES",
    "all_frameworks",
    "attributes_table",
    "get",
]


def _load_gap() -> Framework:
    from ..gapbs import GAPReference

    return GAPReference()


def _load_suitesparse() -> Framework:
    from ..lagraph import SuiteSparseFramework

    return SuiteSparseFramework()


def _load_galois() -> Framework:
    from ..galois import GaloisFramework

    return GaloisFramework()


def _load_nwgraph() -> Framework:
    from ..nwgraph import NWGraphFramework

    return NWGraphFramework()


def _load_graphit() -> Framework:
    from ..graphit import GraphItFramework

    return GraphItFramework()


def _load_gkc() -> Framework:
    from ..gkc import GKCFramework

    return GKCFramework()


def _load_ligra() -> Framework:
    from ..ligra import LigraFramework

    return LigraFramework()


_LOADERS: dict[str, Callable[[], Framework]] = {
    "gap": _load_gap,
    "suitesparse": _load_suitesparse,
    "galois": _load_galois,
    "nwgraph": _load_nwgraph,
    "graphit": _load_graphit,
    "gkc": _load_gkc,
    # Extended frameworks: usable everywhere, excluded from the paper's
    # six-framework tables and the paper-data comparison.
    "ligra": _load_ligra,
}

#: The paper's six frameworks, in its presentation order.
FRAMEWORK_NAMES: tuple[str, ...] = (
    "gap",
    "suitesparse",
    "galois",
    "nwgraph",
    "graphit",
    "gkc",
)

#: Everything the registry can build, including post-paper extensions.
EXTENDED_FRAMEWORK_NAMES: tuple[str, ...] = tuple(_LOADERS)

_instances: dict[str, Framework] = {}


def get(name: str) -> Framework:
    """Return the (cached) framework instance for ``name``."""
    key = name.lower()
    if key not in _LOADERS:
        raise UnknownFrameworkError(
            f"unknown framework {name!r}; expected one of {EXTENDED_FRAMEWORK_NAMES}"
        )
    if key not in _instances:
        _instances[key] = _LOADERS[key]()
    return _instances[key]


def all_frameworks() -> dict[str, Framework]:
    """All six frameworks, keyed by name, in the paper's order."""
    return {name: get(name) for name in FRAMEWORK_NAMES}


def attributes_table() -> list[dict[str, str]]:
    """Rows of Table II (one per framework)."""
    rows = []
    for name in FRAMEWORK_NAMES:
        attrs = get(name).attributes
        rows.append(
            {
                "Framework": attrs.full_name,
                "Type": attrs.framework_type,
                "Internal Graph Data Structure": attrs.graph_structure,
                "Programming Abstraction": attrs.abstraction,
                "Execution Synchronization": attrs.synchronization,
                "Dependences": attrs.dependences,
                "Intended Users": attrs.intended_users,
            }
        )
    return rows
