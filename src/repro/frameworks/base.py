"""Common interface implemented by all six evaluated frameworks.

The GAP benchmark specifies six graph *problems* and lets each framework
choose its own algorithms (Table III).  This module defines the problem
interface — one method per kernel with GAP's output semantics — plus the
metadata records behind Tables II and III, and the Baseline/Optimized run
modes of Section IV.

Output semantics (shared by every framework, checked by ``repro.core.verify``):

* ``bfs`` returns a parent array: ``parent[source] == source``, unreachable
  vertices get ``-1`` (GAP tracks parents, not depths).
* ``sssp`` returns float64 distances; unreachable vertices get ``inf``.
* ``pagerank`` returns float64 scores summing to ~1, converged until the
  L1 change per iteration falls below the tolerance.
* ``connected_components`` returns int64 labels; two vertices share a label
  iff they are weakly connected.
* ``betweenness`` returns float64 accumulated Brandes dependencies over the
  given source vertices (GAP approximates BC with 4 roots per trial).
* ``triangle_count`` returns the number of triangles, each counted once.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

import numpy as np

from ..graphs import CSRGraph

__all__ = [
    "Framework",
    "FrameworkAttributes",
    "KERNELS",
    "Mode",
    "RunContext",
]

# Kernel names in the paper's presentation order.
KERNELS: tuple[str, ...] = ("bfs", "sssp", "cc", "pr", "bc", "tc")


class Mode(enum.Enum):
    """The two rule sets of Section IV.

    BASELINE forbids per-graph hand tuning (run-time heuristics only);
    OPTIMIZED allows tuning for known graph characteristics, with tuning
    time untimed.
    """

    BASELINE = "baseline"
    OPTIMIZED = "optimized"


@dataclass(frozen=True)
class RunContext:
    """Per-run information handed to a framework kernel.

    Attributes:
        mode: Baseline or Optimized rule set.
        graph_name: Corpus name of the input.  Under BASELINE rules a
            framework must ignore it (except for SSSP's delta, which GAP
            explicitly allows tuning per graph); under OPTIMIZED it may
            select algorithms/schedules per graph, as the paper's teams did.
        delta: SSSP delta-stepping bucket width for this graph.
        seed: Seed for any randomized heuristics (e.g. Afforest sampling).
    """

    mode: Mode = Mode.BASELINE
    graph_name: str = ""
    delta: int = 16
    seed: int = 0

    @property
    def optimized(self) -> bool:
        return self.mode is Mode.OPTIMIZED


@dataclass(frozen=True)
class FrameworkAttributes:
    """Static taxonomy of a framework — one column of Table II.

    ``algorithms`` maps kernel name to the Table III algorithm description.
    ``unmodelled`` lists performance techniques of the real system that a
    pure-Python reproduction cannot express (SIMD, NUMA, ...); they are
    reported, not silently dropped.
    """

    name: str
    full_name: str
    framework_type: str
    graph_structure: str
    abstraction: str
    synchronization: str
    dependences: str
    intended_users: str
    algorithms: dict[str, str] = field(default_factory=dict)
    unmodelled: tuple[str, ...] = ()


class Framework(abc.ABC):
    """Abstract base for the six evaluated frameworks."""

    #: Static Table II / Table III metadata; subclasses must set this.
    attributes: FrameworkAttributes

    @property
    def name(self) -> str:
        return self.attributes.name

    # ------------------------------------------------------------------
    # The six GAP kernels
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        """Breadth-first search from ``source``; returns the parent array."""

    @abc.abstractmethod
    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        """Single-source shortest paths; returns float64 distances."""

    @abc.abstractmethod
    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        """PageRank scores, iterated until the L1 residual < tolerance."""

    @abc.abstractmethod
    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        """Weakly connected component labels."""

    @abc.abstractmethod
    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        """Approximate betweenness centrality from the given roots."""

    @abc.abstractmethod
    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        """Total number of triangles (input treated as undirected)."""

    # ------------------------------------------------------------------
    # Untimed preparation hook
    # ------------------------------------------------------------------

    def prepare(self, kernel: str, graph: CSRGraph, ctx: RunContext) -> CSRGraph:
        """Untimed per-kernel preprocessing allowed by the rule set.

        The harness calls this *outside* the timed region.  The default is a
        no-op; frameworks override it where the paper says preprocessing was
        excluded (e.g. Galois' Optimized TC excludes graph relabeling time).
        Baseline rules forbid such exclusions, so overrides must check
        ``ctx.optimized``.
        """
        del kernel, ctx
        return graph

    # ------------------------------------------------------------------
    # Dispatch helper used by the harness
    # ------------------------------------------------------------------

    def run_kernel(
        self,
        kernel: str,
        graph: CSRGraph,
        ctx: RunContext,
        source: int | None = None,
        sources: np.ndarray | None = None,
        pr_tolerance: float | None = None,
    ):
        """Invoke one kernel by GAP name; the harness's single entry point."""
        if kernel == "bfs":
            return self.bfs(graph, int(source), ctx)
        if kernel == "sssp":
            return self.sssp(graph, int(source), ctx)
        if kernel == "pr":
            if pr_tolerance is None:
                return self.pagerank(graph, ctx)
            return self.pagerank(graph, ctx, tolerance=pr_tolerance)
        if kernel == "cc":
            return self.connected_components(graph, ctx)
        if kernel == "bc":
            return self.betweenness(graph, sources, ctx)
        if kernel == "tc":
            return self.triangle_count(graph, ctx)
        from ..errors import UnknownKernelError

        raise UnknownKernelError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
