"""Framework interface and registry (Tables II & III live here as metadata)."""

from .base import KERNELS, Framework, FrameworkAttributes, Mode, RunContext
from .registry import (
    EXTENDED_FRAMEWORK_NAMES,
    FRAMEWORK_NAMES,
    all_frameworks,
    attributes_table,
    get,
)

__all__ = [
    "KERNELS",
    "EXTENDED_FRAMEWORK_NAMES",
    "FRAMEWORK_NAMES",
    "Framework",
    "FrameworkAttributes",
    "Mode",
    "RunContext",
    "all_frameworks",
    "attributes_table",
    "get",
]
