"""Graph substrate: CSR graphs, edge lists, transforms, and analysis.

This package plays the role of the shared graph-loading layer that every
framework in the paper builds on: a general-purpose CSR format storing both
edge directions, with deduplicated, destination-sorted adjacency.
"""

from .cache import GraphCache, decompose_case, default_cache_dir, recompose_case
from .csr import CSRGraph
from .datasets import (
    DatasetInfo,
    dataset_digest,
    dataset_identity,
    graph_identities,
    is_dataset_ref,
    list_datasets,
    load_dataset_graph,
    resolve,
)
from .edgelist import EdgeList
from .io import (
    file_digest,
    load_graph_file,
    load_npz,
    read_edge_list,
    read_mtx,
    save_npz,
    write_edge_list,
)
from .properties import (
    GraphProperties,
    analyze,
    approximate_diameter,
    classify_degree_distribution,
    undirected_bfs_depths,
)
from .statistics import (
    TopologySummary,
    assortativity,
    degree_histogram,
    global_clustering,
    reciprocity,
    summarize,
)
from .transforms import (
    degree_order_permutation,
    induced_subgraph,
    lower_triangle_counts,
    permute,
    relabel_by_degree,
)

__all__ = [
    "CSRGraph",
    "EdgeList",
    "GraphCache",
    "decompose_case",
    "default_cache_dir",
    "recompose_case",
    "GraphProperties",
    "TopologySummary",
    "assortativity",
    "degree_histogram",
    "global_clustering",
    "reciprocity",
    "summarize",
    "analyze",
    "approximate_diameter",
    "classify_degree_distribution",
    "undirected_bfs_depths",
    "degree_order_permutation",
    "induced_subgraph",
    "lower_triangle_counts",
    "permute",
    "relabel_by_degree",
    "DatasetInfo",
    "dataset_digest",
    "dataset_identity",
    "file_digest",
    "graph_identities",
    "is_dataset_ref",
    "list_datasets",
    "load_dataset_graph",
    "load_graph_file",
    "load_npz",
    "read_edge_list",
    "read_mtx",
    "resolve",
    "save_npz",
    "write_edge_list",
]
