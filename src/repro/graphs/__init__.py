"""Graph substrate: CSR graphs, edge lists, transforms, and analysis.

This package plays the role of the shared graph-loading layer that every
framework in the paper builds on: a general-purpose CSR format storing both
edge directions, with deduplicated, destination-sorted adjacency.
"""

from .cache import GraphCache, decompose_case, default_cache_dir, recompose_case
from .csr import CSRGraph
from .edgelist import EdgeList
from .io import load_npz, read_edge_list, save_npz, write_edge_list
from .properties import (
    GraphProperties,
    analyze,
    approximate_diameter,
    classify_degree_distribution,
    undirected_bfs_depths,
)
from .statistics import (
    TopologySummary,
    assortativity,
    degree_histogram,
    global_clustering,
    reciprocity,
    summarize,
)
from .transforms import (
    degree_order_permutation,
    induced_subgraph,
    lower_triangle_counts,
    permute,
    relabel_by_degree,
)

__all__ = [
    "CSRGraph",
    "EdgeList",
    "GraphCache",
    "decompose_case",
    "default_cache_dir",
    "recompose_case",
    "GraphProperties",
    "TopologySummary",
    "assortativity",
    "degree_histogram",
    "global_clustering",
    "reciprocity",
    "summarize",
    "analyze",
    "approximate_diameter",
    "classify_degree_distribution",
    "undirected_bfs_depths",
    "degree_order_permutation",
    "induced_subgraph",
    "lower_triangle_counts",
    "permute",
    "relabel_by_degree",
    "load_npz",
    "read_edge_list",
    "save_npz",
    "write_edge_list",
]
