"""Persistent on-disk cache for generated benchmark graphs.

Generating the corpus dominates campaign startup: every ``run_suite``
invocation (and every test session) rebuilds each graph from its
generator even though the output is a pure function of
``(name, scale, seed, generator-version)``.  GAP itself treats graph
building as untimed and amortized across kernels; this cache amortizes it
across *campaigns* — a warm hit skips generation (and the derived-view
construction) entirely.

Artifacts are ``.npz`` files holding one full benchmark case — the base
graph plus its weighted and undirected views, with object-level aliasing
preserved (a view that *is* the base graph stays the same object after a
round trip, and arrays shared between views are stored once).  Writes are
atomic (temp file + ``os.replace``) and every artifact carries a SHA-256
sidecar that is validated on load, so a torn or corrupted file degrades
to a cache miss instead of a wrong graph.

Generated-corpus keys include
:data:`repro.generators.registry.GENERATOR_VERSION`; bumping it when
generator logic changes invalidates every stale artifact.  File-backed
datasets (:mod:`repro.graphs.datasets`) are keyed by the input file's
SHA-256 *content digest* instead — no generator made them, so the version
is irrelevant, and digest keying gives exactly the right invalidation:
renames hit, byte edits miss.

This module also provides the case (de)composition helpers —
:func:`decompose_case` / :func:`recompose_case` — used by
:mod:`repro.core.sharedmem` to publish the same structure over
shared-memory segments.  (For single graphs without views, see
:func:`repro.graphs.io.save_npz`.)
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "GraphCache",
    "decompose_case",
    "recompose_case",
    "default_cache_dir",
]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Order of the six CSR arrays in a graph's slot table.
_ARRAY_FIELDS = (
    "indptr",
    "indices",
    "weights",
    "in_indptr",
    "in_indices",
    "in_weights",
)


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/graphs``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "graphs"


# ----------------------------------------------------------------------
# Case (de)composition: a benchmark case as flat arrays + a layout dict
# ----------------------------------------------------------------------


def decompose_case(
    graph: CSRGraph, weighted: CSRGraph, undirected: CSRGraph
) -> tuple[dict[str, object], list[np.ndarray]]:
    """Flatten a case's three views into unique arrays plus a layout.

    Views that alias each other (``weighted`` may *be* ``graph``;
    ``undirected`` aliases it for already-undirected inputs) and arrays
    shared between views (an undirected graph's in-adjacency aliases its
    out-adjacency) are recorded once; the layout references them by index,
    so a recomposed case reproduces the exact aliasing structure.

    Returns ``(layout, arrays)`` where ``layout`` is JSON/pickle-safe.
    """
    views = (graph, weighted, undirected)
    unique_graphs: list[CSRGraph] = []
    graph_index: dict[int, int] = {}
    for view in views:
        if id(view) not in graph_index:
            graph_index[id(view)] = len(unique_graphs)
            unique_graphs.append(view)

    arrays: list[np.ndarray] = []
    array_index: dict[int, int] = {}

    def slot(array: np.ndarray | None) -> int:
        if array is None:
            return -1
        if id(array) not in array_index:
            array_index[id(array)] = len(arrays)
            arrays.append(array)
        return array_index[id(array)]

    graph_layouts = [
        {
            "num_vertices": g.num_vertices,
            "directed": bool(g.directed),
            "slots": [slot(getattr(g, name)) for name in _ARRAY_FIELDS],
        }
        for g in unique_graphs
    ]
    layout = {
        "graphs": graph_layouts,
        "views": [graph_index[id(view)] for view in views],
    }
    return layout, arrays


def recompose_case(
    layout: dict[str, object], arrays: list[np.ndarray]
) -> tuple[CSRGraph, CSRGraph, CSRGraph]:
    """Rebuild ``(graph, weighted, undirected)`` from a layout + arrays.

    The inverse of :func:`decompose_case`: aliased views come back as the
    same :class:`CSRGraph` object and shared arrays as the same ndarray.
    """
    unique_graphs: list[CSRGraph] = []
    for entry in layout["graphs"]:
        slots = entry["slots"]
        fields = [None if index < 0 else arrays[index] for index in slots]
        unique_graphs.append(
            CSRGraph(
                int(entry["num_vertices"]),
                fields[0],
                fields[1],
                fields[2],
                fields[3],
                fields[4],
                fields[5],
                directed=bool(entry["directed"]),
            )
        )
    graph, weighted, undirected = (unique_graphs[i] for i in layout["views"])
    return graph, weighted, undirected


# ----------------------------------------------------------------------
# The persistent cache
# ----------------------------------------------------------------------


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class GraphCache:
    """Content-validated ``.npz`` store of prebuilt benchmark cases.

    ``root`` defaults to :func:`default_cache_dir`; ``version`` defaults
    to the generators' :data:`GENERATOR_VERSION` (overridable for tests).
    ``hits`` / ``misses`` count lookups for the scaling bench; ``corrupt``
    counts the subset of misses where an artifact *existed* but failed
    checksum or parse validation — the signal the resilience layer (and
    its cache-corruption fault tests) watch to distinguish "cold cache"
    from "something is damaging artifacts".  Each such miss also appends
    a structured record to ``corrupt_events`` (artifact path plus a
    machine-readable ``reason``), so callers can emit a warning span
    instead of degrading damage to a silent rebuild.
    """

    def __init__(
        self, root: str | Path | None = None, version: str | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._version = version
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Structured record of every corrupt-artifact miss, in order.
        self.corrupt_events: list[dict[str, object]] = []

    @property
    def version(self) -> str:
        if self._version is None:
            from ..generators.registry import GENERATOR_VERSION

            self._version = GENERATOR_VERSION
        return self._version

    def path_for(self, name: str, scale: int, seed: int) -> Path:
        """Artifact path for one ``(name, scale, seed, version)`` key."""
        return self.root / f"{name}-s{scale}-r{seed}-g{self.version}.npz"

    def dataset_path_for(self, digest: str, seed: int) -> Path:
        """Artifact path for a file-backed dataset case.

        Keyed by the file's SHA-256 *content digest*, not its path and not
        :data:`GENERATOR_VERSION`: renaming a dataset file keeps its cache
        entry warm, editing a byte misses and rebuilds, and generator-logic
        bumps never touch it (no generator produced it).  ``seed`` stays in
        the key because the weighted SSSP view's synthetic weights are a
        function of it.
        """
        return self.root / f"dataset-{digest[:16]}-r{seed}.npz"

    @staticmethod
    def _checksum_path(path: Path) -> Path:
        return path.with_suffix(path.suffix + ".sha256")

    # -- store ----------------------------------------------------------

    def store_views(
        self,
        name: str,
        scale: int,
        seed: int,
        graph: CSRGraph,
        weighted: CSRGraph,
        undirected: CSRGraph,
    ) -> Path:
        """Atomically persist one generated case; returns the artifact path."""
        key = {
            "name": name,
            "scale": int(scale),
            "seed": int(seed),
            "version": self.version,
        }
        return self._store_case(
            self.path_for(name, scale, seed), key, graph, weighted, undirected
        )

    def store_dataset_views(
        self,
        digest: str,
        seed: int,
        graph: CSRGraph,
        weighted: CSRGraph,
        undirected: CSRGraph,
    ) -> Path:
        """Persist a file-backed case under its content digest."""
        key = {"digest": digest, "seed": int(seed)}
        return self._store_case(
            self.dataset_path_for(digest, seed), key, graph, weighted, undirected
        )

    def _store_case(
        self,
        path: Path,
        key: dict[str, object],
        graph: CSRGraph,
        weighted: CSRGraph,
        undirected: CSRGraph,
    ) -> Path:
        layout, arrays = decompose_case(graph, weighted, undirected)
        meta = {"key": key, "layout": layout}
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {f"array_{i}": array for i, array in enumerate(arrays)}
        payload["meta"] = np.array(json.dumps(meta))
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as stream:
                np.savez(stream, **payload)
            digest = _sha256(tmp)
            checksum_tmp = tmp.with_suffix(".sha256.tmp")
            checksum_tmp.write_text(digest + "\n", encoding="ascii")
            # Artifact first, checksum second: any interruption leaves a
            # mismatched pair, which load_views treats as a miss.
            os.replace(tmp, path)
            os.replace(checksum_tmp, self._checksum_path(path))
        finally:
            tmp.unlink(missing_ok=True)
            tmp.with_suffix(".sha256.tmp").unlink(missing_ok=True)
        return path

    # -- load -----------------------------------------------------------

    def load_views(
        self, name: str, scale: int, seed: int
    ) -> tuple[CSRGraph, CSRGraph, CSRGraph] | None:
        """Load a cached generated case, or None on miss/stale/corrupt."""
        return self._load_case(self.path_for(name, scale, seed))

    def load_dataset_views(
        self, digest: str, seed: int
    ) -> tuple[CSRGraph, CSRGraph, CSRGraph] | None:
        """Load a file-backed case by content digest (None on any miss).

        A hit requires only that some file with these exact bytes was
        ingested before — the original path may have been renamed or
        deleted since; an edited file presents a new digest and misses.
        """
        return self._load_case(self.dataset_path_for(digest, seed))

    def _record_corrupt(
        self, path: Path, reason: str, **detail: object
    ) -> None:
        """Count one corrupt-artifact miss and keep its structured record."""
        self.corrupt += 1
        self.misses += 1
        self.corrupt_events.append(
            {"path": str(path), "reason": reason, **detail}
        )

    def _load_case(
        self, path: Path
    ) -> tuple[CSRGraph, CSRGraph, CSRGraph] | None:
        checksum_path = self._checksum_path(path)
        if not path.exists() and not checksum_path.exists():
            self.misses += 1
            return None
        # From here on the artifact (or its sidecar) exists, so any
        # failure is damage — a torn pair, a checksum mismatch, or an
        # unparseable payload — and counts as corruption, not coldness.
        if not path.exists():
            self._record_corrupt(path, "missing-artifact")
            return None
        if not checksum_path.exists():
            self._record_corrupt(path, "missing-checksum-sidecar")
            return None
        try:
            expected = checksum_path.read_text(encoding="ascii").strip()
            actual = _sha256(path)
            if actual != expected:
                self._record_corrupt(
                    path, "checksum-mismatch",
                    expected=expected, actual=actual,
                )
                return None
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                arrays = [
                    data[f"array_{i}"]
                    for i in range(sum(1 for k in data.files if k != "meta"))
                ]
            views = recompose_case(meta["layout"], arrays)
        except (OSError, ValueError, KeyError, GraphFormatError, json.JSONDecodeError) as exc:
            self._record_corrupt(
                path, "unparseable-artifact",
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.hits += 1
        return views
