"""Topological property analysis backing the Table I reproduction.

Table I of the paper characterizes each benchmark graph by vertex/edge
counts, directedness, average degree, the *shape* of its degree distribution
(bounded / power / normal), and an approximate diameter.  This module
computes the same characterization for our generated analog graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "GraphProperties",
    "analyze",
    "classify_degree_distribution",
    "approximate_diameter",
    "undirected_bfs_depths",
]


@dataclass(frozen=True)
class GraphProperties:
    """The Table I row for one graph."""

    name: str
    num_vertices: int
    num_edges: int
    directed: bool
    average_degree: float
    degree_distribution: str
    approx_diameter: int

    def as_row(self) -> dict[str, object]:
        """Render as a Table I-style row (counts in raw units)."""
        return {
            "Name": self.name,
            "# Vertices": self.num_vertices,
            "# Edges": self.num_edges,
            "Directed": "Y" if self.directed else "N",
            "Degree": round(self.average_degree, 1),
            "Degree Distribution": self.degree_distribution,
            "Approx. Diameter": self.approx_diameter,
        }


def classify_degree_distribution(degrees: np.ndarray) -> str:
    """Classify a degree sequence as ``bounded``, ``power``, or ``normal``.

    Heuristics chosen to agree with Table I on the five GAP topologies:

    * ``bounded`` — the maximum degree is a small constant (road networks:
      planar, degree <= ~9 regardless of size).
    * ``power`` — heavy tail: the max degree is orders of magnitude above the
      mean and the coefficient of variation is large (social/web/Kronecker).
    * ``normal`` — otherwise: concentrated around the mean (Erdős–Rényi's
      Poisson degrees, which Table I labels "normal").
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return "bounded"
    mean = float(degrees.mean())
    max_degree = float(degrees.max())
    if max_degree <= 12 and max_degree <= 4.0 * max(mean, 1.0):
        return "bounded"
    std = float(degrees.std())
    cv = std / mean if mean > 0 else 0.0
    if cv > 1.5 or (mean > 0 and max_degree / mean > 50.0):
        return "power"
    return "normal"


def undirected_bfs_depths(graph: CSRGraph, source: int) -> np.ndarray:
    """Depths of every vertex from ``source``, ignoring edge direction.

    A simple frontier BFS over the union of out- and in-adjacency, used only
    for property analysis (the benchmarked BFS kernels live in the framework
    packages).  Unreached vertices get depth -1.
    """
    n = graph.num_vertices
    depths = np.full(n, -1, dtype=np.int64)
    depths[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        outs = _gather_neighbors(graph.indptr, graph.indices, frontier)
        if graph.directed:
            ins = _gather_neighbors(graph.in_indptr, graph.in_indices, frontier)
            outs = np.concatenate([outs, ins])
        candidates = np.unique(outs)
        fresh = candidates[depths[candidates] < 0]
        depths[fresh] = depth
        frontier = fresh
    return depths


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of the frontier, concatenated (duplicates allowed)."""
    starts = indptr[frontier]
    ends = indptr[frontier + 1]
    total = int((ends - starts).sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    chunks = [indices[s:e] for s, e in zip(starts, ends)]
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=indices.dtype)


def approximate_diameter(graph: CSRGraph, seed: int = 0, sweeps: int = 4) -> int:
    """Lower-bound the diameter with iterated double-sweep BFS.

    Starting from a random non-isolated vertex, repeatedly BFS to the
    farthest vertex found so far; the largest eccentricity observed is the
    reported approximation (the standard technique behind Table I's
    "approx. diameter" column).
    """
    rng = np.random.default_rng(seed)
    degrees = graph.out_degrees + (graph.in_degrees if graph.directed else 0)
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        return 0
    current = int(rng.choice(candidates))
    best = 0
    for _ in range(sweeps):
        depths = undirected_bfs_depths(graph, current)
        ecc = int(depths.max())
        if ecc <= best:
            break
        best = ecc
        current = int(np.flatnonzero(depths == ecc)[0])
    return best


def analyze(graph: CSRGraph, name: str = "graph", seed: int = 0) -> GraphProperties:
    """Compute the full Table I characterization of ``graph``."""
    num_edges = graph.num_edges if graph.directed else graph.num_undirected_edges
    degrees = graph.out_degrees
    avg_degree = float(num_edges) / graph.num_vertices if graph.num_vertices else 0.0
    if not graph.directed:
        # For undirected graphs Table I's "Degree" column is edges/vertices
        # with each edge counted once; the degree sequence still counts both
        # endpoints, so classify on the stored (doubled) adjacency.
        avg_degree = float(num_edges) / graph.num_vertices
    return GraphProperties(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=num_edges,
        directed=graph.directed,
        average_degree=avg_degree,
        degree_distribution=classify_degree_distribution(degrees),
        approx_diameter=approximate_diameter(graph, seed=seed),
    )
