"""Content-digest-addressed registry of file-backed benchmark datasets.

The GAP Benchmark Suite specifies real input graphs precisely so everyone
measures the same topologies; this module is how user-supplied files enter
the pipeline.  A *dataset reference* on the graph axis takes one of two
spellings:

``file:/path/to/graph.mtx``
    A direct path to a supported file (``.el``/``.wel``/``.mtx``, each
    optionally ``.gz``).

``dataset:NAME``
    A registered name, resolved against the dataset directory
    (``$REPRO_DATASET_DIR`` or ``./datasets``) where ``NAME.<ext>`` lives.

Resolution produces a :class:`DatasetInfo` whose ``digest`` is the SHA-256
of the file's raw bytes.  That digest — never the path, never a version
counter — is the dataset's identity everywhere downstream:

* the graph cache keys dataset artifacts on it
  (:meth:`repro.graphs.cache.GraphCache.dataset_path_for`), so renaming a
  file keeps the cache warm and editing one byte invalidates it;
* cell-memo digests and campaign fingerprints replace the reference with
  :func:`dataset_identity` before hashing
  (:func:`repro.store.cellindex.normalize_cell_key`), so the memoizing
  service serves hits for identical bytes under any path and re-executes
  modified files;
* archive manifests record the full provenance map (path, digest, format,
  size) so recovery and index rebuilds never need the original file.

Digest computation is cached per ``(mtime_ns, size, inode)`` stat triple:
the service hot path re-resolves references on every submission, and an
unchanged file must not be re-hashed each time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..errors import GraphFormatError, UnknownGraphError
from .csr import CSRGraph
from .io import file_digest, load_graph_file

__all__ = [
    "DATASET_DIR_ENV",
    "DatasetInfo",
    "dataset_digest",
    "dataset_identity",
    "default_dataset_dir",
    "graph_identities",
    "is_dataset_ref",
    "list_datasets",
    "load_dataset_graph",
    "resolve",
]

#: Environment variable overriding the default dataset directory.
DATASET_DIR_ENV = "REPRO_DATASET_DIR"

#: Reference spellings.  Both are recognizable purely syntactically, so
#: the service protocol can validate a request shape client-side without
#: touching the (server-local) filesystem.
FILE_PREFIX = "file:"
NAME_PREFIX = "dataset:"

#: Supported file formats, keyed by extension (``.gz`` composes with any).
FORMATS = {".el": "el", ".wel": "wel", ".mtx": "mtx"}


def default_dataset_dir() -> Path:
    """The registry root: ``$REPRO_DATASET_DIR`` or ``./datasets``."""
    env = os.environ.get(DATASET_DIR_ENV)
    if env:
        return Path(env)
    return Path("datasets")


def is_dataset_ref(name: str) -> bool:
    """Whether a graph-axis entry is a dataset reference (syntactically).

    A bare prefix with nothing after it is not a reference — ``file:``
    alone should fail axis validation as an unknown graph name, not
    limp into resolution.
    """
    for prefix in (FILE_PREFIX, NAME_PREFIX):
        if name.startswith(prefix):
            return len(name) > len(prefix)
    return False


def _detect_format(path: Path) -> str | None:
    """Format key for a dataset file, or None if the extension is unknown."""
    name = path.name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    suffix = Path(name).suffix
    return FORMATS.get(suffix)


def _dataset_name(path: Path) -> str:
    """The registry name of a file: stem with format + ``.gz`` stripped."""
    name = path.name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return Path(name).stem


#: path → ((mtime_ns, size, inode), sha256).  Re-hash only when the stat
#: identity changes; an edited file always changes mtime_ns or size.
_DIGEST_CACHE: dict[str, tuple[tuple[int, int, int], str]] = {}


def dataset_digest(path: str | Path) -> str:
    """SHA-256 content digest of a dataset file, stat-cached.

    The cache makes repeated resolution (every service submission) cost
    one ``stat`` instead of one full-file hash; any modification to the
    file's bytes changes ``st_mtime_ns``/``st_size`` and forces a re-hash.
    """
    path = Path(path)
    try:
        stat = path.stat()
    except OSError as exc:
        raise UnknownGraphError(f"cannot stat dataset file {path}: {exc}") from exc
    stat_key = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
    cached = _DIGEST_CACHE.get(str(path))
    if cached is not None and cached[0] == stat_key:
        return cached[1]
    digest = file_digest(path)
    _DIGEST_CACHE[str(path)] = (stat_key, digest)
    return digest


def dataset_identity(digest: str) -> str:
    """The graph-axis identity string for a content digest.

    This — not the path the user typed — is what enters cell-memo digests
    and campaign fingerprints, so two references to byte-identical files
    are the same measurement and an edited file is a different one.
    """
    return f"file:sha256:{digest}"


@dataclass(frozen=True)
class DatasetInfo:
    """One resolved dataset: where it lives and what bytes it holds."""

    ref: str
    name: str
    path: Path
    format: str
    digest: str
    size_bytes: int

    def provenance(self) -> dict[str, object]:
        """The JSON-safe provenance entry archive manifests carry."""
        return {
            "path": str(self.path),
            "digest": self.digest,
            "format": self.format,
            "bytes": self.size_bytes,
        }

    @property
    def identity(self) -> str:
        return dataset_identity(self.digest)

    def load(self) -> CSRGraph:
        """Parse the file into a :class:`CSRGraph`."""
        return load_graph_file(self.path)


def _info(ref: str, path: Path, fmt: str, name: str | None = None) -> DatasetInfo:
    return DatasetInfo(
        ref=ref,
        name=name if name is not None else _dataset_name(path),
        path=path,
        format=fmt,
        digest=dataset_digest(path),
        size_bytes=path.stat().st_size,
    )


def resolve(ref: str, dataset_dir: str | Path | None = None) -> DatasetInfo:
    """Resolve a dataset reference to a :class:`DatasetInfo`.

    Raises :class:`~repro.errors.UnknownGraphError` for a missing file or
    unregistered name and :class:`~repro.errors.GraphFormatError` for an
    unsupported extension — both :class:`~repro.errors.ReproError`, so
    callers (the CLI, the service) can turn resolution failures into
    structured errors instead of crashes.
    """
    if ref.startswith(FILE_PREFIX):
        raw = ref[len(FILE_PREFIX):]
        if not raw:
            raise UnknownGraphError("empty 'file:' dataset reference")
        path = Path(raw).expanduser()
        if not path.is_file():
            raise UnknownGraphError(f"dataset file not found: {path}")
        fmt = _detect_format(path)
        if fmt is None:
            raise GraphFormatError(
                f"unsupported dataset extension on {path.name!r} "
                "(supported: .el, .wel, .mtx, each optionally .gz)"
            )
        return _info(ref, path, fmt)
    if ref.startswith(NAME_PREFIX):
        name = ref[len(NAME_PREFIX):]
        if not name:
            raise UnknownGraphError("empty 'dataset:' reference")
        root = Path(dataset_dir) if dataset_dir is not None else default_dataset_dir()
        if root.is_dir():
            for candidate in sorted(root.iterdir()):
                fmt = _detect_format(candidate)
                if fmt is not None and _dataset_name(candidate) == name:
                    return _info(ref, candidate, fmt, name=name)
        raise UnknownGraphError(
            f"no dataset named {name!r} under {root} "
            f"(register files there or set ${DATASET_DIR_ENV})"
        )
    raise UnknownGraphError(
        f"{ref!r} is not a dataset reference "
        "(expected 'file:/path/to/graph' or 'dataset:NAME')"
    )


def load_dataset_graph(ref: str, dataset_dir: str | Path | None = None) -> CSRGraph:
    """Resolve + parse a dataset reference in one step."""
    return resolve(ref, dataset_dir).load()


def list_datasets(dataset_dir: str | Path | None = None) -> list[DatasetInfo]:
    """Every supported file in the dataset directory, sorted by name."""
    root = Path(dataset_dir) if dataset_dir is not None else default_dataset_dir()
    infos: list[DatasetInfo] = []
    if not root.is_dir():
        return infos
    for candidate in sorted(root.iterdir()):
        fmt = _detect_format(candidate)
        if fmt is None or not candidate.is_file():
            continue
        name = _dataset_name(candidate)
        infos.append(_info(f"{NAME_PREFIX}{name}", candidate, fmt, name=name))
    return infos


def graph_identities(
    graphs, dataset_dir: str | Path | None = None
) -> tuple[dict[str, str], dict[str, dict[str, object]]]:
    """Resolve a graph axis to identities + provenance in one pass.

    Returns ``(identities, provenance)``: ``identities`` maps every axis
    entry to the string that participates in cell digests and campaign
    fingerprints (generator names map to themselves, dataset references
    to :func:`dataset_identity`); ``provenance`` holds a
    :meth:`DatasetInfo.provenance` entry for each dataset reference only —
    empty for an all-generator axis, ready for an archive manifest
    otherwise.
    """
    identities: dict[str, str] = {}
    provenance: dict[str, dict[str, object]] = {}
    for name in graphs:
        if is_dataset_ref(name):
            info = resolve(name, dataset_dir)
            identities[name] = info.identity
            provenance[name] = info.provenance()
        else:
            identities[name] = name
    return identities, provenance
