"""Extended topology statistics beyond the Table I characterization.

The paper's workload-characterization companion (Beamer et al., IISWC'15)
argues topology drives graph-kernel behaviour more than the algorithm;
this module provides the descriptive statistics that argument rests on:
degree histograms (log-binned, for power-law eyeballing), degree
assortativity (hub-hub vs hub-leaf mixing), reciprocity of directed
graphs, and a global clustering summary.  Used by the examples and by the
generator tests to validate that the analogs sit in the right regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "degree_histogram",
    "assortativity",
    "reciprocity",
    "global_clustering",
    "TopologySummary",
    "summarize",
]


def degree_histogram(graph: CSRGraph, log_binned: bool = True) -> list[tuple[int, int]]:
    """(degree-bin lower bound, vertex count) pairs.

    Log-binned by powers of two by default — the natural scale for
    detecting the straight-line signature of a power law.
    """
    degrees = graph.out_degrees
    if not log_binned:
        counts = np.bincount(degrees)
        return [(d, int(c)) for d, c in enumerate(counts) if c]
    max_degree = int(degrees.max()) if degrees.size else 0
    bins = [0, 1]
    while bins[-1] <= max_degree:
        bins.append(bins[-1] * 2)
    histogram, _ = np.histogram(degrees, bins=bins + [bins[-1] * 2])
    return [(low, int(count)) for low, count in zip(bins, histogram) if count]


def assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over all edges.

    Negative values (hubs connect to leaves) typify synthetic power-law
    generators like Kronecker; road networks sit near zero.
    """
    src, dst = graph.edge_array()
    if src.size < 2:
        return 0.0
    x = graph.out_degrees[src].astype(np.float64)
    y = graph.in_degrees[dst].astype(np.float64) if graph.directed else graph.out_degrees[dst].astype(np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def reciprocity(graph: CSRGraph) -> float:
    """Fraction of directed edges whose reverse also exists.

    1.0 for undirected storage; road networks are high (two-way streets),
    follow graphs low.
    """
    if not graph.directed:
        return 1.0
    src, dst = graph.edge_array()
    if src.size == 0:
        return 0.0
    n = np.int64(graph.num_vertices)
    keys = src * n + dst
    reverse = dst * n + src
    keys.sort()
    found = np.searchsorted(keys, reverse)
    found[found == keys.size] = 0
    return float((keys[found] == reverse).mean())


def global_clustering(graph: CSRGraph) -> float:
    """Transitivity: 3 * triangles / wedges on the symmetrized graph."""
    undirected = graph.to_undirected() if graph.directed else graph
    degrees = undirected.out_degrees.astype(np.float64)
    wedges = float((degrees * (degrees - 1) / 2).sum())
    if wedges == 0:
        return 0.0
    from ..gapbs.tc import triangle_count

    triangles = triangle_count(undirected)
    return 3.0 * triangles / wedges


@dataclass(frozen=True)
class TopologySummary:
    """The extended statistics bundle for one graph."""

    name: str
    assortativity: float
    reciprocity: float
    global_clustering: float
    max_out_degree: int
    degree_percentiles: tuple[float, float, float]  # p50, p90, p99

    def as_row(self) -> dict[str, object]:
        """Render as a printable summary row."""
        p50, p90, p99 = self.degree_percentiles
        return {
            "Name": self.name,
            "Assortativity": round(self.assortativity, 3),
            "Reciprocity": round(self.reciprocity, 3),
            "Clustering": round(self.global_clustering, 4),
            "Max degree": self.max_out_degree,
            "p50/p90/p99 degree": f"{p50:.0f}/{p90:.0f}/{p99:.0f}",
        }


def summarize(graph: CSRGraph, name: str = "graph") -> TopologySummary:
    """Compute the full extended-statistics bundle."""
    degrees = graph.out_degrees
    percentiles = tuple(np.percentile(degrees, [50, 90, 99])) if degrees.size else (0.0, 0.0, 0.0)
    return TopologySummary(
        name=name,
        assortativity=assortativity(graph),
        reciprocity=reciprocity(graph),
        global_clustering=global_clustering(graph),
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        degree_percentiles=percentiles,  # type: ignore[arg-type]
    )
