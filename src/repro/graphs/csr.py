"""Compressed sparse row graph type shared by every framework in the study.

Per the GAP benchmark rules, all kernels of a framework must operate on the
same general-purpose graph format; this CSR type plays that role.  As in the
GAP reference code, a directed graph stores *both* the out-adjacency and the
in-adjacency (the transpose), because transposition is excluded from kernel
timing.  Undirected graphs store each edge in both orientations and the
in-adjacency aliases the out-adjacency.

Adjacency lists are sorted by destination and duplicate edges are removed at
construction, which the paper notes every evaluated framework does.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import GraphFormatError
from .edgelist import EdgeList

__all__ = ["CSRGraph"]


def _compress(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Sort edges by (src, dst) and build (indptr, indices, weights)."""
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    if weights is not None:
        weights = np.ascontiguousarray(weights[order])
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, np.ascontiguousarray(dst, dtype=np.int64), weights


class CSRGraph:
    """An immutable graph in CSR form with both edge directions available.

    Attributes:
        num_vertices: Vertex count ``n``; vertices are ``0 .. n-1``.
        directed: Whether the graph is directed.  Undirected graphs store
            each edge in both orientations.
        indptr / indices / weights: Out-adjacency CSR arrays.
        in_indptr / in_indices / in_weights: In-adjacency CSR arrays (alias
            the out arrays when the graph is undirected).
    """

    __slots__ = (
        "num_vertices",
        "directed",
        "indptr",
        "indices",
        "weights",
        "in_indptr",
        "in_indices",
        "in_weights",
        "_out_degrees",
        "_in_degrees",
    )

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_weights: np.ndarray | None,
        directed: bool,
    ) -> None:
        if indptr.shape != (num_vertices + 1,):
            raise GraphFormatError("indptr must have length num_vertices + 1")
        if in_indptr.shape != (num_vertices + 1,):
            raise GraphFormatError("in_indptr must have length num_vertices + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError("indptr does not span indices")
        if in_indptr[0] != 0 or in_indptr[-1] != in_indices.size:
            raise GraphFormatError("in_indptr does not span in_indices")
        self.num_vertices = int(num_vertices)
        self.directed = bool(directed)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_weights = in_weights
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(cls, edges: EdgeList, directed: bool = True) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Self-loops and duplicate edges are removed (the shared preprocessing
        stage the paper describes).  For undirected graphs the edge list is
        symmetrized first, so each input edge is reachable both ways.
        """
        clean = edges.without_self_loops()
        clean = clean.symmetrized() if not directed else clean.deduplicated()
        n = clean.num_vertices
        indptr, indices, weights = _compress(n, clean.src, clean.dst, clean.weights)
        if directed:
            in_indptr, in_indices, in_weights = _compress(
                n, clean.dst, clean.src, clean.weights
            )
        else:
            in_indptr, in_indices, in_weights = indptr, indices, weights
        return cls(
            n, indptr, indices, weights, in_indptr, in_indices, in_weights, directed
        )

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        directed: bool = True,
    ) -> "CSRGraph":
        """Convenience constructor from raw endpoint arrays."""
        return cls.from_edge_list(
            EdgeList(num_vertices, np.asarray(src), np.asarray(dst), weights),
            directed=directed,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (undirected edges count twice)."""
        return int(self.indices.size)

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges when the graph is undirected."""
        if self.directed:
            raise GraphFormatError("graph is directed")
        return self.num_edges // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.indptr)
        return self._out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.diff(self.in_indptr)
        return self._in_degrees

    def out_degree(self, v: int) -> int:
        """Out-degree of one vertex."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of one vertex."""
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` (sorted, no duplicates)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (sorted, no duplicates)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with ``neighbors(v)``."""
        if self.weights is None:
            raise GraphFormatError("graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def in_neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with ``in_neighbors(v)``."""
        if self.in_weights is None:
            raise GraphFormatError("graph is unweighted")
        return self.in_weights[self.in_indptr[v] : self.in_indptr[v + 1]]

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(range(self.num_vertices))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over stored directed edges as ``(u, v)`` pairs."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                yield u, int(v)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (src, dst) arrays of all stored directed edges."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees)
        return src, self.indices.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in the sorted adjacency row."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def transpose(self) -> "CSRGraph":
        """Return the transposed graph (a cheap view swap, as in GAP).

        GAP stores both directions so transposition is free and is excluded
        from kernel timing; we mirror that by swapping array references.
        """
        if not self.directed:
            return self
        return CSRGraph(
            self.num_vertices,
            self.in_indptr,
            self.in_indices,
            self.in_weights,
            self.indptr,
            self.indices,
            self.weights,
            directed=True,
        )

    def to_undirected(self) -> "CSRGraph":
        """Return the undirected version of this graph (symmetrized edges)."""
        if not self.directed:
            return self
        src, dst = self.edge_array()
        return CSRGraph.from_edge_list(
            EdgeList(self.num_vertices, src, dst, self.weights),
            directed=False,
        )

    def to_edge_list(self) -> EdgeList:
        """Export the stored directed edges back to an edge list."""
        src, dst = self.edge_array()
        weights = None if self.weights is None else self.weights.copy()
        return EdgeList(self.num_vertices, src, dst, weights)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph({kind}, {w}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        same_structure = (
            self.num_vertices == other.num_vertices
            and self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )
        if not same_structure:
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None and not np.array_equal(self.weights, other.weights):
            return False
        return True

    def __hash__(self) -> int:
        return id(self)
