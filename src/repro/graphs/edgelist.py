"""Edge-list representation used as the interchange format for graph builders.

The GAP benchmark reference code reads graphs as flat edge lists and then
compresses them to CSR.  This module mirrors that stage: an
:class:`EdgeList` is a struct-of-arrays triple ``(src, dst, weights)`` with
helpers for deduplication, symmetrization, self-loop removal, and relabeling.
All operations are vectorized NumPy and return new objects (edge lists are
immutable by convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphFormatError

__all__ = ["EdgeList"]


@dataclass(frozen=True)
class EdgeList:
    """A list of directed edges over vertices ``0 .. num_vertices-1``.

    Attributes:
        num_vertices: Number of vertices in the graph (may exceed the largest
            endpoint; isolated vertices are permitted, as in GAP graphs).
        src: int64 array of source endpoints.
        dst: int64 array of destination endpoints.
        weights: Optional array of per-edge weights (parallel to ``src``).
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphFormatError(
                f"src/dst must be 1-D arrays of equal length, got "
                f"{src.shape} and {dst.shape}"
            )
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights)
            object.__setattr__(self, "weights", weights)
            if weights.shape != src.shape:
                raise GraphFormatError(
                    f"weights length {weights.shape} != edge count {src.shape}"
                )
        if self.num_vertices < 0:
            raise GraphFormatError("num_vertices must be non-negative")
        if src.size:
            endpoints_max = max(int(src.max()), int(dst.max()))
            endpoints_min = min(int(src.min()), int(dst.min()))
            if endpoints_min < 0:
                raise GraphFormatError("negative vertex id in edge list")
            if endpoints_max >= self.num_vertices:
                raise GraphFormatError(
                    f"vertex id {endpoints_max} out of range for "
                    f"num_vertices={self.num_vertices}"
                )

    @property
    def num_edges(self) -> int:
        """Number of directed edges stored."""
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def copy_with(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None,
    ) -> "EdgeList":
        """Return a new edge list over the same vertex set."""
        return EdgeList(self.num_vertices, src, dst, weights)

    def without_self_loops(self) -> "EdgeList":
        """Drop edges whose endpoints coincide."""
        keep = self.src != self.dst
        weights = self.weights[keep] if self.weights is not None else None
        return self.copy_with(self.src[keep], self.dst[keep], weights)

    def deduplicated(self) -> "EdgeList":
        """Remove duplicate ``(src, dst)`` pairs, keeping the first weight.

        The GAP rules require frameworks to remove duplicate edges when
        building the graph; all our frameworks share this stage.
        """
        if self.num_edges == 0:
            return self
        order = np.lexsort((self.dst, self.src))
        src = self.src[order]
        dst = self.dst[order]
        first = np.empty(src.size, dtype=bool)
        first[0] = True
        np.not_equal(src[1:], src[:-1], out=first[1:])
        first[1:] |= dst[1:] != dst[:-1]
        weights = None
        if self.weights is not None:
            weights = self.weights[order][first]
        return self.copy_with(src[first], dst[first], weights)

    def symmetrized(self) -> "EdgeList":
        """Return the union of this edge list and its reverse, deduplicated.

        Used to build undirected graphs: each undirected edge appears in both
        orientations exactly once.
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        weights = None
        if self.weights is not None:
            weights = np.concatenate([self.weights, self.weights])
        return self.copy_with(src, dst, weights).deduplicated()

    def reversed(self) -> "EdgeList":
        """Return the edge list with every edge direction flipped."""
        return self.copy_with(self.dst.copy(), self.src.copy(), None if self.weights is None else self.weights.copy())

    def relabeled(self, perm: np.ndarray) -> "EdgeList":
        """Apply a vertex permutation: new id of vertex ``v`` is ``perm[v]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_vertices,):
            raise GraphFormatError(
                f"permutation length {perm.shape} != num_vertices "
                f"{self.num_vertices}"
            )
        if not np.array_equal(np.sort(perm), np.arange(self.num_vertices)):
            raise GraphFormatError("perm is not a permutation of 0..n-1")
        return self.copy_with(perm[self.src], perm[self.dst], self.weights)

    def with_uniform_weights(self, rng: np.random.Generator, low: int = 1, high: int = 255) -> "EdgeList":
        """Attach integer weights drawn uniformly from ``[low, high]``.

        Mirrors the GAP benchmark, which assigns uniform random integer
        weights in [1, 255] to unweighted input graphs before running SSSP.
        Symmetric edge pairs (u, v) and (v, u) receive identical weights so
        undirected graphs stay consistent, matching the GAP generator.
        """
        lo = np.minimum(self.src, self.dst)
        hi = np.maximum(self.src, self.dst)
        canonical = lo * np.int64(self.num_vertices) + hi
        unique, inverse = np.unique(canonical, return_inverse=True)
        per_pair = rng.integers(low, high + 1, size=unique.size, dtype=np.int64)
        return self.copy_with(self.src, self.dst, per_pair[inverse])
