"""Serialization for graphs: GAP-style text edge lists and binary .npz.

The GAP reference code reads ``.el`` (unweighted) and ``.wel`` (weighted)
text edge lists and caches a binary serialized graph.  We provide the same
two tiers so examples can persist generated corpora between runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph
from .edgelist import EdgeList

__all__ = ["write_edge_list", "read_edge_list", "save_npz", "load_npz"]


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write the graph's directed edges as whitespace-separated lines.

    Weighted graphs produce ``src dst weight`` lines (GAP ``.wel``);
    unweighted graphs produce ``src dst`` lines (GAP ``.el``).
    """
    path = Path(path)
    src, dst = graph.edge_array()
    with path.open("w", encoding="ascii") as handle:
        handle.write(f"# repro graph n={graph.num_vertices} "
                     f"directed={int(graph.directed)}\n")
        if graph.weights is not None:
            for u, v, w in zip(src, dst, graph.weights):
                handle.write(f"{u} {v} {w}\n")
        else:
            for u, v in zip(src, dst):
                handle.write(f"{u} {v}\n")


def read_edge_list(path: str | Path, directed: bool = True) -> CSRGraph:
    """Read a text edge list written by :func:`write_edge_list`.

    Also accepts plain third-party edge lists without the header line, in
    which case the vertex count is inferred from the largest endpoint.
    """
    path = Path(path)
    num_vertices: int | None = None
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    weighted: bool | None = None
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("n="):
                        num_vertices = int(token[2:])
                    elif token.startswith("directed="):
                        directed = bool(int(token[len("directed="):]))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(f"bad edge line: {line!r}")
            if weighted is None:
                weighted = len(parts) == 3
            elif weighted != (len(parts) == 3):
                raise GraphFormatError("mixed weighted/unweighted edge lines")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                weights.append(float(parts[2]))
    if num_vertices is None:
        num_vertices = (max(max(srcs, default=-1), max(dsts, default=-1)) + 1)
    edge_weights = np.asarray(weights) if weighted else None
    edges = EdgeList(num_vertices, np.asarray(srcs, dtype=np.int64),
                     np.asarray(dsts, dtype=np.int64), edge_weights)
    return CSRGraph.from_edge_list(edges, directed=directed)


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Serialize a graph to NumPy's compressed .npz container."""
    arrays: dict[str, np.ndarray] = {
        "meta": np.array([graph.num_vertices, int(graph.directed)], dtype=np.int64),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.directed:
        arrays["in_indptr"] = graph.in_indptr
        arrays["in_indices"] = graph.in_indices
    if graph.weights is not None:
        arrays["weights"] = graph.weights
        if graph.directed and graph.in_weights is not None:
            arrays["in_weights"] = graph.in_weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        num_vertices, directed_flag = (int(x) for x in data["meta"])
        directed = bool(directed_flag)
        indptr = data["indptr"]
        indices = data["indices"]
        weights = data["weights"] if "weights" in data else None
        if directed:
            in_indptr = data["in_indptr"]
            in_indices = data["in_indices"]
            in_weights = data["in_weights"] if "in_weights" in data else None
        else:
            in_indptr, in_indices, in_weights = indptr, indices, weights
    return CSRGraph(
        num_vertices,
        indptr,
        indices,
        weights,
        in_indptr,
        in_indices,
        in_weights,
        directed,
    )
