"""Serialization for graphs: text edge lists, MatrixMarket, and binary .npz.

The GAP reference code reads ``.el`` (unweighted) and ``.wel`` (weighted)
text edge lists and caches a binary serialized graph.  We provide the same
two tiers, plus the MatrixMarket ``.mtx`` coordinate format every public
graph repository (SuiteSparse, SNAP mirrors) speaks, so campaigns can run
on real downloaded datasets and not only on generated corpora.

All text readers share one chunked, vectorized core: lines are gathered in
large blocks and handed to NumPy for parsing, so ingesting a multi-million
edge file costs a handful of array conversions instead of a Python loop
per edge.  Gzip compression is transparent — any reader accepts a ``.gz``
of its format — and every malformed input raises
:class:`~repro.errors.GraphFormatError` with the offending detail instead
of an arbitrary NumPy/Python error.
"""

from __future__ import annotations

import gzip
import hashlib
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph
from .edgelist import EdgeList

__all__ = [
    "file_digest",
    "load_graph_file",
    "load_npz",
    "open_text",
    "read_edge_list",
    "read_mtx",
    "save_npz",
    "write_edge_list",
]

#: Data lines gathered per vectorized parse.  Large enough that NumPy
#: dominates the cost, small enough to bound peak memory on huge inputs.
CHUNK_LINES = 1 << 17


def open_text(path: str | Path, mode: str = "rt"):
    """Open a text file for reading, decompressing ``.gz`` transparently."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="ascii")
    return open(path, mode, encoding="ascii")


def file_digest(path: str | Path) -> str:
    """SHA-256 hex digest of a file's raw bytes (compressed as stored).

    This is the content identity the dataset pipeline keys everything on:
    graph-cache artifacts, cell-memo digests, and archive provenance all
    carry it, so renaming a file keeps every cache warm while editing a
    single byte invalidates them all (see :mod:`repro.graphs.datasets`).
    """
    digest = hashlib.sha256()
    with open(Path(path), "rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write the graph's directed edges as whitespace-separated lines.

    Weighted graphs produce ``src dst weight`` lines (GAP ``.wel``);
    unweighted graphs produce ``src dst`` lines (GAP ``.el``).  The edge
    block is emitted via column stacking + ``np.savetxt`` — one array
    format call instead of a Python loop per edge, which turns writing a
    scale-20 corpus graph from minutes into seconds (see
    ``benchmarks/bench_io_roundtrip.py``).
    """
    path = Path(path)
    src, dst = graph.edge_array()
    with path.open("w", encoding="ascii") as handle:
        handle.write(f"# repro graph n={graph.num_vertices} "
                     f"directed={int(graph.directed)}\n")
        if graph.weights is not None:
            np.savetxt(
                handle,
                np.column_stack([src, dst, graph.weights]),
                fmt=("%d", "%d", "%.17g"),
            )
        else:
            np.savetxt(handle, np.column_stack([src, dst]), fmt="%d")


def _parse_block(lines: list[str], path: Path, expected_cols: int | None) -> np.ndarray:
    """Vectorized parse of one block of whitespace-separated numeric lines.

    Returns a float64 array of shape ``(len(lines), columns)``; raises
    :class:`GraphFormatError` on ragged rows, non-numeric tokens, or a
    column count that disagrees with ``expected_cols``.
    """
    try:
        array = np.loadtxt(lines, dtype=np.float64, ndmin=2)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: malformed edge line: {exc}") from exc
    columns = array.shape[1]
    if columns not in (2, 3):
        raise GraphFormatError(
            f"{path}: edge lines must have 2 or 3 columns, found {columns}"
        )
    if expected_cols is not None and columns != expected_cols:
        raise GraphFormatError(
            f"{path}: expected {expected_cols}-column lines, found {columns} "
            "(mixed weighted/unweighted edge lines?)"
        )
    return array


def _int_ids(values: np.ndarray, path: Path, label: str) -> np.ndarray:
    ids = values.astype(np.int64)
    if not np.array_equal(ids, values):
        raise GraphFormatError(f"{path}: non-integer {label} vertex id")
    return ids


def read_edge_list(path: str | Path, directed: bool = True) -> CSRGraph:
    """Read a text edge list written by :func:`write_edge_list`.

    Also accepts plain third-party edge lists without the header line (the
    vertex count is then inferred from the largest endpoint), ``%``-style
    comment lines, and gzip-compressed input.  Parsing is chunked and
    vectorized: data lines are gathered in blocks of :data:`CHUNK_LINES`
    and converted by NumPy in one call per block.
    """
    path = Path(path)
    num_vertices: int | None = None
    blocks: list[np.ndarray] = []
    columns: int | None = None
    pending: list[str] = []

    def flush() -> None:
        nonlocal columns
        if not pending:
            return
        block = _parse_block(pending, path, columns)
        columns = block.shape[1]
        blocks.append(block)
        pending.clear()

    with open_text(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped[0] in "#%":
                if stripped[0] == "#":
                    for token in stripped[1:].split():
                        try:
                            if token.startswith("n="):
                                num_vertices = int(token[2:])
                            elif token.startswith("directed="):
                                directed = bool(int(token[len("directed="):]))
                        except ValueError as exc:
                            raise GraphFormatError(
                                f"{path}: bad header token {token!r}"
                            ) from exc
                continue
            pending.append(stripped)
            if len(pending) >= CHUNK_LINES:
                flush()
        flush()

    if blocks:
        data = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        src = _int_ids(data[:, 0], path, "source")
        dst = _int_ids(data[:, 1], path, "destination")
        weights = data[:, 2] if columns == 3 else None
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        weights = None
    if num_vertices is None:
        largest = -1
        if src.size:
            largest = max(int(src.max()), int(dst.max()))
        num_vertices = largest + 1
    edges = EdgeList(num_vertices, src, dst, weights)
    return CSRGraph.from_edge_list(edges, directed=directed)


def read_mtx(path: str | Path) -> CSRGraph:
    """Read a MatrixMarket ``coordinate`` file as a graph.

    Supports the banner fields ``pattern`` (unweighted), ``integer``, and
    ``real`` (both weighted), with ``general`` (directed) or ``symmetric``
    (undirected) symmetry.  Indices are 1-based per the format and shifted
    to 0-based; gzip input is transparent.  A bad banner, a 0 or negative
    index, or an entry count short of the size line's promise raises
    :class:`GraphFormatError`.
    """
    path = Path(path)
    blocks: list[np.ndarray] = []
    pending: list[str] = []
    with open_text(path) as handle:
        banner = handle.readline()
        tokens = banner.strip().split()
        if len(tokens) != 5 or tokens[0] != "%%MatrixMarket":
            raise GraphFormatError(
                f"{path}: missing or malformed MatrixMarket banner "
                f"(got {banner.strip()[:60]!r})"
            )
        if tokens[1].lower() != "matrix" or tokens[2].lower() != "coordinate":
            raise GraphFormatError(
                f"{path}: only 'matrix coordinate' MatrixMarket files are "
                f"supported (banner says {tokens[1]!r} {tokens[2]!r})"
            )
        field, symmetry = tokens[3].lower(), tokens[4].lower()
        if field not in ("pattern", "integer", "real"):
            raise GraphFormatError(
                f"{path}: unsupported MatrixMarket field {field!r} "
                "(supported: pattern, integer, real)"
            )
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(
                f"{path}: unsupported MatrixMarket symmetry {symmetry!r} "
                "(supported: general, symmetric)"
            )
        expected_cols = 2 if field == "pattern" else 3

        size_line: str | None = None
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            size_line = stripped
            break
        if size_line is None:
            raise GraphFormatError(f"{path}: missing MatrixMarket size line")
        parts = size_line.split()
        try:
            rows, cols, nnz = (int(part) for part in parts)
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}: bad MatrixMarket size line {size_line!r}"
            ) from exc
        if rows <= 0 or cols <= 0 or nnz < 0:
            raise GraphFormatError(
                f"{path}: bad MatrixMarket dimensions {rows}x{cols}, nnz={nnz}"
            )

        def flush() -> None:
            if pending:
                blocks.append(_parse_block(pending, path, expected_cols))
                pending.clear()

        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            pending.append(stripped)
            if len(pending) >= CHUNK_LINES:
                flush()
        flush()

    if blocks:
        data = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
    else:
        data = np.empty((0, expected_cols), dtype=np.float64)
    if data.shape[0] != nnz:
        raise GraphFormatError(
            f"{path}: truncated MatrixMarket file: size line promises "
            f"{nnz} entries, found {data.shape[0]}"
        )
    src = _int_ids(data[:, 0], path, "source")
    dst = _int_ids(data[:, 1], path, "destination")
    if src.size and (int(src.min()) < 1 or int(dst.min()) < 1):
        raise GraphFormatError(
            f"{path}: MatrixMarket indices are 1-based; found an index <= 0"
        )
    num_vertices = max(rows, cols)
    if src.size and (int(src.max()) > rows or int(dst.max()) > cols):
        raise GraphFormatError(
            f"{path}: MatrixMarket entry exceeds the declared "
            f"{rows}x{cols} dimensions"
        )
    weights = data[:, 2] if expected_cols == 3 else None
    edges = EdgeList(num_vertices, src - 1, dst - 1, weights)
    return CSRGraph.from_edge_list(edges, directed=(symmetry == "general"))


def load_graph_file(path: str | Path, directed: bool = True) -> CSRGraph:
    """Load a graph file, dispatching on its (possibly ``.gz``) extension.

    ``.mtx`` goes through :func:`read_mtx` (directedness comes from the
    banner's symmetry); everything else — ``.el``, ``.wel``, headerless
    third-party edge lists — through :func:`read_edge_list`.
    """
    path = Path(path)
    name = path.name[: -len(".gz")] if path.name.endswith(".gz") else path.name
    if name.endswith(".mtx"):
        return read_mtx(path)
    return read_edge_list(path, directed=directed)


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Serialize a graph to NumPy's compressed .npz container."""
    arrays: dict[str, np.ndarray] = {
        "meta": np.array([graph.num_vertices, int(graph.directed)], dtype=np.int64),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.directed:
        arrays["in_indptr"] = graph.in_indptr
        arrays["in_indices"] = graph.in_indices
    if graph.weights is not None:
        arrays["weights"] = graph.weights
        if graph.directed and graph.in_weights is not None:
            arrays["in_weights"] = graph.in_weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        num_vertices, directed_flag = (int(x) for x in data["meta"])
        directed = bool(directed_flag)
        indptr = data["indptr"]
        indices = data["indices"]
        weights = data["weights"] if "weights" in data else None
        if directed:
            in_indptr = data["in_indptr"]
            in_indices = data["in_indices"]
            in_weights = data["in_weights"] if "in_weights" in data else None
        else:
            in_indptr, in_indices, in_weights = indptr, indices, weights
    return CSRGraph(
        num_vertices,
        indptr,
        indices,
        weights,
        in_indptr,
        in_indices,
        in_weights,
        directed,
    )
