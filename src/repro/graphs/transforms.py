"""Graph transforms used by the frameworks' preprocessing heuristics.

The paper's frameworks relabel (reorder) graphs before triangle counting,
block edges for load balancing, and extract induced subgraphs for cache
tiling.  These shared transforms live here so each framework package stays
focused on its kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph
from .edgelist import EdgeList

__all__ = [
    "permute",
    "degree_order_permutation",
    "relabel_by_degree",
    "induced_subgraph",
    "lower_triangle_counts",
]


def permute(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: vertex ``v`` becomes ``perm[v]``.

    Weights travel with their edges.  The result is rebuilt in CSR form so
    adjacency stays sorted.
    """
    edges = graph.to_edge_list().relabeled(perm)
    return CSRGraph.from_edge_list(edges, directed=graph.directed)


def degree_order_permutation(graph: CSRGraph, ascending: bool = True) -> np.ndarray:
    """Permutation that renumbers vertices by out-degree.

    ``ascending=True`` gives low-degree vertices small ids, the ordering used
    by degree-based triangle counting (each triangle is then found from its
    lowest-degree corner, which minimizes intersection work on skewed
    graphs).  Ties break by original id so the permutation is deterministic.
    """
    degrees = graph.out_degrees
    key = degrees if ascending else -degrees
    order = np.lexsort((np.arange(graph.num_vertices), key))
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices)
    return perm


def relabel_by_degree(graph: CSRGraph, ascending: bool = True) -> tuple[CSRGraph, np.ndarray]:
    """Relabel a graph by degree; returns ``(new_graph, perm)``."""
    perm = degree_order_permutation(graph, ascending=ascending)
    return permute(graph, perm), perm


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``vertices``; returns ``(subgraph, mapping)``.

    ``mapping[i]`` is the original id of subgraph vertex ``i``.  Used by the
    cache-tiling schedules (GraphIt Optimized PR) that partition the graph
    into cache-sized segments.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size and (vertices[0] < 0 or vertices[-1] >= graph.num_vertices):
        raise GraphFormatError("subgraph vertex id out of range")
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size)
    src, dst = graph.edge_array()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    weights = graph.weights[keep] if graph.weights is not None else None
    edges = EdgeList(vertices.size, remap[src[keep]], remap[dst[keep]], weights)
    # Build directed regardless of the parent graph: for an undirected parent
    # both orientations survive the filter, so the result is still symmetric.
    sub = CSRGraph.from_edge_list(edges, directed=True)
    if not graph.directed:
        sub = CSRGraph(
            sub.num_vertices,
            sub.indptr,
            sub.indices,
            sub.weights,
            sub.indptr,
            sub.indices,
            sub.weights,
            directed=False,
        )
    return sub, vertices


def lower_triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Per-vertex count of neighbors with a smaller id.

    This is the row-degree of ``tril(A, -1)``, used by triangle-counting
    implementations to estimate work per vertex.
    """
    src, dst = graph.edge_array()
    lower = src > dst
    return np.bincount(src[lower], minlength=graph.num_vertices)
