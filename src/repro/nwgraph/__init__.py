"""NWGraph: a generic graph library over range-of-ranges concepts.

Kernels follow Table III's NWGraph column: direction-optimizing BFS (with
a deliberately simple switching heuristic), delta-stepping SSSP (no bucket
fusion), Afforest CC, Gauss-Seidel PR, Brandes BC without direction
optimization, and order-invariant TC with an edge-list relabel and cyclic
row distribution.  Per the paper, NWGraph's Baseline-to-Optimized gains
came almost entirely from hyperthreading, which a sequential reproduction
cannot express (recorded as unmodelled); the one modelled Optimized tweak
is BFS's early-exit pull — otherwise both modes run identically here.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import nwgraph_bc
from .bfs import nwgraph_bfs
from .cc import nwgraph_cc
from .pagerank import nwgraph_pagerank
from .sssp import nwgraph_sssp
from .tc import nwgraph_tc

__all__ = [
    "NWGraphFramework",
    "nwgraph_bfs",
    "nwgraph_sssp",
    "nwgraph_cc",
    "nwgraph_pagerank",
    "nwgraph_bc",
    "nwgraph_tc",
]


class NWGraphFramework(Framework):
    """NWGraph as a Framework."""

    attributes = FrameworkAttributes(
        name="nwgraph",
        full_name="NWGraph",
        framework_type="header-only library",
        graph_structure="adjacency list as range of ranges",
        abstraction="range-centric w/ tuple edge properties",
        synchronization="algorithm-specific, level-synchronous",
        dependences="C++17, libtbb (original); NumPy (this reproduction)",
        intended_users="practicing C++ programmers",
        algorithms={
            "bfs": "Direction-optimizing (simple switch)",
            "sssp": "Delta-stepping",
            "cc": "Afforest",
            "pr": "Gauss-Seidel SpMV",
            "bc": "Brandes (no direction opt.)",
            "tc": "Order invariant, edge-list relabel, cyclic rows",
        },
        unmodelled=(
            "hyperthreading (the paper's entire Baseline->Optimized delta)",
            "TBB / std::async parallel backends",
        ),
    )

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        # Optimized mode stops each pull-range scan at the first frontier
        # parent via the shared early-exit kernel; Baseline full-scans.
        return nwgraph_bfs(graph, source, pull_early_exit=ctx.optimized)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return nwgraph_sssp(graph, source, delta=ctx.delta)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return nwgraph_pagerank(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        return nwgraph_cc(graph, seed=ctx.seed)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return nwgraph_bc(graph, sources)

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        return nwgraph_tc(undirected)
