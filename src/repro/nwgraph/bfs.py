"""NWGraph BFS: direction-optimizing with a simple, untuned switch.

The paper describes NWGraph's BFS as "a straightforward, initial
implementation with a simple direction optimized search and no fine tuning
of the switching criteria", and notes its performance is sensitive to that
heuristic.  We keep exactly that character: the switch is on frontier
*size* alone (no edge-count scouting like GAP's alpha test), with fixed
untuned thresholds.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.bitmap import Bitmap
from ..graphs import CSRGraph
from ..la import claim_first_writer
from ..la.spmv import masked_pull_claim
from ..ranges import AdjacencyView

__all__ = ["nwgraph_bfs"]

# Untuned size-based thresholds (fractions of |V|).
PULL_THRESHOLD = 0.05
PUSH_THRESHOLD = 0.01


def nwgraph_bfs(
    graph: CSRGraph, source: int, pull_early_exit: bool = False
) -> np.ndarray:
    """Direction-optimizing BFS over adjacency ranges; returns parents.

    The pull phase goes through the shared ``masked_pull_claim`` kernel
    (the in-adjacency range of every unvisited vertex, restricted to the
    frontier bitmap); ``pull_early_exit=True`` stops each range scan at
    the first frontier parent without changing the parents found.
    """
    n = graph.num_vertices
    out_view = AdjacencyView.out_edges(graph)
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    pulling = False

    while frontier.size:
        counters.add_round()
        fraction = frontier.size / n
        if not pulling and fraction > PULL_THRESHOLD:
            pulling = True
        elif pulling and fraction < PUSH_THRESHOLD:
            pulling = False
        if pulling:
            bits = Bitmap.from_indices(n, frontier)
            unvisited = np.flatnonzero(parents < 0)
            fresh, examined = masked_pull_claim(
                graph.in_indptr,
                graph.in_indices,
                unvisited,
                bits.bits,
                parents,
                early_exit=pull_early_exit,
            )
            counters.add_edges(examined)
            if fresh.size == 0:
                break
            frontier = fresh
        else:
            srcs, tgts = out_view.expand(frontier)
            counters.add_edges(tgts.size)
            unclaimed = parents[tgts] < 0
            srcs, tgts = srcs[unclaimed], tgts[unclaimed]
            if tgts.size == 0:
                break
            frontier = claim_first_writer(parents, tgts, srcs, n)
    return parents
