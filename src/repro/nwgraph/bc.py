"""NWGraph betweenness centrality: Brandes without direction optimization.

The paper: "The BC kernel did not use direction optimized breadth-first
search.  Performance, however, is still competitive, with the exception of
Road" — where the per-round range-view overheads (the analog of NWGraph's
STL-vector overheads) dominate the many short levels.  The forward pass is
push-only; the backward pass re-filters the adjacency by depth (no saved
successor structure).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import unique_ids
from ..ranges import AdjacencyView

__all__ = ["nwgraph_bc"]


def nwgraph_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Brandes BC from the given roots over range views."""
    n = graph.num_vertices
    view = AdjacencyView.out_edges(graph)
    scores = np.zeros(n, dtype=np.float64)

    for source in np.asarray(sources, dtype=np.int64):
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        depth[source] = 0
        sigma[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        levels = [frontier]
        level = 0
        while frontier.size:
            counters.add_round()
            srcs, tgts = view.expand(frontier)
            counters.add_edges(tgts.size)
            fresh_mask = depth[tgts] < 0
            depth[tgts[fresh_mask]] = level + 1
            on_next = depth[tgts] == level + 1
            np.add.at(sigma, tgts[on_next], sigma[srcs[on_next]])
            frontier = unique_ids(tgts[fresh_mask], n)
            if frontier.size:
                levels.append(frontier)
            level += 1

        delta = np.zeros(n, dtype=np.float64)
        for level_index in range(len(levels) - 2, -1, -1):
            counters.add_round()
            members = levels[level_index]
            srcs, tgts = view.expand(members)
            counters.add_edges(tgts.size)
            succ = depth[tgts] == depth[srcs] + 1
            srcs, tgts = srcs[succ], tgts[succ]
            if srcs.size:
                np.add.at(
                    delta, srcs, (sigma[srcs] / sigma[tgts]) * (1.0 + delta[tgts])
                )
        delta[source] = 0.0
        scores += delta
    return scores
