"""NWGraph SSSP: bulk-synchronous delta-stepping over edge-tuple ranges.

Managed in the original through TBB primitives rather than execution
policies; algorithmically it is plain delta-stepping — no bucket fusion —
so every same-bucket refill costs another synchronized sweep, which is why
the paper's NWGraph SSSP falls to 4.6% of reference on Road while staying
competitive (114%) on Kron.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import unique_ids
from ..ranges import AdjacencyView

__all__ = ["nwgraph_sssp"]


def nwgraph_sssp(graph: CSRGraph, source: int, delta: int = 16) -> np.ndarray:
    """Delta-stepping over (target, weight) tuple ranges; returns distances."""
    n = graph.num_vertices
    view = AdjacencyView.out_edges(graph)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    buckets: dict[int, list[np.ndarray]] = {0: [np.array([source], dtype=np.int64)]}

    while buckets:
        current = min(buckets)
        pending = buckets.pop(current)
        while pending:
            counters.add_round()
            members = np.unique(np.concatenate(pending))
            pending = []
            members = members[(dist[members] // delta).astype(np.int64) == current]
            if members.size == 0:
                continue
            srcs, tgts, weights = view.expand_with_properties(members)
            counters.add_edges(tgts.size)
            if tgts.size == 0:
                continue
            candidate = dist[srcs] + weights
            better = candidate < dist[tgts]
            tgts, candidate = tgts[better], candidate[better]
            if tgts.size == 0:
                continue
            np.minimum.at(dist, tgts, candidate)
            improved = unique_ids(tgts, n)
            landing = (dist[improved] // delta).astype(np.int64)
            for bucket in np.unique(landing):
                group = improved[landing == bucket]
                if bucket == current:
                    pending.append(group)
                else:
                    buckets.setdefault(int(bucket), []).append(group)
    return dist
