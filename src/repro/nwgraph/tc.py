"""NWGraph triangle counting: relabel on the edge list, cyclic row split.

Two NWGraph choices the paper highlights:

* the degree-sort **relabel is performed on the flat edge list** before
  compressing to CSR — "a much more efficient strategy than sorting and
  relabeling on the compressed graph" — and the relabel *is* timed while
  the final compression is not (GAP timing rules);
* rows are distributed **cyclically** across workers, which gave
  near-optimal load balance on skewed Web.  We keep the cyclic split as the
  unit of work (it also shapes the work counters) even though execution is
  sequential here.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph

__all__ = ["nwgraph_tc"]

NUM_CYCLIC_BLOCKS = 32


def nwgraph_tc(graph: CSRGraph) -> int:
    """Order-invariant TC with an edge-list relabel (always applied)."""
    n = graph.num_vertices
    src, dst = graph.edge_array()

    # Relabel on the edge list: rank vertices by ascending degree.
    degrees = np.bincount(src, minlength=n)
    order = np.lexsort((np.arange(n), degrees))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    src, dst = rank[src], rank[dst]

    # Keep the forward orientation and compress (compression untimed in the
    # original; a single vectorized pass here).
    keep = dst > src
    src, dst = src[keep], dst[keep]
    sort_order = np.lexsort((dst, src))
    src, dst = src[sort_order], dst[sort_order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    total = 0
    for block in range(NUM_CYCLIC_BLOCKS):
        rows = np.arange(block, n, NUM_CYCLIC_BLOCKS, dtype=np.int64)
        rows = rows[counts[rows] >= 2]
        for u in rows:
            row = dst[indptr[u]: indptr[u + 1]]
            starts, ends = indptr[row], indptr[row + 1]
            chunks = [dst[s:e] for s, e in zip(starts, ends) if e > s]
            if not chunks:
                continue
            targets = np.concatenate(chunks)
            counters.add_edges(targets.size + row.size)
            position = np.searchsorted(row, targets)
            position[position == row.size] = 0
            total += int((row[position] == targets).sum())
    return total
