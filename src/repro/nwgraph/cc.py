"""NWGraph connected components: Afforest with execution policies.

Table III lists NWGraph's CC as Afforest; the paper notes CC (with BC) is
one of the kernels NWGraph parallelizes purely through C++ execution
policies — the "hands-off" approach its authors consider a feature.  The
algorithm matches the GAP reference's three phases; only the substrate
(range views + std-style algorithms) differs.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.hooking import compress, converge, hook_pass, majority_component
from ..graphs import CSRGraph
from ..ranges import AdjacencyView

__all__ = ["nwgraph_cc"]

NEIGHBOR_ROUNDS = 2


def nwgraph_cc(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Afforest over range views; returns component labels."""
    n = graph.num_vertices
    out_view = AdjacencyView.out_edges(graph)
    comp = np.arange(n, dtype=np.int64)

    degrees = out_view.degrees()
    for k in range(NEIGHBOR_ROUNDS):
        counters.add_round()
        src = np.flatnonzero(degrees > k)
        dst = out_view.indices[out_view.indptr[src] + k]
        hook_pass(comp, src, dst)
    compress(comp)

    giant = majority_component(comp, np.random.default_rng(seed))
    outside = np.flatnonzero(comp != giant)
    counters.note("vertices_outside_giant", float(outside.size))
    if outside.size:
        src, dst = out_view.expand(outside)
        if graph.directed:
            in_view = AdjacencyView.in_edges(graph)
            src_in, dst_in = in_view.expand(outside)
            src = np.concatenate([src, src_in])
            dst = np.concatenate([dst, dst_in])
        converge(comp, src, dst)
    compress(comp)
    return comp
