"""NWGraph PageRank: Gauss-Seidel sweeps over in-edge ranges.

The paper: "NWGraph used the Gauss-Seidel algorithm and saw performance in
line with that observed for the other frameworks using that algorithm."
As with Galois, the in-place discipline is realized with blocked sweeps —
each block pulls the freshest scores — implemented here with the range
substrate's scan helpers.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..ranges import AdjacencyView, exclusive_scan

__all__ = ["nwgraph_pagerank"]

NUM_BLOCKS = 8


def nwgraph_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
    num_blocks: int = NUM_BLOCKS,
) -> np.ndarray:
    """Blocked Gauss-Seidel PageRank; returns converged scores."""
    n = graph.num_vertices
    in_view = AdjacencyView.in_edges(graph)
    out_degrees = graph.out_degrees.astype(np.float64)
    has_out = out_degrees > 0
    safe_degrees = np.where(has_out, out_degrees, 1.0)
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)

    bounds = np.linspace(0, n, num_blocks + 1, dtype=np.int64)
    for _ in range(max_iterations):
        counters.add_iteration()
        counters.add_edges(graph.num_edges)
        previous = scores.copy()
        for b in range(num_blocks):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            gathered = in_view.indices[in_view.indptr[lo]: in_view.indptr[hi]]
            contrib = np.where(
                has_out[gathered], scores[gathered] / safe_degrees[gathered], 0.0
            )
            # Row sums via exclusive scan: sum(row) = scan[end] - scan[start].
            scan = exclusive_scan(np.concatenate([contrib, [0.0]]))
            offsets = in_view.indptr[lo: hi + 1] - in_view.indptr[lo]
            sums = scan[offsets[1:]] - scan[offsets[:-1]]
            scores[lo:hi] = base + damping * sums
        change = float(np.abs(scores - previous).sum())
        if change < tolerance:
            break
    return scores
