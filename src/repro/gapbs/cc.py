"""GAP reference connected components: Afforest (Sutton et al., IPDPS'18).

Afforest exploits the fact that most real graphs have one giant component:

1. **Neighbor rounds** — link every vertex to its first few neighbors only
   (O(V) work), which is usually enough to form the giant component.
2. **Sampling** — guess the giant component's label from a vertex sample.
3. **Finish** — process the *remaining* edges only for vertices not already
   in the giant component, skipping the vast majority of edge work.

The paper highlights (following Sutton et al.) that the skip is least
effective on Urand, whose uniform topology leaves more vertices outside the
sampled component — our reproduction preserves that effect because phase 3's
work is measured per-edge.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.hooking import compress, converge, hook_pass, majority_component
from ..graphs import CSRGraph
from ..la import gather_edges

__all__ = ["afforest"]

NEIGHBOR_ROUNDS = 2


def _kth_neighbor_edges(graph: CSRGraph, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Edges (u, k-th out-neighbor of u) for vertices with degree > k."""
    has_kth = graph.out_degrees > k
    src = np.flatnonzero(has_kth)
    dst = graph.indices[graph.indptr[src] + k]
    return src, dst


def _remaining_edges(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All out- (and, for directed graphs, in-) edges of ``vertices``."""
    src_out, dst_out = gather_edges(graph.indptr, graph.indices, vertices)
    if not graph.directed:
        return src_out, dst_out
    # Weak connectivity on directed graphs also needs incoming edges.
    src_in, dst_in = gather_edges(graph.in_indptr, graph.in_indices, vertices)
    return np.concatenate([src_out, src_in]), np.concatenate([dst_out, dst_in])


def afforest(
    graph: CSRGraph,
    seed: int = 0,
    neighbor_rounds: int = NEIGHBOR_ROUNDS,
) -> np.ndarray:
    """Compute weakly connected component labels via Afforest."""
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)

    # Phase 1: link only the first `neighbor_rounds` neighbors of each vertex.
    for k in range(neighbor_rounds):
        counters.add_round()
        src, dst = _kth_neighbor_edges(graph, k)
        hook_pass(comp, src, dst)
    compress(comp)

    # Phase 2: identify the (probable) giant component by sampling.
    rng = np.random.default_rng(seed)
    giant = majority_component(comp, rng)

    # Phase 3: finish only the vertices outside the giant component,
    # iterating to convergence so every stray label is resolved.  Unlike the
    # C++ code (whose Link retries a CAS until the union lands) our hook
    # pass can lose contended unions, so the finish phase re-examines *all*
    # edges of outside vertices rather than skipping the neighbor rounds.
    outside = np.flatnonzero(comp != giant)
    counters.note("vertices_outside_giant", float(outside.size))
    if outside.size:
        src, dst = _remaining_edges(graph, outside)
        converge(comp, src, dst)
    compress(comp)
    return comp
