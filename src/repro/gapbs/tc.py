"""GAP reference triangle counting: order-invariant with heuristic relabel.

Each triangle is counted exactly once by orienting every undirected edge
from the lower-ranked to the higher-ranked endpoint and intersecting
forward-neighbor lists.  Ranking by degree (the relabel) makes the forward
lists of high-degree vertices short, which is a huge win on skewed graphs —
so, as in the reference code, a sampling heuristic decides whether the
relabel is worth its cost, and when applied the relabel time **is** counted
(a GAP benchmark rule the paper calls out).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation
from ..la.intersect import count_forward_triangles

__all__ = ["ordered_count", "worth_relabelling", "forward_adjacency", "triangle_count"]

RELABEL_SAMPLES = 1000
# Degree-skew threshold: relabel when the sampled mean degree is this many
# times the sampled median (gapbs uses the same style of sample test).
SKEW_RATIO = 2.0


def worth_relabelling(graph: CSRGraph, seed: int = 0) -> bool:
    """Sampling heuristic: is the degree distribution skewed enough?"""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(RELABEL_SAMPLES, n))]
    median = float(np.median(sample))
    mean = float(sample.mean())
    return mean > SKEW_RATIO * max(median, 1.0)


def forward_adjacency(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """CSR of edges oriented low id -> high id (each edge kept once)."""
    src, dst = graph.edge_array()
    keep = dst > src
    src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=graph.num_vertices)
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # edge_array emits rows in sorted order, so dst is already row-sorted.
    return indptr, dst


def ordered_count(indptr: np.ndarray, indices: np.ndarray) -> int:
    """Count triangles by intersecting forward lists.

    Both the blocked-vectorized substrate path and the pre-port per-vertex
    loop live in :func:`repro.la.intersect.count_forward_triangles`; the
    edge-work accounting (``targets.size + row.size`` per qualifying base
    vertex) is identical across the two.
    """
    total, examined = count_forward_triangles(indptr, indices)
    counters.add_edges(examined)
    return total


def triangle_count(graph: CSRGraph, seed: int = 0, force_relabel: bool | None = None) -> int:
    """GAP TC kernel: optional heuristic relabel, then ordered count.

    ``force_relabel`` overrides the heuristic (used by the ablation bench).
    The input must be undirected; the framework wrapper symmetrizes.
    """
    relabel = worth_relabelling(graph, seed) if force_relabel is None else force_relabel
    if relabel:
        counters.note("relabelled")
        # Ascending degree rank: hubs get high ids, hence short forward lists.
        perm = degree_order_permutation(graph, ascending=True)
        from ..graphs import permute

        graph = permute(graph, perm)
    indptr, indices = forward_adjacency(graph)
    return ordered_count(indptr, indices)
