"""GAP reference betweenness centrality: Brandes with saved successors.

Brandes' algorithm runs, per root, a forward BFS that counts shortest paths
(sigma) and a backward sweep that accumulates dependencies level by level.
The GAP reference records each vertex's *successors* during the forward
pass (in the C++ code, as a bitmap over edges) so the backward pass replays
exactly the shortest-path DAG instead of re-scanning and re-filtering the
adjacency — the optimization the paper credits for GAP beating Galois on
uniform graphs.  We keep the same structure: the forward pass stores the
per-level DAG edge arrays, and the backward pass consumes them directly.

Following the GAP benchmark, BC is approximated from a handful of roots
(4 per trial) and paths are counted on the unweighted directed graph.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import gather_edges, unique_ids

__all__ = ["brandes_bc", "brandes_forward", "brandes_backward"]


def brandes_forward(
    graph: CSRGraph, source: int
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray], list[tuple[np.ndarray, np.ndarray]]]:
    """BFS from ``source`` counting shortest paths.

    Returns ``(depth, sigma, levels, dag_edges)`` where ``levels[d]`` lists
    the vertices at depth ``d`` and ``dag_edges[d]`` holds the saved
    successor edges from depth ``d`` to ``d + 1``.
    """
    n = graph.num_vertices
    depth = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    depth[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels: list[np.ndarray] = [frontier]
    dag_edges: list[tuple[np.ndarray, np.ndarray]] = []

    level = 0
    while frontier.size:
        counters.add_round()
        sources, targets = gather_edges(graph.indptr, graph.indices, frontier)
        counters.add_edges(targets.size)
        undiscovered = depth[targets] < 0
        depth[targets[undiscovered]] = level + 1
        on_next = depth[targets] == level + 1
        succ_src, succ_dst = sources[on_next], targets[on_next]
        dag_edges.append((succ_src, succ_dst))
        np.add.at(sigma, succ_dst, sigma[succ_src])
        frontier = unique_ids(targets[undiscovered], n)
        if frontier.size:
            levels.append(frontier)
        level += 1
    return depth, sigma, levels, dag_edges


def brandes_backward(
    sigma: np.ndarray,
    levels: list[np.ndarray],
    dag_edges: list[tuple[np.ndarray, np.ndarray]],
    scores: np.ndarray,
    source: int,
) -> None:
    """Accumulate dependencies over the saved DAG into ``scores``."""
    delta = np.zeros_like(sigma)
    for level in range(len(levels) - 2, -1, -1):
        counters.add_round()
        succ_src, succ_dst = dag_edges[level]
        counters.add_edges(succ_src.size)
        if succ_src.size:
            contributions = (sigma[succ_src] / sigma[succ_dst]) * (1.0 + delta[succ_dst])
            np.add.at(delta, succ_src, contributions)
    delta[source] = 0.0
    scores += delta


def brandes_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Approximate BC by accumulating Brandes dependencies from ``sources``."""
    scores = np.zeros(graph.num_vertices, dtype=np.float64)
    for source in np.asarray(sources, dtype=np.int64):
        depth, sigma, levels, dag_edges = brandes_forward(graph, int(source))
        del depth
        brandes_backward(sigma, levels, dag_edges, scores, int(source))
    return scores
