"""GAP reference BFS: direction-optimizing (Beamer et al., SC'12).

The reference alternates between two strategies per round:

* **push** (top-down): expand the sparse frontier's out-edges, claiming
  unvisited targets (first writer wins, mirroring the CAS in the C++ code);
* **pull** (bottom-up): every unvisited vertex scans its *in*-neighbors for
  a frontier member and adopts the first one found as parent.

The switch uses GAP's two heuristics: go bottom-up when the frontier's
outgoing edge count exceeds ``edges_remaining / alpha``, and back top-down
when the frontier shrinks below ``n / beta``.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.bitmap import Bitmap
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph

__all__ = ["direction_optimizing_bfs", "push_step", "pull_step"]

# GAP reference defaults (gapbs bfs.cc).
ALPHA = 15
BETA = 18


def push_step(
    graph: CSRGraph, frontier: np.ndarray, parents: np.ndarray
) -> np.ndarray:
    """Top-down step: returns the next frontier, updating ``parents``.

    First-writer-wins parent assignment, like the compare-and-swap in the
    reference code: of all frontier edges into an unvisited target, the one
    appearing first claims it.
    """
    sources, targets = expand_frontier(graph.indptr, graph.indices, frontier)
    counters.add_edges(targets.size)
    unvisited = parents[targets] < 0
    sources, targets = sources[unvisited], targets[unvisited]
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    fresh, first = np.unique(targets, return_index=True)
    parents[fresh] = sources[first]
    return fresh


def pull_step(
    graph: CSRGraph, frontier_bits: Bitmap, parents: np.ndarray
) -> np.ndarray:
    """Bottom-up step: unvisited vertices search in-neighbors for a parent.

    Scans the full in-adjacency of every unvisited vertex (the vectorized
    equivalent of the reference's early-exit scan; the work counted is the
    worst case, which is what the bitmap layout pays for in exchange for
    avoiding atomics).
    """
    unvisited = np.flatnonzero(parents < 0)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64)
    sources, targets = expand_frontier(graph.in_indptr, graph.in_indices, unvisited)
    counters.add_edges(targets.size)
    hits = frontier_bits.contains(targets)
    sources, targets = sources[hits], targets[hits]
    if sources.size == 0:
        return np.empty(0, dtype=np.int64)
    fresh, first = np.unique(sources, return_index=True)
    parents[fresh] = targets[first]
    return fresh


def direction_optimizing_bfs(
    graph: CSRGraph,
    source: int,
    alpha: int = ALPHA,
    beta: int = BETA,
) -> np.ndarray:
    """Full direction-optimizing BFS; returns the GAP parent array.

    ``alpha <= 0`` disables the bottom-up switch entirely (pure push),
    which the threshold-sensitivity sweep uses as its baseline.
    """
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    out_degrees = graph.out_degrees
    edges_remaining = graph.num_edges

    while frontier.size:
        counters.add_round()
        scout_count = int(out_degrees[frontier].sum())
        edges_remaining -= scout_count
        if alpha > 0 and scout_count > max(edges_remaining, 1) // alpha:
            # Bottom-up regime: loop pull steps until the frontier is small.
            counters.note("direction_switches")
            frontier_bits = Bitmap.from_indices(n, frontier)
            while frontier.size and frontier.size > n // beta:
                frontier = pull_step(graph, frontier_bits, parents)
                frontier_bits = Bitmap.from_indices(n, frontier)
                counters.add_round()
            if frontier.size == 0:
                break
        frontier = push_step(graph, frontier, parents)
    return parents
