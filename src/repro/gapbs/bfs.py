"""GAP reference BFS: direction-optimizing (Beamer et al., SC'12).

The reference alternates between two strategies per round:

* **push** (top-down): expand the sparse frontier's out-edges, claiming
  unvisited targets (first writer wins, mirroring the CAS in the C++ code);
* **pull** (bottom-up): every unvisited vertex scans its *in*-neighbors for
  a frontier member and adopts the first one found as parent.

The switch uses GAP's two heuristics: go bottom-up when the frontier's
outgoing edge count exceeds ``edges_remaining / alpha``, and back top-down
when the frontier shrinks below ``n / beta``.  Both step kernels sit on the
:mod:`repro.la` substrate; the ALPHA/BETA policy itself lives in
:class:`repro.la.DirectionOptimizer` so the other frameworks share it.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.bitmap import Bitmap
from ..graphs import CSRGraph
from ..la import DirectionOptimizer, claim_first_writer, gather_edges, masked_pull_claim
from ..la.direction import ALPHA, BETA

__all__ = ["direction_optimizing_bfs", "push_step", "pull_step"]


def push_step(
    graph: CSRGraph, frontier: np.ndarray, parents: np.ndarray
) -> np.ndarray:
    """Top-down step: returns the next frontier, updating ``parents``.

    First-writer-wins parent assignment, like the compare-and-swap in the
    reference code: of all frontier edges into an unvisited target, the one
    appearing first claims it.
    """
    sources, targets = gather_edges(graph.indptr, graph.indices, frontier)
    counters.add_edges(targets.size)
    unvisited = parents[targets] < 0
    sources, targets = sources[unvisited], targets[unvisited]
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    return claim_first_writer(parents, targets, sources, graph.num_vertices)


def pull_step(
    graph: CSRGraph,
    frontier_bits: Bitmap,
    parents: np.ndarray,
    early_exit: bool = False,
) -> np.ndarray:
    """Bottom-up step: unvisited vertices search in-neighbors for a parent.

    By default every unvisited vertex scans its full in-adjacency — the
    bitmap layout's worst case, kept as the counter-parity baseline.  With
    ``early_exit`` the substrate's chunked scan stops paying for a vertex
    once a frontier in-neighbor is found (the vectorized analog of the
    reference C++ ``break``), which strictly reduces ``edges_examined``
    without changing any parent.
    """
    unvisited = np.flatnonzero(parents < 0)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64)
    fresh, examined = masked_pull_claim(
        graph.in_indptr,
        graph.in_indices,
        unvisited,
        frontier_bits.bits,
        parents,
        early_exit=early_exit,
    )
    counters.add_edges(examined)
    return fresh


def direction_optimizing_bfs(
    graph: CSRGraph,
    source: int,
    alpha: int = ALPHA,
    beta: int = BETA,
    pull_early_exit: bool = False,
) -> np.ndarray:
    """Full direction-optimizing BFS; returns the GAP parent array.

    ``alpha <= 0`` disables the bottom-up switch entirely (pure push),
    which the threshold-sensitivity sweep uses as its baseline.
    ``pull_early_exit`` opts in to the reduced-work bottom-up scan (it
    changes the *counted* work, so the default stays off for parity with
    the legacy accounting).
    """
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    out_degrees = graph.out_degrees
    policy = DirectionOptimizer(n, graph.num_edges, alpha=max(alpha, 1), beta=beta)

    while frontier.size:
        counters.add_round()
        scout_count = policy.scout_count(out_degrees, frontier)
        policy.charge(scout_count)
        if alpha > 0 and policy.wants_pull(scout_count):
            # Bottom-up regime: loop pull steps until the frontier is small.
            counters.note("direction_switches")
            frontier_bits = Bitmap.from_indices(n, frontier)
            while frontier.size and not policy.frontier_is_small(frontier.size):
                frontier = pull_step(
                    graph, frontier_bits, parents, early_exit=pull_early_exit
                )
                frontier_bits = Bitmap.from_indices(n, frontier)
                counters.add_round()
            if frontier.size == 0:
                break
        frontier = push_step(graph, frontier, parents)
    return parents
