"""GAP reference SSSP: delta-stepping with bucket fusion.

Delta-stepping (Meyer & Sanders) partitions tentative distances into
buckets of width ``delta`` and settles buckets in priority order.  The GAP
reference additionally incorporates GraphIt's *bucket fusion* optimization
(Zhang et al., CGO'20): when relaxations re-populate the **current** bucket,
the refill is processed immediately in a tight local loop instead of paying
a global synchronization round.  Without fusion, every same-bucket refill
costs a full round — on a high-diameter graph like Road that is thousands
of extra rounds, which is exactly the effect the paper measures.

``delta_stepping(..., bucket_fusion=False)`` exposes the unfused variant
for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import gather_edges_weighted, relax_minimum

__all__ = ["delta_stepping"]

# When a same-bucket refill is larger than this, a real implementation
# re-balances across threads (a synchronization); fused processing only
# happens below the threshold, per the GraphIt paper's load-balance guard.
FUSION_THRESHOLD = 1024


def _relax(
    graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray
) -> np.ndarray:
    """Relax all out-edges of ``frontier``; returns vertices that improved."""
    sources, targets, weights = gather_edges_weighted(
        graph.indptr, graph.indices, graph.weights, frontier
    )
    counters.add_edges(targets.size)
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    candidate = dist[sources] + weights
    better = candidate < dist[targets]
    targets, candidate = targets[better], candidate[better]
    return relax_minimum(dist, targets, candidate, graph.num_vertices)


def delta_stepping(
    graph: CSRGraph,
    source: int,
    delta: int = 16,
    bucket_fusion: bool = True,
) -> np.ndarray:
    """Compute shortest-path distances from ``source``.

    Args:
        graph: A weighted graph (``graph.weights`` must be set).
        source: Root vertex.
        delta: Bucket width; GAP allows tuning this per graph even under
            Baseline rules because it changes performance by orders of
            magnitude.
        bucket_fusion: Process same-bucket refills immediately (the GAP
            reference behaviour).  Disable for the ablation.

    Returns:
        float64 distances, ``inf`` for unreachable vertices.
    """
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    # Buckets stored sparsely: map bucket index -> list of member arrays
    # (lazy deletion: membership re-checked against dist when popped).
    buckets: dict[int, list[np.ndarray]] = {0: [np.array([source], dtype=np.int64)]}

    while buckets:
        current = min(buckets)
        pending = buckets.pop(current)
        while pending:
            counters.add_round()
            members = np.unique(np.concatenate(pending))
            pending = []
            # Lazy deletion: keep only vertices still in this bucket.
            in_bucket = (dist[members] // delta).astype(np.int64) == current
            frontier = members[in_bucket]
            if frontier.size == 0:
                continue
            improved = _relax(graph, frontier, dist)
            if improved.size == 0:
                continue
            new_bucket = (dist[improved] // delta).astype(np.int64)
            same = new_bucket == current
            refills = improved[same]
            others, other_buckets = improved[~same], new_bucket[~same]
            for later in np.unique(other_buckets):
                buckets.setdefault(int(later), []).append(others[other_buckets == later])
            if refills.size == 0:
                continue
            if bucket_fusion and refills.size <= FUSION_THRESHOLD:
                # Fused: drain the refill right now without a global round.
                while refills.size and refills.size <= FUSION_THRESHOLD:
                    counters.note("fused_rounds")
                    improved = _relax(graph, refills, dist)
                    nb = (dist[improved] // delta).astype(np.int64)
                    same = nb == current
                    others, other_buckets = improved[~same], nb[~same]
                    for later in np.unique(other_buckets):
                        buckets.setdefault(int(later), []).append(others[other_buckets == later])
                    refills = improved[same]
                if refills.size:
                    pending.append(refills)
            else:
                pending.append(refills)
    return dist
