"""The GAP Benchmark Suite reference implementations (`gapbs` analog).

Direct, hand-written kernels that serve as the study's performance
baseline: every Table V percentage is another framework's time relative to
these.  Algorithms follow Table III's GAP column: direction-optimizing BFS,
delta-stepping SSSP with bucket fusion, Afforest CC, Jacobi SpMV PR,
Brandes BC with saved successors, and order-invariant TC with a
heuristic-controlled relabel.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import brandes_bc
from .bfs import direction_optimizing_bfs
from .cc import afforest
from .pagerank import jacobi_pagerank
from .sssp import delta_stepping
from .tc import triangle_count as ordered_triangle_count

__all__ = ["GAPReference", "direction_optimizing_bfs", "delta_stepping",
           "jacobi_pagerank", "afforest", "brandes_bc", "ordered_triangle_count"]


class GAPReference(Framework):
    """The GAP reference implementations as a Framework."""

    attributes = FrameworkAttributes(
        name="gap",
        full_name="GAP Benchmark Suite reference",
        framework_type="direct implementations",
        graph_structure="outgoing & incoming edges",
        abstraction="vertex-centric",
        synchronization="level-synchronous",
        dependences="C++11, OpenMP (original); NumPy (this reproduction)",
        intended_users="researchers, benchmarkers",
        algorithms={
            "bfs": "Direction-optimizing",
            "sssp": "Delta-stepping + bucket fusion",
            "cc": "Afforest",
            "pr": "Jacobi SpMV",
            "bc": "Brandes (saved successors)",
            "tc": "Order invariant + heuristic relabel",
        },
        unmodelled=("OpenMP thread parallelism",),
    )

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        # Optimized runs may stop each pull-row scan at the first frontier
        # hit; Baseline keeps the full-scan edge counts for parity with the
        # paper's instrumentation.
        return direction_optimizing_bfs(graph, source, pull_early_exit=ctx.optimized)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return delta_stepping(graph, source, delta=ctx.delta)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return jacobi_pagerank(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        return afforest(graph, seed=ctx.seed)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return brandes_bc(graph, sources)

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        return ordered_triangle_count(undirected, seed=ctx.seed)
