"""GAP reference PageRank: pull-based Jacobi SpMV iteration.

Each iteration computes, for every vertex, the damped sum of the previous
iteration's contributions of its in-neighbors (a sparse matrix-vector
product against the transposed adjacency).  All updates read the *previous*
vector — the Jacobi discipline — which the paper contrasts with the
Gauss-Seidel variants used by Galois, GKC, and NWGraph that converge in
fewer iterations.  Convergence is declared when the L1 norm of the change
drops below the tolerance (the GAP reference's criterion).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import plus_times_operator

__all__ = ["jacobi_pagerank", "segment_sums"]


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of a CSR-gathered value array (empty rows give 0)."""
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    return prefix[indptr[1:]] - prefix[indptr[:-1]]


def jacobi_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
) -> np.ndarray:
    """PageRank by pull-based Jacobi iteration; returns float64 scores.

    Vertices with no out-edges contribute nothing (the GAP reference's
    dangling-mass behaviour); every framework here follows the same
    convention so results are comparable.
    """
    n = graph.num_vertices
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    out_degrees = graph.out_degrees.astype(np.float64)
    safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
    # The pull SpMV over the in-adjacency, built once and applied every
    # Jacobi sweep (substrate-optimized path: SciPy's compiled matvec;
    # reference path: the original gather + prefix-sum segment_sums).
    pull = plus_times_operator(graph.in_indptr, graph.in_indices)

    for _ in range(max_iterations):
        counters.add_iteration()
        counters.add_edges(graph.num_edges)
        contrib = np.where(out_degrees > 0, scores / safe_degrees, 0.0)
        new_scores = base + damping * pull(contrib)
        change = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if change < tolerance:
            break
    return scores
