"""Road-network analog generator — the GAP "Road" substitute.

GAP's Road input is the USA road network: directed, bounded degree
(average 2.4), and an enormous diameter (6,304 hops at 24 M vertices).  Its
role in the study is to stress per-iteration overheads: frontier-based
kernels need thousands of tiny rounds, so frameworks with heavy round setup
costs collapse on it, while asynchronous execution (Galois) shines.

We reproduce that topology class with a perturbed rectangular lattice:

* vertices form a ``height x width`` grid (planar, like a road map);
* each lattice edge survives with probability ``keep_probability`` (drops
  the average degree below 4, toward Road's 2.4);
* most surviving edges are two-way streets (both directions present), a
  small fraction are one-way, making the graph *directed* like Road;
* a sprinkle of short "diagonal" connectors keeps the giant component large
  without shrinking the Θ(width + height) diameter.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidValueError
from ..graphs import EdgeList

__all__ = ["road_edges"]


def road_edges(
    scale: int,
    rng: np.random.Generator,
    keep_probability: float = 0.72,
    one_way_fraction: float = 0.12,
    connector_fraction: float = 0.02,
) -> EdgeList:
    """Generate a road-like directed edge list over ``~2**scale`` vertices.

    The grid is made wide (aspect ratio 4:1) so the diameter is dominated by
    the long axis, exaggerating the many-round behaviour that makes Road the
    hardest input in the paper.
    """
    if scale < 2:
        raise InvalidValueError("road generator needs scale >= 2")
    if not 0.0 < keep_probability <= 1.0:
        raise InvalidValueError("keep_probability must be in (0, 1]")
    n = 1 << scale
    height = max(2, int(np.sqrt(n / 4)))
    width = n // height
    n = height * width

    grid = np.arange(n, dtype=np.int64).reshape(height, width)
    horizontal_src = grid[:, :-1].ravel()
    horizontal_dst = grid[:, 1:].ravel()
    vertical_src = grid[:-1, :].ravel()
    vertical_dst = grid[1:, :].ravel()
    src = np.concatenate([horizontal_src, vertical_src])
    dst = np.concatenate([horizontal_dst, vertical_dst])

    keep = rng.random(src.size) < keep_probability
    src, dst = src[keep], dst[keep]

    # Short diagonal connectors: join (r, c) to (r+1, c+1) for a few cells.
    num_connectors = int(connector_fraction * n)
    if num_connectors and height > 1 and width > 1:
        rows = rng.integers(0, height - 1, size=num_connectors)
        cols = rng.integers(0, width - 1, size=num_connectors)
        src = np.concatenate([src, grid[rows, cols]])
        dst = np.concatenate([dst, grid[rows + 1, cols + 1]])

    # Two-way streets by default; a fraction stay one-way (random direction).
    one_way = rng.random(src.size) < one_way_fraction
    flip = rng.random(src.size) < 0.5
    forward_src = np.where(one_way & flip, dst, src)
    forward_dst = np.where(one_way & flip, src, dst)
    back_src = forward_dst[~one_way]
    back_dst = forward_src[~one_way]
    all_src = np.concatenate([forward_src, back_src])
    all_dst = np.concatenate([forward_dst, back_dst])
    return EdgeList(n, all_src, all_dst)
