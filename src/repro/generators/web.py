"""Web-crawl analog generator — the GAP "Web" substitute.

GAP's Web input is a crawl of the .sk domain: directed, power-law out-degree
(average 38.1), but — unlike Twitter — with strong *locality* (pages link
within their site) and a much larger diameter (135).  In the paper this
shows up as good cache behaviour (GraphIt notes Web "had good locality") and
heavy skew that rewards work-stealing (Galois TC wins on Web).

We reproduce the class with a banded power-law digraph:

* vertices are laid out in crawl order; a page's links are mostly to pages
  within a locality window around it (same-site links);
* out-degrees are Zipf-distributed with a heavy tail (index pages with
  thousands of links);
* a small fraction of links are global, keeping the graph one component
  while leaving the diameter ~(n / window), i.e. tens-to-hundreds of hops.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidValueError
from ..graphs import EdgeList

__all__ = ["web_edges"]


def web_edges(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    window_divisor: int = 256,
    global_fraction: float = 0.0001,
    zipf_exponent: float = 1.6,
) -> EdgeList:
    """Generate a web-like directed edge list over ``2**scale`` vertices.

    Args:
        scale: log2 of the vertex count.
        edge_factor: average out-degree.
        rng: NumPy random generator.
        window_divisor: locality window is ``n / window_divisor``; larger
            divisors mean tighter locality and a larger diameter.
        global_fraction: fraction of links that escape the window.
        zipf_exponent: tail exponent of the out-degree distribution.
    """
    if scale < 4:
        raise InvalidValueError("web generator needs scale >= 4")
    n = 1 << scale
    # Window floor keeps hub pages possible at small (test) scales; at the
    # benchmark scales (n >= 4096) the divisor term dominates.
    window = max(32, n // window_divisor)

    # Heavy-tailed out-degrees with the requested mean: draw Zipf variates,
    # clip to the graph size, then scale to hit the target average degree.
    raw = rng.zipf(zipf_exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, n / 4)
    out_degrees = np.maximum(
        1, np.round(raw * (edge_factor / raw.mean()))
    ).astype(np.int64)
    out_degrees = np.minimum(out_degrees, n - 1)

    src = np.repeat(np.arange(n, dtype=np.int64), out_degrees)
    num_edges = int(src.size)

    # Local targets: offset within +-window of the source (site-local links).
    # A hub page whose degree exceeds the window's capacity spills its excess
    # links into a wider band (a big index page links across many sites) —
    # this keeps the degree tail heavy instead of clipping it at 2*window.
    edge_rank = np.arange(num_edges, dtype=np.int64) - np.repeat(
        np.cumsum(out_degrees) - out_degrees, out_degrees
    )
    band = np.where(edge_rank < window, window, np.minimum(window * 2, n // 2))
    offsets = np.rint(rng.uniform(-1.0, 1.0, size=num_edges) * band).astype(np.int64)
    local_dst = np.mod(src + offsets, n)

    # Global targets: uniform — with a bias toward hub pages (low raw ids
    # after the permutation below would be meaningless, so bias by degree).
    global_dst = rng.integers(0, n, size=num_edges, dtype=np.int64)
    is_global = rng.random(num_edges) < global_fraction
    dst = np.where(is_global, global_dst, local_dst)
    return EdgeList(n, src, dst)
