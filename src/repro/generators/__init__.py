"""Generators for the five GAP benchmark graph analogs (Table I).

Each generator reproduces one topology class from the paper's corpus:
``road`` (high diameter, bounded degree), ``twitter`` (power-law, directed),
``web`` (power-law with locality), ``kron`` (Graph500 Kronecker), and
``urand`` (Erdős–Rényi).  See DESIGN.md §2 for the substitution rationale.
"""

from .registry import (
    DEFAULT_SCALE,
    GAP_GRAPHS,
    GENERATOR_VERSION,
    GRAPH_NAMES,
    GraphSpec,
    build_corpus,
    build_graph,
    weighted_version,
)
from .rmat import GRAPH500_INITIATOR, rmat_edges
from .road import road_edges
from .twitter import TWITTER_INITIATOR, twitter_edges
from .urand import urand_edges
from .web import web_edges

__all__ = [
    "DEFAULT_SCALE",
    "GAP_GRAPHS",
    "GENERATOR_VERSION",
    "GRAPH_NAMES",
    "GRAPH500_INITIATOR",
    "GraphSpec",
    "TWITTER_INITIATOR",
    "build_corpus",
    "build_graph",
    "rmat_edges",
    "road_edges",
    "twitter_edges",
    "urand_edges",
    "web_edges",
    "weighted_version",
]
