"""Uniform random (Erdős–Rényi) graph generator — the GAP "Urand" analog.

GAP's Urand is an Erdős–Rényi G(n, m) graph with n = 2**27 and average
degree 16: every edge endpoint is drawn uniformly.  Its degree distribution
is binomial ("normal" in Table I) and its diameter is tiny, which is exactly
the regime where sampling-based connected-components algorithms (Afforest)
lose their advantage — an effect the paper reproduces from Sutton et al.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidValueError
from ..graphs import EdgeList

__all__ = ["urand_edges"]


def urand_edges(scale: int, edge_factor: int, rng: np.random.Generator) -> EdgeList:
    """Sample ``edge_factor * 2**scale`` uniform edges over ``2**scale`` vertices.

    Endpoints are i.i.d. uniform, as in the GAP generator; duplicates and
    self-loops are possible and removed later at CSR construction.
    """
    if scale < 0 or edge_factor <= 0:
        raise InvalidValueError("scale must be >= 0 and edge_factor positive")
    n = 1 << scale
    num_edges = edge_factor << scale
    src = rng.integers(0, n, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, n, size=num_edges, dtype=np.int64)
    return EdgeList(n, src, dst)
