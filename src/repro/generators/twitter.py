"""Social-network analog generator — the GAP "Twitter" substitute.

GAP's Twitter input is the 2010 follow graph: directed, power-law in- and
out-degrees, average degree 23.8, diameter 14.  Its role in the study is the
classic scale-free regime: a tiny diameter (few frontier rounds) but extreme
degree skew (celebrity vertices), stressing load balancing and the pull
phase of direction-optimizing traversals.

We realize it as a *directed* R-MAT graph with a more skewed initiator than
Graph500's (pushing more probability mass into the hub quadrant raises the
degree skew, mimicking follower celebrities), without symmetrization.
"""

from __future__ import annotations

import numpy as np

from ..graphs import EdgeList
from .rmat import rmat_edges

__all__ = ["twitter_edges", "TWITTER_INITIATOR"]

# More skew than Graph500 — celebrity accounts concentrate in-links.
TWITTER_INITIATOR: tuple[float, float, float, float] = (0.62, 0.18, 0.15, 0.05)


def twitter_edges(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
) -> EdgeList:
    """Generate a Twitter-like directed power-law edge list."""
    edges = rmat_edges(scale, edge_factor, rng, initiator=TWITTER_INITIATOR)
    # Follow links are asymmetric; drop an arbitrary slice of reciprocal
    # pairs so the graph is not accidentally near-symmetric.
    keep = rng.random(edges.num_edges) < 0.95
    return EdgeList(edges.num_vertices, edges.src[keep], edges.dst[keep])
