"""Registry of the five GAP benchmark graphs (scaled-down analogs).

Table I of the paper defines the corpus: Road, Twitter, Web, Kron, Urand —
chosen for topological diversity.  This registry maps each name to a
generator producing a scaled-down synthetic analog with the same topology
*class* (directedness, degree-distribution shape, relative diameter), plus
the paper's original statistics for side-by-side reporting.

A ``GraphSpec`` also records the paper's Table I row so the Table I bench
can print paper-vs-generated columns.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import UnknownGraphError
from ..graphs import CSRGraph, EdgeList
from .rmat import rmat_edges
from .road import road_edges
from .twitter import twitter_edges
from .urand import urand_edges
from .web import web_edges

__all__ = [
    "GraphSpec",
    "GAP_GRAPHS",
    "GRAPH_NAMES",
    "build_graph",
    "build_corpus",
    "weighted_version",
    "DEFAULT_SCALE",
    "GENERATOR_VERSION",
]

# Default scale for the analog corpus: 2**13 = 8192 vertices keeps the full
# 6-kernel x 5-graph x 6-framework sweep tractable in pure Python while
# leaving every topology contrast (diameter, skew) intact.
DEFAULT_SCALE = 13

# Version of the corpus generators, part of every on-disk graph-cache key
# (see repro.graphs.cache).  Bump whenever a change to any generator, to
# weighted_version, or to CSR construction alters generated graphs, so
# stale cached corpora are invalidated instead of silently reused.
GENERATOR_VERSION = "1"


@dataclass(frozen=True)
class GraphSpec:
    """One row of the benchmark corpus.

    Attributes:
        name: Corpus name (lowercase key).
        description: Table I description.
        directed: Whether the analog (and original) is directed.
        edge_factor: Average degree target for the generator.
        build_edges: Generator function ``(scale, edge_factor, rng) -> EdgeList``.
        paper_vertices_m / paper_edges_m / paper_degree / paper_distribution /
        paper_diameter: the original Table I statistics.
    """

    name: str
    description: str
    directed: bool
    edge_factor: int
    build_edges: Callable[[int, int, np.random.Generator], EdgeList]
    paper_vertices_m: float
    paper_edges_m: float
    paper_degree: float
    paper_distribution: str
    paper_diameter: int

    def build(self, scale: int = DEFAULT_SCALE, seed: int = 0) -> CSRGraph:
        """Generate the analog graph at ``2**scale`` vertices.

        Seeding mixes a deterministic digest of the graph name (``zlib.crc32``
        — Python's built-in ``hash`` is process-salted and would make corpora
        irreproducible across runs) with the caller's seed.
        """
        name_digest = zlib.crc32(self.name.encode("ascii")) & 0xFFFF
        rng = np.random.default_rng(np.random.SeedSequence([name_digest, seed]))
        edges = self.build_edges(scale, self.edge_factor, rng)
        return CSRGraph.from_edge_list(edges, directed=self.directed)


def _road_builder(scale: int, edge_factor: int, rng: np.random.Generator) -> EdgeList:
    del edge_factor  # Road's degree comes from lattice structure, not a knob.
    return road_edges(scale, rng)


GAP_GRAPHS: dict[str, GraphSpec] = {
    "road": GraphSpec(
        name="road",
        description="Roads of USA (analog: perturbed planar lattice)",
        directed=True,
        edge_factor=3,
        build_edges=_road_builder,
        paper_vertices_m=23.9,
        paper_edges_m=57.7,
        paper_degree=2.4,
        paper_distribution="bounded",
        paper_diameter=6304,
    ),
    "twitter": GraphSpec(
        name="twitter",
        description="Twitter follow links (analog: skewed directed R-MAT)",
        directed=True,
        edge_factor=16,
        build_edges=twitter_edges,
        paper_vertices_m=61.6,
        paper_edges_m=1468.4,
        paper_degree=23.8,
        paper_distribution="power",
        paper_diameter=14,
    ),
    "web": GraphSpec(
        name="web",
        description="Web crawl of .sk domain (analog: banded power-law digraph)",
        directed=True,
        edge_factor=32,
        build_edges=web_edges,
        paper_vertices_m=50.6,
        paper_edges_m=1930.3,
        paper_degree=38.1,
        paper_distribution="power",
        paper_diameter=135,
    ),
    "kron": GraphSpec(
        name="kron",
        description="Kronecker synthetic graph (Graph500 initiator)",
        directed=False,
        edge_factor=8,
        build_edges=rmat_edges,
        paper_vertices_m=134.2,
        paper_edges_m=2111.6,
        paper_degree=15.7,
        paper_distribution="power",
        paper_diameter=6,
    ),
    "urand": GraphSpec(
        name="urand",
        description="Uniform random graph (Erdos-Renyi)",
        directed=False,
        edge_factor=8,
        build_edges=urand_edges,
        paper_vertices_m=134.2,
        paper_edges_m=2147.5,
        paper_degree=16.0,
        paper_distribution="normal",
        paper_diameter=7,
    ),
}

GRAPH_NAMES: tuple[str, ...] = tuple(GAP_GRAPHS)


def build_graph(name: str, scale: int = DEFAULT_SCALE, seed: int = 0) -> CSRGraph:
    """Build one corpus graph by name, or load a dataset reference.

    ``name`` may also be a dataset reference (``file:/path/to/x.mtx`` or
    ``dataset:NAME`` — see :mod:`repro.graphs.datasets`), in which case the
    file defines the topology and ``scale``/``seed`` are ignored here
    (``seed`` still keys the synthetic SSSP weights derived later by
    :func:`weighted_version`).
    """
    from ..graphs.datasets import is_dataset_ref, load_dataset_graph

    if is_dataset_ref(name):
        return load_dataset_graph(name)
    try:
        spec = GAP_GRAPHS[name.lower()]
    except KeyError:
        raise UnknownGraphError(
            f"unknown graph {name!r}; expected one of {GRAPH_NAMES}"
        ) from None
    return spec.build(scale=scale, seed=seed)


def build_corpus(scale: int = DEFAULT_SCALE, seed: int = 0) -> dict[str, CSRGraph]:
    """Build the full five-graph corpus at a common scale."""
    return {name: spec.build(scale=scale, seed=seed) for name, spec in GAP_GRAPHS.items()}


def weighted_version(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Attach GAP-style uniform integer weights in [1, 255] for SSSP.

    The GAP benchmark runs SSSP on weighted versions of the same graphs,
    generating weights uniformly at random; symmetric edge pairs share one
    weight so undirected graphs stay consistent.
    """
    if graph.is_weighted:
        return graph
    rng = np.random.default_rng(np.random.SeedSequence([0x5E55, seed]))
    edges = graph.to_edge_list().with_uniform_weights(rng)
    return CSRGraph.from_edge_list(edges, directed=graph.directed)
