"""Kronecker / R-MAT edge generator (Graph500 style).

The GAP "Kron" input is a scale-27 Graph500 Kronecker graph with initiator
probabilities (A, B, C, D) = (0.57, 0.19, 0.19, 0.05) and average degree 16.
This module implements the recursive-quadrant sampling procedure (R-MAT,
which Graph500 uses to realize Kronecker graphs) fully vectorized: every bit
of every endpoint is drawn in one NumPy pass over all edges.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidValueError
from ..graphs import EdgeList

__all__ = ["rmat_edges", "GRAPH500_INITIATOR"]

# Graph500 initiator matrix probabilities: quadrants (0,0), (0,1), (1,0), (1,1).
GRAPH500_INITIATOR: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
    noise: float = 0.1,
) -> EdgeList:
    """Sample ``edge_factor * 2**scale`` R-MAT edges over ``2**scale`` vertices.

    Args:
        scale: log2 of the vertex count.
        edge_factor: average undirected degree (edges sampled = n * factor).
        rng: NumPy random generator (determinism is the caller's business).
        initiator: quadrant probabilities (a, b, c, d); must sum to 1.
        noise: per-level multiplicative jitter ("smooth Kronecker"), which
            Graph500 uses to avoid exact self-similarity artifacts.

    Returns:
        An :class:`EdgeList` possibly containing duplicates and self-loops;
        CSR construction removes both (as the real frameworks do).
    """
    a, b, c, d = initiator
    total = a + b + c + d
    if abs(total - 1.0) > 1e-9:
        raise InvalidValueError(f"initiator must sum to 1, got {total}")
    if scale < 0 or edge_factor <= 0:
        raise InvalidValueError("scale must be >= 0 and edge_factor positive")

    num_edges = edge_factor << scale
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        a_l, b_l, c_l, d_l = _jitter_initiator((a, b, c, d), rng, noise)
        draw = rng.random(num_edges)
        # Quadrant decision: row bit set when the draw lands in (c + d),
        # column bit conditional on the row bit.
        row_bit = draw >= (a_l + b_l)
        col_threshold = np.where(row_bit, c_l / (c_l + d_l), a_l / (a_l + b_l))
        col_draw = rng.random(num_edges)
        col_bit = col_draw >= col_threshold
        src |= row_bit.astype(np.int64) << level
        dst |= col_bit.astype(np.int64) << level

    # Permute vertex labels so ids do not encode degree (Graph500 requires
    # this shuffle; without it, low ids would be the high-degree vertices).
    perm = rng.permutation(1 << scale)
    return EdgeList(1 << scale, perm[src], perm[dst])


def _jitter_initiator(
    initiator: tuple[float, float, float, float],
    rng: np.random.Generator,
    noise: float,
) -> tuple[float, float, float, float]:
    """Multiplicatively jitter the initiator and renormalize."""
    if noise <= 0.0:
        return initiator
    factors = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
    values = np.asarray(initiator) * factors
    values /= values.sum()
    return tuple(float(v) for v in values)  # type: ignore[return-value]
