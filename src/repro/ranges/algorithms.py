"""Standard-library-style generic algorithms used by the NWGraph kernels.

NWGraph expresses its graph algorithms with C++ standard algorithms
(``std::transform``, ``std::reduce``, execution policies) over the range
abstraction; these helpers are the Python equivalents.  The ``policy``
argument mirrors C++ execution policies — NWGraph leaves parallelization to
the standard library, so here it is carried through as declared intent
(recorded in the work counters) rather than actual threading.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, TypeVar

import numpy as np

from ..core import counters

__all__ = ["ExecutionPolicy", "transform_reduce", "for_each", "exclusive_scan", "count_if"]

T = TypeVar("T")


class ExecutionPolicy(enum.Enum):
    """C++17 execution policies, carried as intent."""

    SEQ = "seq"
    PAR = "par"
    PAR_UNSEQ = "par_unseq"


def transform_reduce(
    items: Iterable[T],
    transform: Callable[[T], float],
    init: float = 0.0,
    policy: ExecutionPolicy = ExecutionPolicy.PAR,
) -> float:
    """``std::transform_reduce`` with a plus-reduction."""
    del policy
    total = init
    for item in items:
        total += transform(item)
    return total


def for_each(
    items: Iterable[T],
    fn: Callable[[T], None],
    policy: ExecutionPolicy = ExecutionPolicy.PAR,
) -> None:
    """``std::for_each`` over a range."""
    del policy
    for item in items:
        fn(item)


def exclusive_scan(values: np.ndarray, init: float = 0.0) -> np.ndarray:
    """``std::exclusive_scan``: prefix sums excluding the element itself."""
    out = np.empty(values.size + 1, dtype=np.float64)
    out[0] = init
    np.cumsum(values, out=out[1:])
    return out[:-1]


def count_if(values: np.ndarray, predicate: Callable[[np.ndarray], np.ndarray]) -> int:
    """``std::count_if`` vectorized over an array range."""
    counters.add_vertices(values.size)
    return int(predicate(values).sum())
