"""NWGraph-style substrate: range-of-ranges views and generic algorithms."""

from .algorithms import (
    ExecutionPolicy,
    count_if,
    exclusive_scan,
    for_each,
    transform_reduce,
)
from .views import AdjacencyView, EdgeRange, neighbor_range

__all__ = [
    "AdjacencyView",
    "EdgeRange",
    "ExecutionPolicy",
    "count_if",
    "exclusive_scan",
    "for_each",
    "neighbor_range",
    "transform_reduce",
]
