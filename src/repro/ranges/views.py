"""Range-of-ranges graph views: the NWGraph interface abstraction.

NWGraph's fundamental abstraction is a graph as a *range of ranges* — the
outer range iterates vertices, each inner range iterates that vertex's
neighbors (with edge properties as tuples).  Algorithms are then written
against standard-library-style generic algorithms, not against a concrete
graph class.  These views adapt our CSR storage to that interface; the
inner ranges are NumPy slices so the generic algorithms stay vectorizable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graphs import CSRGraph

__all__ = ["AdjacencyView", "EdgeRange", "neighbor_range"]


class AdjacencyView:
    """A graph as a random-access range of neighbor ranges."""

    __slots__ = ("indptr", "indices", "weights")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights

    @classmethod
    def out_edges(cls, graph: CSRGraph) -> "AdjacencyView":
        return cls(graph.indptr, graph.indices, graph.weights)

    @classmethod
    def in_edges(cls, graph: CSRGraph) -> "AdjacencyView":
        return cls(graph.in_indptr, graph.in_indices, graph.in_weights)

    def __len__(self) -> int:
        return int(self.indptr.size - 1)

    def __getitem__(self, vertex: int) -> np.ndarray:
        """Inner range: the neighbor ids of ``vertex``."""
        return self.indices[self.indptr[vertex]: self.indptr[vertex + 1]]

    def properties(self, vertex: int) -> np.ndarray:
        """Edge property tuple component (weights) of ``vertex``'s range."""
        if self.weights is None:
            return np.ones(int(self.indptr[vertex + 1] - self.indptr[vertex]))
        return self.weights[self.indptr[vertex]: self.indptr[vertex + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for vertex in range(len(self)):
            yield self[vertex]

    def degrees(self) -> np.ndarray:
        """Inner-range lengths (per-vertex degrees)."""
        return np.diff(self.indptr)

    def expand(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flatten the inner ranges of ``vertices``: (sources, targets)."""
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sources = np.repeat(vertices, counts)
        offsets = np.arange(total, dtype=np.int64)
        begin = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + (offsets - begin)
        return sources, self.indices[flat]

    def expand_with_properties(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`expand`, also returning the edge property column."""
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        sources = np.repeat(vertices, counts)
        offsets = np.arange(total, dtype=np.int64)
        begin = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + (offsets - begin)
        weights = (
            np.ones(total, dtype=np.float64)
            if self.weights is None
            else self.weights[flat].astype(np.float64)
        )
        return sources, self.indices[flat], weights


class EdgeRange:
    """The graph's edges as one flat range of (source, target[, weight])."""

    __slots__ = ("sources", "targets", "weights")

    def __init__(self, graph: CSRGraph) -> None:
        self.sources, self.targets = graph.edge_array()
        self.weights = graph.weights

    def __len__(self) -> int:
        return int(self.sources.size)

    def cyclic_blocks(self, num_blocks: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Cyclic (strided) partition of the edge range.

        NWGraph's TC distributes *rows* cyclically across threads for load
        balance on skewed graphs; the strided split is the range-level
        equivalent.
        """
        for block in range(num_blocks):
            sel = slice(block, None, num_blocks)
            yield self.sources[sel], self.targets[sel]


def neighbor_range(graph: CSRGraph, vertex: int) -> np.ndarray:
    """Free-function form of the inner range (C++ ADL-style helper)."""
    return graph.indices[graph.indptr[vertex]: graph.indptr[vertex + 1]]
