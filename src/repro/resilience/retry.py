"""Retry policy with transient/deterministic failure classification.

The GAP suite prescribes best-of-k trials because individual runs
misbehave; at the *campaign* level the analogous hazard is the individual
cell.  Retrying blindly is wrong twice over: a verification mismatch or a
``ValueError`` is a property of the code, so re-running it wastes budget
and — worse — can mask a real bug behind an "eventually passed" cell.
This module therefore separates *what failed* from *whether to retry*:

* :func:`classify_failure` maps a failed cell to ``transient`` (worker
  crash, OOM-kill, cache/shared-memory corruption, broken IPC — the
  environment misbehaved) or ``deterministic`` (verification mismatch,
  ``ValueError``, and anything unrecognized — the code misbehaved).
  Unknown failure types default to deterministic: never retry what you
  cannot explain.
* :class:`RetryPolicy` retries only transient *errors*, with jitter-free
  exponential backoff (``base * factor**attempt``, capped).  Timeouts are
  never retried — a timed-out cell already consumed its full budget, and
  a genuinely hung kernel stays hung; the circuit breaker
  (:mod:`repro.resilience.breaker`) is the mechanism that stops a combo
  from timing out thirty times.

Backoff is deliberately deterministic (no jitter): a benchmark campaign
retries against *itself*, not against a contended shared service, so the
thundering-herd rationale for jitter does not apply — and determinism is
what lets the fault-injection tests pin exact schedules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "CLASS_DETERMINISTIC",
    "CLASS_TRANSIENT",
    "RetryPolicy",
    "TRANSIENT_ERROR_TYPES",
    "classify_failure",
]

CLASS_TRANSIENT = "transient"
CLASS_DETERMINISTIC = "deterministic"

#: Exception type names whose failures are environmental, not logical.
#: ``WorkerCrash`` is the synthetic type the parallel executor assigns to
#: a cell whose worker died; ``GraphFormatError`` surfaces corrupted cache
#: or shared-memory payloads; the OS/IPC types cover queue and
#: shared-memory attach failures.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "MemoryError",
        "WorkerCrash",
        "GraphFormatError",
        "OSError",
        "IOError",
        "EOFError",
        "BrokenPipeError",
        "ConnectionError",
        "ConnectionResetError",
        "BufferError",
        "FileNotFoundError",
    }
)

#: Error-text fragments that mark a transient failure even when the text
#: carries no exception-type prefix (e.g. parent-side worker-death records).
_TRANSIENT_MARKERS = (
    "worker process died",
    "shared memory",
    "sharedmemory",
    "corrupt",
    "oom",
)


def classify_failure(status: str, error: str) -> str:
    """Classify a failed cell's ``(status, error)`` for retry purposes.

    ``status`` is the result status (``error`` / ``timeout`` / ...);
    ``error`` the recorded message, conventionally ``"Type: message"``.
    Timeouts and anything unrecognized classify as deterministic.
    """
    if status != "error":
        return CLASS_DETERMINISTIC
    error_type = error.split(":", 1)[0].strip()
    if error_type in TRANSIENT_ERROR_TYPES:
        return CLASS_TRANSIENT
    lowered = error.lower()
    if any(marker in lowered for marker in _TRANSIENT_MARKERS):
        return CLASS_TRANSIENT
    return CLASS_DETERMINISTIC


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for transient cell failures.

    ``retries`` is the number of *re*-executions allowed per cell (0
    disables retrying entirely, the default).  ``sleeper`` is injectable
    so tests assert the exact backoff schedule without sleeping it.
    """

    retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    sleeper: Callable[[float], None] = field(default=time.sleep, compare=False)

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before re-running attempt ``attempt + 1`` (jitter-free)."""
        return min(
            self.backoff_base * self.backoff_factor**attempt, self.backoff_max
        )

    def should_retry(self, status: str, error: str, attempt: int) -> bool:
        """True when attempt ``attempt`` failed transiently and budget remains."""
        if attempt >= self.retries:
            return False
        return classify_failure(status, error) == CLASS_TRANSIENT

    def sleep(self, attempt: int) -> None:
        """Block for the backoff delay following ``attempt``."""
        delay = self.backoff_seconds(attempt)
        if delay > 0:
            self.sleeper(delay)
