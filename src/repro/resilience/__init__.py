"""Campaign resilience: checkpoint/resume, retries, breakers, fault injection.

Long multi-framework campaigns (the paper's Tables IV/V are 360 cells)
fail in mundane ways: a worker OOMs, the machine reboots, one framework
crash-loops on one kernel.  PR 1 gave the runner fault *isolation* (a bad
cell becomes a structured result) and PR 2 a hard-kill parallel executor;
this package makes the campaign layer *survive and degrade gracefully*:

* :mod:`~repro.resilience.journal` — a crash-safe checkpoint journal.
  Every completed cell is appended (atomically, flushed) to a JSONL file;
  ``run --resume`` validates the spec/environment fingerprint and skips
  already-completed cells, re-assembling the canonical ``ResultSet``.
* :mod:`~repro.resilience.retry` — a retry policy with deterministic
  (jitter-free) exponential backoff, driven by an error classifier that
  retries only *transient* failures (worker crash, OOM, corruption) and
  never deterministic ones (verification mismatch, ``ValueError``).
* :mod:`~repro.resilience.breaker` — a per-(framework, kernel) circuit
  breaker: after K consecutive hard failures the remaining cells of that
  combo become structured ``skipped`` results instead of burning their
  full timeout budget.
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (hooks via spec or the ``REPRO_FAULTS`` env var) that forces
  crash / hang / OOM / wrong-result / cache-corruption at a chosen
  cell and attempt, so all of the above is tested without timing-flaky
  tests and is reusable for chaos CI.
* :mod:`~repro.resilience.signals` — SIGTERM-to-exception translation so
  a terminated campaign still flushes its journal and unlinks its
  shared-memory segments on the way out.

See ``docs/RESILIENCE.md`` for formats, semantics, and the hook reference.
"""

from .breaker import CircuitBreaker
from .faults import FaultSpec, active_plan, parse_plan
from .iofaults import (
    IOFaultSpec,
    active_io_plan,
    clear_io_plan,
    fired_io_faults,
    install_io_plan,
    io_faults,
    parse_io_plan,
)
from .journal import (
    JOURNAL_VERSION,
    CheckpointJournal,
    campaign_fingerprint,
    read_journal,
)
from .retry import CLASS_DETERMINISTIC, CLASS_TRANSIENT, RetryPolicy, classify_failure
from .signals import graceful_shutdown

__all__ = [
    "CLASS_DETERMINISTIC",
    "CLASS_TRANSIENT",
    "CheckpointJournal",
    "CircuitBreaker",
    "FaultSpec",
    "IOFaultSpec",
    "JOURNAL_VERSION",
    "RetryPolicy",
    "active_io_plan",
    "active_plan",
    "campaign_fingerprint",
    "classify_failure",
    "clear_io_plan",
    "fired_io_faults",
    "graceful_shutdown",
    "install_io_plan",
    "io_faults",
    "parse_io_plan",
    "read_journal",
]
