"""Deterministic I/O fault injection for the durable-storage tier.

:mod:`repro.resilience.faults` injects *compute* faults (crash, hang,
OOM, wrong-result) at exact cells; this module does the same for the
failures *disks* produce — the ones that corrupt archives instead of
campaigns.  Every write the storage tier performs (archive staging,
checkpoint-journal appends, cell-index appends, atomic JSON replaces)
goes through one small shim — :func:`shim_write` / :func:`shim_fsync` /
:func:`shim_replace` — and a fault plan can make any *specific* one of
those operations fail, deterministically, at an exact coordinate:

* ``enospc`` — the write (or rename) raises ``OSError(ENOSPC)`` with
  nothing written: the classic full disk.
* ``torn-write`` — a *prefix* of the buffer reaches the file, then the
  write raises ``OSError(EIO)``: the payload a crash or a lost power rail
  leaves behind.  This is what torn-tail recovery paths must survive.
* ``fsync-fail`` — the data is in the page cache but ``fsync`` raises
  ``OSError(EIO)``: durability was *reported* impossible, so the caller
  must not claim the record is safe.
* ``bit-flip`` — one byte of the buffer is corrupted and the write
  **succeeds silently**: the fault checksums exist to catch.  Nothing
  fails at write time; only a verifying reader (scrub, crc-checked
  replay) can notice.

A fault fires at an exact ``(path substring, operation, count)``
coordinate: the ``count``-th matching call (0-based, counted per fault
entry in this process) triggers it; with ``repeat=True`` every matching
call from ``count`` on fires — a disk that stays full, not one that
hiccups.  Matching is pure and counters are process-local, so a plan is
deterministic for a given sequence of storage operations.

Plans are installed two ways, merged by :func:`active_io_plan`:

* programmatically via :func:`install_io_plan` or the :func:`io_faults`
  context manager (what unit tests use);
* externally via the ``REPRO_IO_FAULTS`` environment variable holding
  the JSON form (see :func:`parse_io_plan`) — this is how the chaos soak
  harness injects storage faults into a *server subprocess* without any
  API access, exactly like ``REPRO_FAULTS`` does for compute faults.

Every fired fault is recorded (:func:`fired_io_faults`) so tests and the
soak harness can assert that the coordinates they aimed at were actually
hit — a chaos run that injected nothing proves nothing.
"""

from __future__ import annotations

import errno
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "IO_FAULT_KINDS",
    "IO_FAULTS_ENV",
    "IOFaultSpec",
    "active_io_plan",
    "clear_io_plan",
    "fired_io_faults",
    "install_io_plan",
    "io_faults",
    "parse_io_plan",
    "shim_fsync",
    "shim_replace",
    "shim_write",
]

#: Environment variable carrying a JSON I/O fault plan.
IO_FAULTS_ENV = "REPRO_IO_FAULTS"

IO_FAULT_KINDS = ("enospc", "torn-write", "fsync-fail", "bit-flip")

#: Operations the shim exposes; a spec's ``operation`` must be one of
#: these (or None = any operation its kind applies to).
IO_OPERATIONS = ("write", "fsync", "replace")

#: Which operations each fault kind can fire on.
_KIND_OPERATIONS = {
    "enospc": ("write", "replace"),
    "torn-write": ("write",),
    "fsync-fail": ("fsync",),
    "bit-flip": ("write",),
}


@dataclass(frozen=True)
class IOFaultSpec:
    """One injected storage fault: where it fires and what it does.

    ``path`` is a substring match against the target path (``None``
    matches any path); ``operation`` restricts the shim call
    (``write`` / ``fsync`` / ``replace``; ``None`` = every operation the
    kind applies to).  ``count`` is the 0-based index of the matching
    call that fires; ``repeat=True`` keeps firing from that call on.
    """

    kind: str
    path: str | None = None
    operation: str | None = None
    count: int = 0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in IO_FAULT_KINDS:
            raise ValueError(
                f"unknown I/O fault kind {self.kind!r}; "
                f"expected one of {IO_FAULT_KINDS}"
            )
        if self.operation is not None and self.operation not in IO_OPERATIONS:
            raise ValueError(
                f"unknown I/O operation {self.operation!r}; "
                f"expected one of {IO_OPERATIONS}"
            )
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")

    def applies_to(self, operation: str, path: str) -> bool:
        """True when this fault *could* fire for the call (count aside)."""
        if operation not in _KIND_OPERATIONS[self.kind]:
            return False
        if self.operation is not None and self.operation != operation:
            return False
        return self.path is None or self.path in path

    def as_dict(self) -> dict[str, object]:
        """Minimal JSON form; ``parse_io_plan`` round-trips it."""
        out: dict[str, object] = {"kind": self.kind}
        if self.path is not None:
            out["path"] = self.path
        if self.operation is not None:
            out["operation"] = self.operation
        if self.count:
            out["count"] = self.count
        if self.repeat:
            out["repeat"] = True
        return out


def parse_io_plan(text: str) -> tuple[IOFaultSpec, ...]:
    """Parse the JSON plan form: a list of IOFaultSpec dicts.

    Example::

        [{"kind": "torn-write", "path": "cell_index.jsonl", "count": 3},
         {"kind": "enospc", "path": "runs/", "repeat": true}]
    """
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("I/O fault plan must be a JSON list of fault objects")
    faults = []
    for item in raw:
        if not isinstance(item, dict) or "kind" not in item:
            raise ValueError(f"I/O fault entry {item!r} needs at least a 'kind'")
        faults.append(
            IOFaultSpec(
                kind=str(item["kind"]),
                path=item.get("path"),
                operation=item.get("operation"),
                count=int(item.get("count", 0)),
                repeat=bool(item.get("repeat", False)),
            )
        )
    return tuple(faults)


# -- process-wide plan state --------------------------------------------

_lock = threading.Lock()
_installed: tuple[IOFaultSpec, ...] = ()
#: Per-fault counters of *matching* calls seen, keyed by the fault's
#: position in the active plan (specs are frozen/hashable but may repeat).
_counters: dict[int, int] = {}
_fired: list[dict[str, object]] = []
#: Cache of the parsed env plan, invalidated when the raw text changes.
_env_cache: tuple[str, tuple[IOFaultSpec, ...]] | None = None


def install_io_plan(plan: tuple[IOFaultSpec, ...] | list[IOFaultSpec]) -> None:
    """Install a process-wide plan (replacing any previous one)."""
    global _installed
    with _lock:
        _installed = tuple(plan)
        _counters.clear()
        _fired.clear()


def clear_io_plan() -> None:
    """Remove the installed plan and reset counters/fired records."""
    install_io_plan(())


def active_io_plan() -> tuple[IOFaultSpec, ...]:
    """The effective plan: installed specs plus ``$REPRO_IO_FAULTS``.

    Worker and server subprocesses inherit the environment, so an
    env-injected plan reaches them without any protocol change.
    """
    global _env_cache
    text = os.environ.get(IO_FAULTS_ENV)
    env_plan: tuple[IOFaultSpec, ...] = ()
    if text:
        if _env_cache is None or _env_cache[0] != text:
            _env_cache = (text, parse_io_plan(text))
        env_plan = _env_cache[1]
    return _installed + env_plan


def fired_io_faults() -> list[dict[str, object]]:
    """Snapshot of every fault fired in this process (assertion aid)."""
    with _lock:
        return [dict(record) for record in _fired]


def _match(operation: str, path: str) -> IOFaultSpec | None:
    """The first fault due for this call, advancing match counters."""
    plan = active_io_plan()
    if not plan:
        return None
    with _lock:
        due: IOFaultSpec | None = None
        for slot, fault in enumerate(plan):
            if not fault.applies_to(operation, path):
                continue
            seen = _counters.get(slot, 0)
            _counters[slot] = seen + 1
            if due is None and (
                seen == fault.count or (fault.repeat and seen >= fault.count)
            ):
                due = fault
        if due is not None:
            _fired.append(
                {"kind": due.kind, "operation": operation, "path": path}
            )
        return due


# -- the shim -----------------------------------------------------------


def shim_write(stream, data: bytes, path: str | Path) -> None:
    """Write ``data`` to an open binary stream, subject to the fault plan.

    The storage tier calls this instead of ``stream.write`` for every
    durable append/stage so a plan can hit one exact write.  Fault
    behavior: ``enospc`` writes nothing and raises; ``torn-write`` writes
    a strict prefix then raises; ``bit-flip`` silently corrupts one byte
    and succeeds.
    """
    fault = _match("write", str(path))
    if fault is None:
        stream.write(data)
        return
    if fault.kind == "enospc":
        raise OSError(
            errno.ENOSPC, f"injected fault: no space left on device: {path}"
        )
    if fault.kind == "torn-write":
        # A strict prefix: at least one byte short, at least one byte
        # written when there is anything to write — the half-record a
        # dying process leaves behind.
        torn = max(1, len(data) // 2) if len(data) > 1 else 0
        stream.write(data[:torn])
        stream.flush()
        raise OSError(
            errno.EIO, f"injected fault: torn write ({torn}/{len(data)} "
            f"bytes) to {path}"
        )
    if fault.kind == "bit-flip" and data:
        corrupted = bytearray(data)
        corrupted[len(corrupted) // 2] ^= 0x20
        stream.write(bytes(corrupted))
        return
    stream.write(data)


def shim_fsync(stream, path: str | Path) -> None:
    """``flush`` + ``os.fsync`` the stream, subject to the fault plan."""
    stream.flush()
    fault = _match("fsync", str(path))
    if fault is not None and fault.kind == "fsync-fail":
        raise OSError(errno.EIO, f"injected fault: fsync failed for {path}")
    os.fsync(stream.fileno())


def shim_replace(src: str | Path, dst: str | Path) -> None:
    """``os.replace``, subject to the fault plan (keyed on the *target*).

    ``enospc`` here models a rename failing on a full disk's metadata
    update: the destination is untouched and the staged source remains.
    """
    fault = _match("replace", str(dst))
    if fault is not None and fault.kind == "enospc":
        raise OSError(
            errno.ENOSPC, f"injected fault: no space left on device: {dst}"
        )
    os.replace(src, dst)


@contextmanager
def io_faults(*specs: IOFaultSpec):
    """Scoped plan installation for tests::

        with io_faults(IOFaultSpec("torn-write", path="journal")):
            ...

    Restores the previously installed plan (and fresh counters) on exit.
    """
    with _lock:
        previous = _installed
    install_io_plan(specs)
    try:
        yield
    finally:
        install_io_plan(previous)
