"""Crash-safe checkpoint journal for benchmark campaigns.

A campaign that only materializes its ``ResultSet`` at the end loses every
completed cell when the process dies at cell k of n — hours of work for a
long multi-framework run.  The journal makes cell completion *durable*:

* an append-only JSONL file whose first line is a header (journal
  version + a :func:`campaign_fingerprint` of the spec, axes, and
  environment) and whose subsequent lines each hold one completed cell's
  full :meth:`~repro.core.results.RunResult.as_dict` record;
* every record is appended as one pre-encoded line, flushed, and fsynced
  before the campaign moves on — a crash at any instant leaves at most
  one torn *trailing* line, which resume detects and discards;
* ``resume`` re-reads the journal, validates that the header fingerprint
  matches the resuming campaign (same spec, same graph/kernel/mode/
  framework axes, comparable environment — refusing to silently mix
  results from a different campaign or machine), and returns the
  completed cells keyed by canonical cell identity so the runner skips
  exactly those and re-assembles a canonical ``ResultSet``.

All completed cells are skipped on resume regardless of status: an
``error`` or ``timeout`` cell *finished executing* with a recorded
outcome, and re-running it would make a resumed campaign diverge from an
uninterrupted one.  Delete the journal to re-measure from scratch.

Fault-injection plans (``BenchmarkSpec.faults``) are deliberately outside
the fingerprint: killing a campaign with an injected crash and resuming
it without the fault is precisely the crash/resume test protocol.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.results import RunResult
from ..errors import JournalError
from .iofaults import shim_fsync, shim_write

__all__ = [
    "JOURNAL_VERSION",
    "CheckpointJournal",
    "campaign_fingerprint",
    "read_journal",
]

JOURNAL_VERSION = 1

#: Cell identity key: matches ``RunResult.cell_key``.
CellKey = tuple[str, str, str, str]


def campaign_fingerprint(
    spec,
    graphs: Iterable[str],
    kernels: Iterable[str],
    modes: Iterable[str],
    frameworks: Iterable[str],
    datasets: dict[str, dict[str, object]] | None = None,
) -> dict[str, object]:
    """Identity of a campaign for resume validation.

    Two campaigns with equal fingerprints produce interchangeable cells:
    the same spec (trials, scale, seed, timeout — fault plans excluded)
    over the same axes.  The environment rides along so resume can refuse
    a journal written on a non-comparable machine.

    Execution topology — ``jobs``, ``pool``, ``batch_size`` — is *not*
    identity: the executor equivalence matrix guarantees cells are
    interchangeable across serial, process-pool, and thread-pool runs,
    so a campaign interrupted under one topology may resume under
    another (e.g. finish a crashed ``--jobs 8`` run serially).

    ``datasets`` is the provenance map for file-backed graph-axis entries
    (ref -> path/digest/format, see
    :func:`repro.graphs.datasets.graph_identities`).  Including it makes
    the *bytes* of a dataset part of campaign identity: a journal written
    against one version of a file refuses to resume after the file is
    edited, exactly like a changed spec — and service recovery can
    re-derive content-addressed cell digests from the recorded map without
    the original file existing anymore.
    """
    from ..store.environment import fingerprint

    spec_identity = {
        key: value
        for key, value in spec.as_dict().items()
        if key not in ("jobs", "pool", "batch_size")
    }
    identity: dict[str, object] = {
        "spec": spec_identity,
        "graphs": list(graphs),
        "kernels": list(kernels),
        "modes": list(modes),
        "frameworks": list(frameworks),
        "environment": fingerprint(),
    }
    if datasets:
        identity["datasets"] = {ref: dict(entry) for ref, entry in datasets.items()}
    return identity


def _fingerprint_errors(
    recorded: dict[str, object], current: dict[str, object]
) -> list[str]:
    """Why a journal cannot be resumed by the current campaign (if at all)."""
    from ..store.environment import fingerprint_mismatches

    problems = []
    for key in ("spec", "graphs", "kernels", "modes", "frameworks", "datasets"):
        if recorded.get(key) != current.get(key):
            problems.append(key)
    env_mismatch = fingerprint_mismatches(
        recorded.get("environment"), current.get("environment")
    )
    problems.extend(f"environment.{key}" for key in env_mismatch)
    return problems


def read_journal(
    path: str | Path,
) -> tuple[dict[str, object], dict[CellKey, RunResult]]:
    """Read a journal's fingerprint + completed cells without resuming it.

    The benchmark service uses this at startup to recover work from
    journals left behind by a crashed server: unlike
    :meth:`CheckpointJournal.resume`, no current-campaign fingerprint is
    required — the *recorded* fingerprint is returned so the caller can
    re-derive cell digests for whatever campaign the journal belonged to.
    A torn trailing line is discarded exactly as resume would.
    """
    path = Path(path)
    header, completed = CheckpointJournal._read(path)
    recorded = header.get("fingerprint")
    if header.get("journal_version") != JOURNAL_VERSION or not isinstance(
        recorded, dict
    ):
        raise JournalError(
            f"{path} is not a version-{JOURNAL_VERSION} campaign journal"
        )
    return recorded, completed


class CheckpointJournal:
    """Append-only JSONL journal of completed campaign cells.

    Construct via :meth:`create` (fresh journal, truncates) or
    :meth:`resume` (validate + load completed cells, then append).
    """

    def __init__(self, path: str | Path, fingerprint: dict[str, object]) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._stream = None

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, fingerprint: dict[str, object]
    ) -> "CheckpointJournal":
        """Start a fresh journal, writing the header line."""
        journal = cls(path, fingerprint)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._stream = open(journal.path, "wb")
        journal._append(
            {"journal_version": JOURNAL_VERSION, "fingerprint": fingerprint}
        )
        return journal

    @classmethod
    def resume(
        cls, path: str | Path, fingerprint: dict[str, object]
    ) -> tuple["CheckpointJournal", dict[CellKey, RunResult]]:
        """Load a journal for resumption; returns ``(journal, completed)``.

        A missing journal resumes as a fresh campaign (so ``--resume`` is
        safe to pass on the first run).  A fingerprint mismatch raises
        :class:`~repro.errors.JournalError` naming every differing field.
        """
        path = Path(path)
        if not path.exists():
            return cls.create(path, fingerprint), {}
        header, completed = cls._read(path)
        recorded = header.get("fingerprint")
        if header.get("journal_version") != JOURNAL_VERSION or not isinstance(
            recorded, dict
        ):
            raise JournalError(
                f"{path} is not a version-{JOURNAL_VERSION} campaign journal"
            )
        problems = _fingerprint_errors(recorded, fingerprint)
        if problems:
            raise JournalError(
                f"journal {path} was written by a different campaign; "
                f"mismatched: {', '.join(problems)} "
                "(delete the journal to start over)"
            )
        journal = cls(path, fingerprint)
        journal._stream = open(path, "ab")
        return journal, completed

    @staticmethod
    def _read(path: Path) -> tuple[dict[str, object], dict[CellKey, RunResult]]:
        """Parse header + completed cells, discarding a torn trailing line.

        Only a line terminated by ``\\n`` is trusted: an append cut short
        by a crash leaves an unterminated tail, which is exactly the cell
        that must be re-executed anyway.
        """
        # Layering: repro.store sits above repro.resilience, so the
        # checksum helpers are imported lazily (same as the fingerprint's
        # environment import).
        from ..store.integrity import verify_line

        raw = path.read_bytes()
        lines = raw.split(b"\n")
        if raw and not raw.endswith(b"\n"):
            lines = lines[:-1]  # torn tail: the interrupted append
        stripped = [line.strip() for line in lines]
        stripped = [line for line in stripped if line]
        records = []
        for index, line in enumerate(stripped):
            final = index == len(stripped) - 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if final and index > 0:
                    break  # flushed but garbled tail: treat as torn
                raise JournalError(
                    f"journal {path} has a corrupt non-trailing line: {exc}"
                ) from exc
            if not isinstance(record, dict) or not verify_line(record):
                if final and index > 0:
                    break  # checksum-failed tail: never fully durable
                raise JournalError(
                    f"journal {path} line {index + 1} failed its checksum"
                )
            records.append(record)
        if not records:
            raise JournalError(f"journal {path} has no header line")
        header = records[0]
        completed: dict[CellKey, RunResult] = {}
        for record in records[1:]:
            result = RunResult.from_dict(record["result"])
            completed[result.cell_key] = result
        return header, completed

    # -- appending ------------------------------------------------------

    def _append(self, record: dict[str, object]) -> None:
        if self._stream is None:
            raise JournalError(f"journal {self.path} is closed")
        from ..store.integrity import seal_line

        # One pre-encoded, checksummed line per write call, then flush +
        # fsync: the record is either fully on disk or detectably torn,
        # never interleaved or silently buffered past a crash.  Routed
        # through the I/O-fault shim so chaos tests can tear or fail this
        # exact append.
        data = json.dumps(seal_line(record), default=str).encode() + b"\n"
        shim_write(self._stream, data, self.path)
        shim_fsync(self._stream, self.path)

    def record(self, result: RunResult) -> None:
        """Durably append one completed cell."""
        self._append({"result": result.as_dict()})

    def close(self) -> None:
        """Close the underlying stream (appends after this raise)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
