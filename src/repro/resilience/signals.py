"""SIGTERM-to-exception translation for clean campaign shutdown.

``KeyboardInterrupt`` already unwinds a campaign through its ``finally``
blocks (flushing the journal, unlinking shared-memory segments, killing
workers), but SIGTERM — what ``kill``, batch schedulers, and container
runtimes send — terminates Python without unwinding anything.  Inside a
:func:`graceful_shutdown` scope SIGTERM instead raises
:class:`~repro.errors.CampaignAborted`, which derives from
``BaseException`` on purpose: the runner's fault isolation catches
``Exception`` to convert *cell* failures into structured results, and an
operator's termination request must never be swallowed into an ``error``
cell.

SIGKILL cannot be translated; the checkpoint journal's per-cell fsync is
the defense there.
"""

from __future__ import annotations

import contextlib
import signal
import threading

from ..errors import CampaignAborted

__all__ = ["graceful_shutdown"]


@contextlib.contextmanager
def graceful_shutdown():
    """Raise :class:`CampaignAborted` on SIGTERM within this scope.

    A no-op off the main thread or on platforms without SIGTERM handling;
    nests safely (the inner scope restores the outer handler).
    """
    if not hasattr(signal, "SIGTERM") or (
        threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _terminate(signum, frame):
        raise CampaignAborted("campaign terminated by SIGTERM")

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
