"""Per-(framework, kernel) circuit breaker for benchmark campaigns.

A persistently broken framework×kernel combination is the most expensive
failure mode a campaign has: with five graphs and two modes it burns its
full per-cell budget (all trials, possibly all timeouts, possibly all
retries) ten times over — Pollard & Norris note that cross-framework
comparisons routinely lose entire configurations this way.  The breaker
caps the damage: after ``threshold`` *consecutive* hard failures
(``error`` or ``timeout``) of one (framework, kernel) combo, it opens,
and every remaining cell of that combo is recorded as a structured
``skipped`` result — visible in the failure table with the reason, but
costing zero execution time.  One success resets the count, so a combo
that merely flakes never trips it.

The breaker is scoped to (framework, kernel), not (framework, kernel,
graph): the observed failure modes — an unimplemented kernel, a crash in
shared kernel code — are graph-independent, while a graph-specific
failure (one OOM on the largest input) only contributes one count and is
reset by the next graph's success.

``threshold=0`` disables the breaker entirely (the default, preserving
pre-resilience behavior).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CircuitBreaker"]


@dataclass
class _ComboState:
    consecutive: int = 0
    open: bool = False


@dataclass
class CircuitBreaker:
    """Tracks consecutive hard failures per (framework, kernel) combo."""

    threshold: int = 0
    _states: dict[tuple[str, str], _ComboState] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def is_open(self, framework: str, kernel: str) -> bool:
        """True when this combo's remaining cells should be skipped."""
        state = self._states.get((framework, kernel))
        return state is not None and state.open

    def record(self, framework: str, kernel: str, ok: bool) -> bool:
        """Account one executed cell; returns True when this opens the combo.

        Call only for cells that actually ran — skipped cells must not
        feed back into the breaker.
        """
        if not self.enabled:
            return False
        state = self._states.setdefault((framework, kernel), _ComboState())
        if ok:
            state.consecutive = 0
            return False
        state.consecutive += 1
        if not state.open and state.consecutive >= self.threshold:
            state.open = True
            return True
        return False

    def reason(self, framework: str, kernel: str) -> str:
        """Human-readable skip reason recorded on skipped cells."""
        return (
            f"circuit breaker open for {framework}/{kernel}: "
            f"{self.threshold} consecutive hard failures"
        )

    def open_combos(self) -> list[tuple[str, str]]:
        """All (framework, kernel) combos currently open, sorted."""
        return sorted(key for key, state in self._states.items() if state.open)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe summary for campaign metadata."""
        return {
            "threshold": self.threshold,
            "open": [list(combo) for combo in self.open_combos()],
        }
