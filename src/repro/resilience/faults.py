"""Deterministic fault injection for the benchmark harness.

Chaos testing a campaign runner with *timing* (sleep here, hope the race
happens there) produces flaky tests.  This module injects faults at exact,
named points instead: a :class:`FaultSpec` says *which cell* (framework /
kernel / graph / mode, each optionally a wildcard), *which attempt*, and
*what happens* — so a test can demand "the worker running gap/cc/kron
crashes on attempt 0 and only attempt 0" and get exactly that, every run.

Fault kinds (``FAULT_KINDS``):

* ``crash`` — the executing process exits immediately (``os._exit``) with
  :data:`CRASH_EXIT_CODE`.  In a worker this simulates a segfault/OOM-kill;
  in a serial campaign it kills the whole process, which is how the
  checkpoint/resume tests produce a genuinely interrupted campaign.
* ``hang`` — an interruptible sleep loop; the per-trial ``SIGALRM``
  deadline (serial or in-worker) converts it into a ``timeout`` result.
  Only use with a ``trial_timeout``.
* ``hang-hard`` — ignores ``SIGALRM`` and spins, simulating a kernel stuck
  in one long C call; only the parallel executor's hard kill can end it.
* ``oom`` — raises :class:`MemoryError` (classified *transient*).
* ``error`` — raises :class:`ValueError` (classified *deterministic*).
* ``wrong-result`` — perturbs the kernel output so verification fails
  (a deterministic failure that must never be retried).
* ``cache-corrupt`` — flips bytes in the on-disk graph-cache artifact
  before it is read, exercising the corruption-degrades-to-a-miss path.

Plans are injected two ways, and both are merged by :func:`active_plan`:

* programmatically, via ``BenchmarkSpec(faults=(...))`` — the spec already
  travels to worker processes, so the plan does too;
* externally, via the ``REPRO_FAULTS`` environment variable holding the
  JSON form (see :func:`parse_plan`), which needs no API access — this is
  what chaos CI and the CLI-level kill/resume tests use.

Injection points are hard-wired into the runner: :func:`fire` inside the
timed trial (crash/hang/oom/error), :func:`transform_output` on the
verification trial's output (wrong-result), and :func:`corrupt_cache`
in ``build_case`` (cache-corrupt).  All matching is pure and stateless,
so a fault plan is deterministic by construction.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultSpec",
    "FAULTS_ENV",
    "active_plan",
    "corrupt_cache",
    "fire",
    "parse_plan",
    "transform_output",
]

#: Environment variable carrying a JSON fault plan (see :func:`parse_plan`).
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status used by the ``crash`` fault, distinctive enough to assert on.
CRASH_EXIT_CODE = 86

FAULT_KINDS = (
    "crash",
    "hang",
    "hang-hard",
    "oom",
    "error",
    "wrong-result",
    "cache-corrupt",
)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where it fires and what it does.

    ``framework`` / ``kernel`` / ``graph`` / ``mode`` are exact-match
    filters; ``None`` matches anything.  ``attempts`` is the tuple of
    attempt numbers (0-based) the fault fires on; ``None`` means every
    attempt — a *persistent* fault, which is how breaker tests model a
    permanently broken combo.
    """

    kind: str
    framework: str | None = None
    kernel: str | None = None
    graph: str | None = None
    mode: str | None = None
    attempts: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def matches(
        self,
        framework: str,
        kernel: str,
        graph: str,
        mode: str,
        attempt: int,
    ) -> bool:
        """True when this fault fires for the given cell and attempt."""
        for want, got in (
            (self.framework, framework),
            (self.kernel, kernel),
            (self.graph, graph),
            (self.mode, mode),
        ):
            if want is not None and want != got:
                return False
        return self.attempts is None or attempt in self.attempts

    def as_dict(self) -> dict[str, object]:
        """JSON form (the :func:`parse_plan` entry shape), omitting wildcards."""
        out: dict[str, object] = {"kind": self.kind}
        for key in ("framework", "kernel", "graph", "mode"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        return out


def parse_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse the JSON fault-plan form: a list of FaultSpec dicts.

    Example::

        [{"kind": "crash", "kernel": "cc", "mode": "optimized",
          "attempts": [0]}]
    """
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("fault plan must be a JSON list of fault objects")
    faults = []
    for item in raw:
        if not isinstance(item, dict) or "kind" not in item:
            raise ValueError(f"fault entry {item!r} needs at least a 'kind'")
        attempts = item.get("attempts")
        faults.append(
            FaultSpec(
                kind=str(item["kind"]),
                framework=item.get("framework"),
                kernel=item.get("kernel"),
                graph=item.get("graph"),
                mode=item.get("mode"),
                attempts=tuple(int(a) for a in attempts)
                if attempts is not None
                else None,
            )
        )
    return tuple(faults)


def active_plan(spec) -> tuple[FaultSpec, ...]:
    """The effective fault plan: ``spec.faults`` plus ``$REPRO_FAULTS``.

    Workers inherit the environment, so an env-injected plan reaches them
    under both fork and spawn without any protocol change.
    """
    plan = tuple(getattr(spec, "faults", ()) or ())
    text = os.environ.get(FAULTS_ENV)
    if text:
        plan = plan + parse_plan(text)
    return plan


def fire(
    plan: tuple[FaultSpec, ...],
    framework: str,
    kernel: str,
    graph: str,
    mode: str,
    attempt: int,
) -> None:
    """Trigger any matching in-trial fault (crash / hang / oom / error).

    Called by the runner inside the trial's deadline scope, so ``hang`` is
    interruptible exactly like a real slow kernel would be.
    """
    for fault in plan:
        if not fault.matches(framework, kernel, graph, mode, attempt):
            continue
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if fault.kind == "hang":
            while True:
                time.sleep(0.05)
        if fault.kind == "hang-hard":
            if hasattr(signal, "SIGALRM"):
                signal.signal(signal.SIGALRM, signal.SIG_IGN)
            while True:
                time.sleep(0.05)
        if fault.kind == "oom":
            raise MemoryError(
                f"injected fault: oom at {framework}/{kernel}/{graph}/{mode} "
                f"attempt {attempt}"
            )
        if fault.kind == "error":
            raise ValueError(
                f"injected fault: deterministic error at "
                f"{framework}/{kernel}/{graph}/{mode} attempt {attempt}"
            )


def transform_output(
    plan: tuple[FaultSpec, ...],
    framework: str,
    kernel: str,
    graph: str,
    mode: str,
    attempt: int,
    output,
):
    """Apply a matching ``wrong-result`` fault to a kernel output.

    The perturbation is minimal but always verification-visible: numeric
    arrays get their first element bumped, scalar outputs (TC's count)
    are off by one.
    """
    for fault in plan:
        if fault.kind != "wrong-result":
            continue
        if not fault.matches(framework, kernel, graph, mode, attempt):
            continue
        if isinstance(output, np.ndarray) and output.size:
            corrupted = output.copy()
            corrupted[0] = corrupted.flat[0] + 1
            return corrupted
        if isinstance(output, (int, float, np.integer, np.floating)):
            return type(output)(output + 1)
    return output


def corrupt_cache(
    plan: tuple[FaultSpec, ...], cache, name: str, scale: int, seed: int
) -> bool:
    """Apply a matching ``cache-corrupt`` fault to an on-disk artifact.

    Overwrites the head of the cached ``.npz`` (leaving its checksum
    sidecar stale) so the next load fails validation and degrades to a
    miss.  Returns True when an artifact was corrupted.
    """
    for fault in plan:
        if fault.kind != "cache-corrupt":
            continue
        if fault.graph is not None and fault.graph != name:
            continue
        path = cache.path_for(name, scale, seed)
        try:
            with open(path, "r+b") as stream:
                stream.write(b"\x00corrupted\x00")
            return True
        except OSError:
            return False
    return False
