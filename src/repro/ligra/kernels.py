"""The six GAP kernels written against the Ligra-style substrate.

Algorithm choices follow the classic frontier-based formulations that
distinguish this framework from the paper's six:

* BFS — parents via edgeMap with a first-writer update (the adaptive
  edgeMap *is* direction optimization);
* SSSP — frontier-based Bellman-Ford relaxation (no buckets: every round
  relaxes the whole improved frontier, paying extra work on weighted
  graphs but needing no priority structure);
* CC — min-label propagation over frontiers (only changed vertices stay
  active, unlike GraphIt's full-sweep variant);
* PR — Jacobi via a dense edgeMap each iteration;
* BC — Brandes with frontier-based forward and backward passes;
* TC — order-invariant merge counting (frontier machinery buys nothing
  for a topology-driven kernel).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation, permute
from ..la import first_occurrence_mask, gather_edges_weighted, relax_minimum
from ..la.intersect import count_forward_triangles
from .substrate import VertexSubset, edge_map

__all__ = [
    "ligra_bfs",
    "ligra_sssp",
    "ligra_cc",
    "ligra_pr",
    "ligra_bc",
    "ligra_tc",
]


def ligra_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Frontier BFS: parents claimed by the first updating edge."""
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source

    def update(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        modified = first_occurrence_mask(targets, n)
        parents[targets[modified]] = sources[modified]
        return modified

    def unvisited(vertices: np.ndarray) -> np.ndarray:
        return parents[vertices] < 0

    frontier = VertexSubset.single(n, source)
    while frontier:
        counters.add_round()
        frontier = edge_map(graph, frontier, update, cond=unvisited)
    return parents


def ligra_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Frontier Bellman-Ford: rounds of relaxation over improved vertices."""
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0

    frontier = VertexSubset.single(n, source)
    while frontier:
        counters.add_round()
        members = frontier.ids()
        sources, targets, weights = gather_edges_weighted(
            graph.indptr, graph.indices, graph.weights, members
        )
        counters.add_edges(targets.size)
        if targets.size == 0:
            break
        candidate = dist[sources] + weights
        better = candidate < dist[targets]
        targets, candidate = targets[better], candidate[better]
        if targets.size == 0:
            break
        improved = relax_minimum(dist, targets, candidate, n)
        frontier = VertexSubset(n, ids=improved)
    return dist


def ligra_cc(graph: CSRGraph) -> np.ndarray:
    """Frontier-based min-label propagation (only changed labels stay hot)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)

    def update(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        candidate = labels[sources]
        better = candidate < labels[targets]
        np.minimum.at(labels, targets[better], candidate[better])
        return better

    frontier = VertexSubset.from_ids(n, np.arange(n, dtype=np.int64))
    while frontier:
        counters.add_iteration()
        forward = edge_map(graph, frontier, update)
        if graph.directed:
            backward = edge_map(graph.transpose(), frontier, update)
            merged = np.union1d(forward.ids(), backward.ids())
            frontier = VertexSubset.from_ids(n, merged)
        else:
            frontier = forward
    return labels


def ligra_pr(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
) -> np.ndarray:
    """Jacobi PageRank: one dense edgeMap accumulation per iteration."""
    n = graph.num_vertices
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    out_degrees = graph.out_degrees.astype(np.float64)
    has_out = out_degrees > 0
    safe = np.where(has_out, out_degrees, 1.0)
    everything = VertexSubset.from_ids(n, np.arange(n, dtype=np.int64))
    incoming = np.zeros(n, dtype=np.float64)
    contrib = np.zeros(n, dtype=np.float64)

    def accumulate(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        np.add.at(incoming, targets, contrib[sources])
        return np.zeros(targets.size, dtype=bool)

    for _ in range(max_iterations):
        counters.add_iteration()
        np.divide(scores, safe, out=contrib)
        contrib[~has_out] = 0.0
        incoming[:] = 0.0
        edge_map(graph, everything, accumulate)
        updated = base + damping * incoming
        change = float(np.abs(updated - scores).sum())
        scores[:] = updated
        if change < tolerance:
            break
    return scores


def ligra_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Brandes over frontiers (forward levels, backward dependency rounds)."""
    n = graph.num_vertices
    scores = np.zeros(n, dtype=np.float64)

    for root in np.asarray(sources, dtype=np.int64):
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        depth[root] = 0
        sigma[root] = 1.0
        levels: list[np.ndarray] = [np.array([root], dtype=np.int64)]

        def count_paths(srcs: np.ndarray, tgts: np.ndarray) -> np.ndarray:
            np.add.at(sigma, tgts, sigma[srcs])
            return first_occurrence_mask(tgts, n)

        def unvisited(vertices: np.ndarray) -> np.ndarray:
            return depth[vertices] < 0

        frontier = VertexSubset.single(n, int(root))
        level = 0
        while frontier:
            counters.add_round()
            frontier = edge_map(graph, frontier, count_paths, cond=unvisited)
            level += 1
            members = frontier.ids()
            if members.size:
                depth[members] = level
                levels.append(members)

        delta = np.zeros(n, dtype=np.float64)
        transpose = graph.transpose()
        for level_index in range(len(levels) - 1, 0, -1):
            counters.add_round()
            current = levels[level_index]

            def push_dependency(srcs: np.ndarray, tgts: np.ndarray) -> np.ndarray:
                predecessor = depth[tgts] == depth[srcs] - 1
                np.add.at(
                    delta,
                    tgts[predecessor],
                    (sigma[tgts[predecessor]] / sigma[srcs[predecessor]])
                    * (1.0 + delta[srcs[predecessor]]),
                )
                return np.zeros(tgts.size, dtype=bool)

            edge_map(transpose, VertexSubset.from_ids(n, current), push_dependency)
        delta[root] = 0.0
        scores += delta
    return scores


def ligra_tc(graph: CSRGraph, seed: int = 0) -> int:
    """Order-invariant triangle count with the degree-relabel heuristic."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(1000, n))]
    if float(sample.mean()) > 2.0 * max(float(np.median(sample)), 1.0):
        counters.note("relabelled")
        graph = permute(graph, degree_order_permutation(graph, ascending=True))
    src, dst = graph.edge_array()
    keep = dst > src
    src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total, examined = count_forward_triangles(indptr, dst)
    counters.add_edges(examined)
    return total
