"""Ligra-style framework — the study's extensibility demonstration.

The paper's discussion proposes reusing its procedures to evaluate
additional frameworks; this package does exactly that with a seventh
framework built on the frontier-centric edgeMap/vertexMap abstraction of
Shun & Blelloch's Ligra.  It is registered as an *extended* framework:
``repro.frameworks.get("ligra")`` works everywhere (runner, verification,
tables), while the paper-comparison tooling keeps scoring only the
original six.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .kernels import ligra_bc, ligra_bfs, ligra_cc, ligra_pr, ligra_sssp, ligra_tc
from .substrate import VertexSubset, edge_map, vertex_map

__all__ = [
    "LigraFramework",
    "VertexSubset",
    "edge_map",
    "vertex_map",
    "ligra_bfs",
    "ligra_sssp",
    "ligra_cc",
    "ligra_pr",
    "ligra_bc",
    "ligra_tc",
]


class LigraFramework(Framework):
    """The Ligra-style frontier framework."""

    attributes = FrameworkAttributes(
        name="ligra",
        full_name="Ligra-style (extension)",
        framework_type="high-level library",
        graph_structure="outgoing & incoming edges",
        abstraction="frontier-centric (edgeMap/vertexMap)",
        synchronization="level-synchronous",
        dependences="NumPy (this reproduction)",
        intended_users="graph domain experts",
        algorithms={
            "bfs": "Direction-optimizing (adaptive edgeMap)",
            "sssp": "Frontier Bellman-Ford",
            "cc": "Frontier label propagation",
            "pr": "Jacobi SpMV",
            "bc": "Brandes (frontier passes)",
            "tc": "Order invariant + heuristic relabel",
        },
        unmodelled=("Ligra's shared-memory parallel scheduler",),
    )

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return ligra_bfs(graph, source)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return ligra_sssp(graph, source)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return ligra_pr(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        return ligra_cc(graph)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return ligra_bc(graph, sources)

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        return ligra_tc(undirected, seed=ctx.seed)
