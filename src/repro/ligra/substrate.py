"""Ligra-style substrate: vertexSubset + adaptive edgeMap / vertexMap.

The paper's discussion proposes extending the study's procedures to other
graph frameworks; this package is that extension, modeled on the
frontier-based abstraction of Shun & Blelloch's Ligra — historically the
framework that generalized Beamer's direction-optimizing BFS into a
reusable primitive:

* a ``VertexSubset`` holds the active vertices, physically sparse (index
  array) or dense (boolean array);
* ``edge_map(graph, subset, update, cond)`` applies ``update`` to every
  edge leaving the subset whose target passes ``cond``, returning the
  subset of updated targets — switching automatically between a sparse
  push traversal and a dense pull traversal by comparing the subset's
  out-edge volume against ``|E| / threshold``;
* ``vertex_map(subset, fn)`` applies a vertex function over the subset.

Update functions are vectorized: ``update(sources, targets) -> mask`` of
target entries actually modified (the CAS-success analog).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import gather_edges, unique_ids

__all__ = ["VertexSubset", "edge_map", "vertex_map", "EDGE_MAP_THRESHOLD"]

# Ligra's default: go dense when the frontier's edge volume exceeds m/20.
EDGE_MAP_THRESHOLD = 20

UpdateFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
CondFn = Callable[[np.ndarray], np.ndarray]


class VertexSubset:
    """A set of active vertices, sparse or dense at the engine's choice."""

    __slots__ = ("n", "_ids", "_dense")

    def __init__(self, n: int, ids: np.ndarray | None = None, dense: np.ndarray | None = None):
        self.n = int(n)
        self._ids = ids
        self._dense = dense

    @classmethod
    def from_ids(cls, n: int, ids: np.ndarray) -> "VertexSubset":
        return cls(n, ids=unique_ids(np.asarray(ids, dtype=np.int64), n))

    @classmethod
    def from_dense(cls, flags: np.ndarray) -> "VertexSubset":
        return cls(flags.size, dense=flags.astype(bool))

    @classmethod
    def single(cls, n: int, vertex: int) -> "VertexSubset":
        return cls.from_ids(n, np.array([vertex], dtype=np.int64))

    def size(self) -> int:
        """Number of member vertices."""
        if self._dense is not None:
            return int(self._dense.sum())
        return int(self._ids.size)

    def ids(self) -> np.ndarray:
        """Member ids as a sorted array."""
        if self._dense is not None:
            return np.flatnonzero(self._dense)
        return self._ids

    def dense(self) -> np.ndarray:
        """Members as a boolean flag array."""
        if self._dense is not None:
            return self._dense
        flags = np.zeros(self.n, dtype=bool)
        flags[self._ids] = True
        return flags

    def is_empty(self) -> bool:
        """Whether the subset has no members."""
        return self.size() == 0

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexSubset(n={self.n}, size={self.size()})"


def edge_map(
    graph: CSRGraph,
    subset: VertexSubset,
    update: UpdateFn,
    cond: CondFn | None = None,
    threshold: int = EDGE_MAP_THRESHOLD,
) -> VertexSubset:
    """Apply ``update`` over the out-edges of ``subset`` (adaptive direction).

    Returns the subset of targets for which ``update`` reported a
    modification.  ``cond`` prunes targets before ``update`` runs (and, in
    dense mode, prunes which vertices scan their in-edges at all — Ligra's
    early-exit semantics).
    """
    frontier = subset.ids()
    out_volume = int(graph.out_degrees[frontier].sum()) + frontier.size
    use_dense = out_volume > graph.num_edges // threshold

    if use_dense:
        counters.note("edge_map_dense")
        candidates = np.arange(graph.num_vertices, dtype=np.int64)
        if cond is not None:
            candidates = candidates[cond(candidates)]
        targets, sources = gather_edges(graph.in_indptr, graph.in_indices, candidates)
        counters.add_edges(sources.size)
        in_frontier = subset.dense()[sources]
        sources, targets = sources[in_frontier], targets[in_frontier]
    else:
        counters.note("edge_map_sparse")
        sources, targets = gather_edges(graph.indptr, graph.indices, frontier)
        counters.add_edges(targets.size)
        if cond is not None and targets.size:
            keep = cond(targets)
            sources, targets = sources[keep], targets[keep]

    if targets.size == 0:
        return VertexSubset(graph.num_vertices, ids=np.empty(0, dtype=np.int64))
    modified = update(sources, targets)
    return VertexSubset.from_ids(graph.num_vertices, targets[modified])


def vertex_map(
    subset: VertexSubset, fn: Callable[[np.ndarray], np.ndarray | None]
) -> VertexSubset:
    """Apply ``fn`` over the subset; keep vertices where it returns True."""
    ids = subset.ids()
    counters.add_vertices(ids.size)
    result = fn(ids)
    if result is None:
        return subset
    return VertexSubset.from_ids(subset.n, ids[result])
