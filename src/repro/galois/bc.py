"""Galois betweenness centrality: Brandes without GAP's successor bitmap.

Per the paper, Galois and GAP both run bulk-synchronous Brandes on
power-law graphs, but GAP is faster because it *saves* each vertex's
successor list (as a bitmap) during the forward pass.  Galois' backward
pass instead re-expands each level's adjacency and re-filters it by depth —
the extra edge work this implementation deliberately performs.

The asynchronous variant (used by the paper's Galois team on uniform
graphs under Baseline rules, where it *hurt* on low-diameter Urand) runs
the forward phase as label-correcting depth/path-count propagation over an
eager worklist — no level barriers; path counts are recomputed per level
once depths have stabilized, then the backward sweep is shared with the
synchronous variant.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph
from ..la import unique_ids
from ..worklist import for_each_eager

__all__ = ["galois_bc", "galois_bc_async"]


def _forward(graph: CSRGraph, source: int) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """BFS with path counting; returns (depth, sigma, levels)."""
    n = graph.num_vertices
    depth = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    depth[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    level = 0
    while frontier.size:
        counters.add_round()
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, frontier)
        counters.add_edges(tgts.size)
        fresh_mask = depth[tgts] < 0
        depth[tgts[fresh_mask]] = level + 1
        on_next = depth[tgts] == level + 1
        np.add.at(sigma, tgts[on_next], sigma[srcs[on_next]])
        frontier = unique_ids(tgts[fresh_mask], n)
        if frontier.size:
            levels.append(frontier)
        level += 1
    return depth, sigma, levels


def _backward(
    graph: CSRGraph,
    depth: np.ndarray,
    sigma: np.ndarray,
    levels: list[np.ndarray],
    source: int,
    scores: np.ndarray,
) -> None:
    """Dependency accumulation by re-expanding each level (no saved DAG)."""
    delta = np.zeros_like(sigma)
    for level_index in range(len(levels) - 2, -1, -1):
        counters.add_round()
        members = levels[level_index]
        # Re-expand and re-filter: the work GAP's successor bitmap skips.
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, members)
        counters.add_edges(tgts.size)
        succ = depth[tgts] == depth[srcs] + 1
        srcs, tgts = srcs[succ], tgts[succ]
        if srcs.size:
            contributions = (sigma[srcs] / sigma[tgts]) * (1.0 + delta[tgts])
            np.add.at(delta, srcs, contributions)
    delta[source] = 0.0
    scores += delta


def galois_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Accumulate Brandes dependencies from the given roots (bulk-sync)."""
    scores = np.zeros(graph.num_vertices, dtype=np.float64)
    for source in np.asarray(sources, dtype=np.int64):
        depth, sigma, levels = _forward(graph, int(source))
        _backward(graph, depth, sigma, levels, int(source), scores)
    return scores


def _forward_async(
    graph: CSRGraph, source: int
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Label-correcting forward phase: depths settle without barriers.

    Path counts cannot be accumulated during label correction (a vertex's
    count is only final once its depth is), so sigma is rebuilt level by
    level after the depths stabilize — the extra pass is the async
    variant's work-efficiency price on low-diameter graphs.
    """
    n = graph.num_vertices
    depth = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    queued = np.zeros(n, dtype=bool)
    depth[source] = 0
    queued[source] = True

    def relax(chunk: np.ndarray) -> np.ndarray:
        queued[chunk] = False
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, chunk)
        counters.add_edges(tgts.size)
        if tgts.size == 0:
            return tgts
        candidate = depth[srcs] + 1
        better = candidate < depth[tgts]
        tgts, candidate = tgts[better], candidate[better]
        if tgts.size == 0:
            return tgts
        np.minimum.at(depth, tgts, candidate)
        improved = unique_ids(tgts, n)
        fresh = improved[~queued[improved]]
        queued[fresh] = True
        return fresh

    for_each_eager(np.array([source], dtype=np.int64), relax)

    # Rebuild sigma and the level lists from the settled depths.
    reached = depth < np.iinfo(np.int64).max
    max_depth = int(depth[reached].max()) if reached.any() else 0
    sigma = np.zeros(n, dtype=np.float64)
    sigma[source] = 1.0
    levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]
    for level in range(max_depth):
        members = levels[level]
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, members)
        counters.add_edges(tgts.size)
        on_next = depth[tgts] == level + 1
        np.add.at(sigma, tgts[on_next], sigma[srcs[on_next]])
        next_members = np.flatnonzero(depth == level + 1)
        if next_members.size == 0:
            break
        levels.append(next_members)
    final_depth = np.where(reached, depth, -1)
    return final_depth, sigma, levels


def galois_bc_async(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Asynchronous-forward Brandes (the Baseline choice on uniform graphs)."""
    scores = np.zeros(graph.num_vertices, dtype=np.float64)
    for source in np.asarray(sources, dtype=np.int64):
        depth, sigma, levels = _forward_async(graph, int(source))
        _backward(graph, depth, sigma, levels, int(source), scores)
    return scores
