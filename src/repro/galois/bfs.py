"""Galois BFS: bulk-synchronous direction-optimizing + asynchronous variant.

Per Table III, Galois' BFS is direction-optimizing with an additional
asynchronous variant.  The async variant is a label-correcting push BFS
over a sparse chunked worklist: depth updates propagate eagerly without
round barriers, which pays off on high-diameter graphs (the paper measures
Galois 3.6x faster than GAP on Road) and wastes work on low-diameter ones
(the Baseline Urand regression the paper describes).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.bitmap import Bitmap
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph
from ..la import claim_first_writer
from ..la.spmv import masked_pull_claim
from ..worklist import for_each_eager

__all__ = ["sync_bfs", "async_bfs"]

ALPHA = 15
BETA = 18


def sync_bfs(
    graph: CSRGraph, source: int, pull_early_exit: bool = False
) -> np.ndarray:
    """Bulk-synchronous direction-optimizing BFS (same algorithm as GAP).

    ``pull_early_exit=True`` (Optimized mode) lets each unvisited row stop
    scanning its in-adjacency at the first frontier parent via the shared
    ``masked_pull_claim`` kernel; parents are identical either way, only
    the edges-examined counter shrinks.
    """
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    out_degrees = graph.out_degrees
    edges_remaining = graph.num_edges

    while frontier.size:
        counters.add_round()
        scout = int(out_degrees[frontier].sum())
        edges_remaining -= scout
        if scout > max(edges_remaining, 1) // ALPHA:
            bits = Bitmap.from_indices(n, frontier)
            while frontier.size and frontier.size > n // BETA:
                counters.add_round()
                unvisited = np.flatnonzero(parents < 0)
                fresh, examined = masked_pull_claim(
                    graph.in_indptr,
                    graph.in_indices,
                    unvisited,
                    bits.bits,
                    parents,
                    early_exit=pull_early_exit,
                )
                counters.add_edges(examined)
                if fresh.size == 0:
                    frontier = np.empty(0, dtype=np.int64)
                    break
                frontier = fresh
                bits = Bitmap.from_indices(n, frontier)
            if frontier.size == 0:
                break
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, frontier)
        counters.add_edges(tgts.size)
        unclaimed = parents[tgts] < 0
        srcs, tgts = srcs[unclaimed], tgts[unclaimed]
        if tgts.size == 0:
            break
        frontier = claim_first_writer(parents, tgts, srcs, n)
    return parents


def async_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Asynchronous label-correcting BFS over a sparse chunked worklist.

    A per-vertex on-worklist flag suppresses duplicate queue entries (the
    Galois discipline); a re-improved vertex that is already queued will
    read its freshest depth when its chunk is processed.
    """
    n = graph.num_vertices
    depth = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    queued = np.zeros(n, dtype=bool)
    depth[source] = 0
    parents[source] = source
    queued[source] = True

    def relax(chunk: np.ndarray) -> np.ndarray:
        queued[chunk] = False
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, chunk)
        counters.add_edges(tgts.size)
        if tgts.size == 0:
            return tgts
        candidate = depth[srcs] + 1
        better = candidate < depth[tgts]
        srcs, tgts, candidate = srcs[better], tgts[better], candidate[better]
        if tgts.size == 0:
            return tgts
        # Per target, keep the best (then first) improving candidate.
        order = np.lexsort((srcs, candidate, tgts))
        tgts_sorted = tgts[order]
        keep = np.concatenate([[True], tgts_sorted[1:] != tgts_sorted[:-1]])
        winners = order[keep]
        improving = candidate[winners] < depth[tgts[winners]]
        winners = winners[improving]
        depth[tgts[winners]] = candidate[winners]
        parents[tgts[winners]] = srcs[winners]
        activated = tgts[winners]
        fresh = ~queued[activated]
        queued[activated[fresh]] = True
        return activated[fresh]

    for_each_eager(np.array([source], dtype=np.int64), relax)
    return parents
