"""Galois SSSP: delta-stepping on an OBIM priority worklist.

The bulk-synchronous variant drains one priority bucket per round (a global
barrier each time the bucket refills); the asynchronous variant pops chunks
in priority order and relaxes them eagerly, letting fresh distances flow
into later chunks without barriers.  Galois has no bucket-fusion
optimization — the paper attributes GAP's SSSP edge over Galois exactly to
that — and the async variant is what narrows the gap on Road.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.nputil import expand_frontier_weighted
from ..graphs import CSRGraph
from ..la import unique_ids
from ..worklist import OrderedByIntegerMetric

__all__ = ["sync_delta_stepping", "async_delta_stepping"]

ASYNC_CHUNK = 1024


def _relax_chunk(
    graph: CSRGraph, chunk: np.ndarray, dist: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Relax all out-edges of ``chunk``; returns (improved vertices, dists)."""
    srcs, tgts, weights = expand_frontier_weighted(
        graph.indptr, graph.indices, graph.weights, chunk
    )
    counters.add_edges(tgts.size)
    if tgts.size == 0:
        return tgts, np.empty(0, dtype=np.float64)
    candidate = dist[srcs] + weights
    better = candidate < dist[tgts]
    tgts, candidate = tgts[better], candidate[better]
    if tgts.size == 0:
        return tgts, candidate
    np.minimum.at(dist, tgts, candidate)
    improved = unique_ids(tgts, graph.num_vertices)
    return improved, dist[improved]


def sync_delta_stepping(graph: CSRGraph, source: int, delta: int = 16) -> np.ndarray:
    """Bulk-synchronous delta-stepping; one barrier per bucket refill."""
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    obim = OrderedByIntegerMetric()
    obim.push(np.array([source], dtype=np.int64), np.array([0], dtype=np.int64))

    while True:
        priority = obim.current_priority()
        if priority is None:
            break
        members = obim.drain_priority(priority)
        counters.add_round()
        # Lazy deletion: drop entries whose distance moved to another bucket.
        members = np.unique(members)
        live = (dist[members] // delta).astype(np.int64) == priority
        members = members[live]
        if members.size == 0:
            continue
        improved, new_dist = _relax_chunk(graph, members, dist)
        if improved.size:
            obim.push(improved, (new_dist // delta).astype(np.int64))
    return dist


def async_delta_stepping(
    graph: CSRGraph, source: int, delta: int = 16, chunk_size: int = ASYNC_CHUNK
) -> np.ndarray:
    """Asynchronous delta-stepping: eager chunk-at-a-time relaxation.

    A per-vertex *on-worklist* flag suppresses duplicate queue entries, the
    standard Galois discipline: an improved vertex already awaiting
    processing is not pushed again (its relaxation will read the freshest
    distance anyway).  Without the flag, eager execution re-relaxes a
    vertex once per improvement event and the redundant work explodes.
    """
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    queued = np.zeros(n, dtype=bool)
    queued[source] = True
    obim = OrderedByIntegerMetric(chunk_size)
    obim.push(np.array([source], dtype=np.int64), np.array([0], dtype=np.int64))

    while True:
        popped = obim.pop_chunk()
        if popped is None:
            break
        _, chunk = popped
        counters.add_vertices(chunk.size)
        # With the on-worklist flag each vertex has at most one entry, so
        # every pop is processed with its *current* distance (an entry whose
        # bucket has since improved just relaxes early — harmless).
        queued[chunk] = False
        improved, new_dist = _relax_chunk(graph, chunk, dist)
        if improved.size:
            fresh = ~queued[improved]
            improved, new_dist = improved[fresh], new_dist[fresh]
            queued[improved] = True
            obim.push(improved, (new_dist // delta).astype(np.int64))
    return dist
