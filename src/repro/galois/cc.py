"""Galois connected components: hybrid Afforest (+ edge-blocked variant).

Galois uses the same Afforest algorithm as GAP (Table III marks it
"Hybrid Afforest" with an asynchronous variant).  Its operator formulation
permits the non-vertex-program neighborhoods Afforest needs — the paper
makes this a selling point of Galois' generality.  The Optimized run on Web
used an *edge-blocking* variant of the finish phase for better load
balance; we expose that as ``edge_blocking=True`` (the finish edges are
processed in fixed-size blocks with compression between blocks, letting
early blocks shrink the label chains later blocks walk).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.hooking import compress, converge, hook_pass, majority_component
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph

__all__ = ["galois_afforest"]

NEIGHBOR_ROUNDS = 2
EDGE_BLOCK = 1 << 15


def _all_edges_of(graph: CSRGraph, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Out- and (for directed graphs) in-edges of the given vertices."""
    src_out, dst_out = expand_frontier(graph.indptr, graph.indices, vertices)
    if not graph.directed:
        return src_out, dst_out
    src_in, dst_in = expand_frontier(graph.in_indptr, graph.in_indices, vertices)
    return np.concatenate([src_out, src_in]), np.concatenate([dst_out, dst_in])


def galois_afforest(
    graph: CSRGraph,
    seed: int = 0,
    neighbor_rounds: int = NEIGHBOR_ROUNDS,
    edge_blocking: bool = False,
) -> np.ndarray:
    """Afforest with Galois' operator-style finish phase."""
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)

    for k in range(neighbor_rounds):
        counters.add_round()
        has_kth = graph.out_degrees > k
        src = np.flatnonzero(has_kth)
        dst = graph.indices[graph.indptr[src] + k]
        hook_pass(comp, src, dst)
    compress(comp)

    rng = np.random.default_rng(seed)
    giant = majority_component(comp, rng)
    outside = np.flatnonzero(comp != giant)
    counters.note("vertices_outside_giant", float(outside.size))
    if outside.size == 0:
        return comp

    src, dst = _all_edges_of(graph, outside)
    if edge_blocking and src.size > EDGE_BLOCK:
        # Blocked finish: converge block by block; compressing between
        # blocks shortens the chains later blocks must walk.
        for start in range(0, src.size, EDGE_BLOCK):
            counters.add_round()
            converge(comp, src[start: start + EDGE_BLOCK], dst[start: start + EDGE_BLOCK])
        # A final global pass guarantees cross-block merges are complete.
        converge(comp, src, dst)
    else:
        converge(comp, src, dst)
    compress(comp)
    return comp
