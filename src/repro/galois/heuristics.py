"""Galois' run-time topology heuristics.

Under Baseline rules no per-graph hand tuning is allowed, so Galois picks
between its bulk-synchronous and asynchronous implementations with a vertex
sampling scheme (the paper: "similar to that in GAP for TC") that tests for
a power-law degree distribution.  Power-law is assumed to imply low
diameter (favoring bulk-synchronous) and uniform degrees to imply high
diameter (favoring asynchronous) — which, as the paper notes in a footnote,
misfires on Urand: uniform degrees but low diameter, making the Baseline
async choice a measurable mistake there.
"""

from __future__ import annotations

import numpy as np

from ..graphs import CSRGraph

__all__ = ["sampled_power_law", "assume_high_diameter"]

SAMPLE_SIZE = 1000
SKEW_RATIO = 2.0


def sampled_power_law(graph: CSRGraph, seed: int = 0) -> bool:
    """Sample degrees and test for heavy skew (power-law indicator)."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(SAMPLE_SIZE, n))]
    return float(sample.mean()) > SKEW_RATIO * max(float(np.median(sample)), 1.0)


def assume_high_diameter(graph: CSRGraph, seed: int = 0) -> bool:
    """Baseline assumption: not power-law => high diameter (see docstring)."""
    return not sampled_power_law(graph, seed)
