"""Galois PageRank: Gauss-Seidel SpMV with in-place updates.

Galois updates scores *in place*: within an iteration, later vertices read
the already-updated scores of earlier ones (Gauss-Seidel), so information
propagates along the vertex order within a single sweep and the iteration
count drops versus Jacobi.  The paper measures the gain growing with graph
diameter — Galois PR is 3.6x GAP on Road — because each sweep can carry a
contribution across many hops.  We realize the in-place discipline with
*blocked* sweeps: vertices are processed in consecutive blocks, each block
reading the freshest scores (Jacobi within a block, Gauss-Seidel across
blocks), which preserves the faster convergence while staying vectorized.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph

__all__ = ["gauss_seidel_pagerank"]

NUM_BLOCKS = 8


def gauss_seidel_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
    num_blocks: int = NUM_BLOCKS,
) -> np.ndarray:
    """PageRank with blocked in-place (Gauss-Seidel) sweeps."""
    n = graph.num_vertices
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    out_degrees = graph.out_degrees.astype(np.float64)
    has_out = out_degrees > 0
    safe_degrees = np.where(has_out, out_degrees, 1.0)

    bounds = np.linspace(0, n, num_blocks + 1, dtype=np.int64)
    for _ in range(max_iterations):
        counters.add_iteration()
        counters.add_edges(graph.num_edges)
        previous = scores.copy()
        for b in range(num_blocks):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            # Pull the in-neighbors of this block using *current* scores.
            gathered = graph.in_indices[graph.in_indptr[lo]: graph.in_indptr[hi]]
            contrib = np.where(
                has_out[gathered], scores[gathered] / safe_degrees[gathered], 0.0
            )
            prefix = np.concatenate([[0.0], np.cumsum(contrib)])
            offsets = graph.in_indptr[lo: hi + 1] - graph.in_indptr[lo]
            sums = prefix[offsets[1:]] - prefix[offsets[:-1]]
            scores[lo:hi] = base + damping * sums
        change = float(np.abs(scores - previous).sum())
        if change < tolerance:
            break
    return scores
