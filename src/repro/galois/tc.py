"""Galois triangle counting: same order-invariant algorithm as GAP.

Table III lists Galois' TC as order-invariant with heuristic-controlled
relabelling, i.e. the GAP algorithm.  The paper's differences on this
kernel are scheduling-level (work stealing helps on skewed Web, hurts on
balanced Urand — both unmodelled here) plus one *rules* difference: in the
Optimized data set the Galois team excluded preprocessing/relabel time,
which this reproduction honours through the framework's untimed
``prepare`` hook rather than inside the kernel.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation, permute

__all__ = ["galois_tc", "galois_relabel"]

SAMPLE_SIZE = 1000
SKEW_RATIO = 2.0


def _relabel_wanted(graph: CSRGraph, seed: int) -> bool:
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(SAMPLE_SIZE, n))]
    return float(sample.mean()) > SKEW_RATIO * max(float(np.median(sample)), 1.0)


def galois_relabel(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Degree-sort relabel when the heuristic calls for it (else identity)."""
    if not _relabel_wanted(graph, seed):
        return graph
    return permute(graph, degree_order_permutation(graph, ascending=True))


def galois_tc(graph: CSRGraph, seed: int = 0, skip_relabel: bool = False) -> int:
    """Order-invariant triangle count over forward adjacency lists."""
    if not skip_relabel and _relabel_wanted(graph, seed):
        counters.note("relabelled")
        graph = permute(graph, degree_order_permutation(graph, ascending=True))
    src, dst = graph.edge_array()
    keep = dst > src
    src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=graph.num_vertices)
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    total = 0
    for u in range(graph.num_vertices):
        row = dst[indptr[u]: indptr[u + 1]]
        if row.size < 2:
            continue
        starts, ends = indptr[row], indptr[row + 1]
        chunks = [dst[s:e] for s, e in zip(starts, ends) if e > s]
        if not chunks:
            continue
        targets = np.concatenate(chunks)
        counters.add_edges(targets.size + row.size)
        position = np.searchsorted(row, targets)
        position[position == row.size] = 0
        total += int((row[position] == targets).sum())
    return total
