"""Galois: data-centric operator formulation with sync/async scheduling.

The kernels follow Table III's Galois column and the paper's Section V
narrative: direction-optimizing BFS and delta-stepping SSSP, each with a
bulk-synchronous and an asynchronous variant selected by a sampling
heuristic under Baseline rules and by known graph diameter under Optimized
rules; hybrid Afforest CC (edge-blocked on Web when Optimized);
Gauss-Seidel PR; Brandes BC (without GAP's successor bitmap); and GAP's
order-invariant TC (relabel untimed under Optimized rules, as the Galois
team ran it).
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import galois_bc, galois_bc_async
from .bfs import async_bfs, sync_bfs
from .cc import galois_afforest
from .heuristics import assume_high_diameter
from .pagerank import gauss_seidel_pagerank
from .sssp import async_delta_stepping, sync_delta_stepping
from .tc import galois_relabel, galois_tc

__all__ = [
    "GaloisFramework",
    "sync_bfs",
    "async_bfs",
    "sync_delta_stepping",
    "async_delta_stepping",
    "galois_afforest",
    "gauss_seidel_pagerank",
    "galois_bc",
    "galois_bc_async",
    "galois_tc",
]

# Graphs the paper's Galois team treated as high-diameter when tuning the
# Optimized runs (they knew Road's diameter; everything else is low).
HIGH_DIAMETER_GRAPHS = frozenset({"road"})


class GaloisFramework(Framework):
    """Galois as a Framework."""

    attributes = FrameworkAttributes(
        name="galois",
        full_name="Galois",
        framework_type="generic high-level library",
        graph_structure="outgoing and/or incoming edges",
        abstraction="vertex, edge, or chunked-edges centric",
        synchronization="level-synchronous or asynchronous",
        dependences="C++17, boost, libllvm (original); NumPy (this reproduction)",
        intended_users="graph domain experts",
        algorithms={
            "bfs": "Direction-optimizing + async variant",
            "sssp": "Delta-stepping + async variant",
            "cc": "Hybrid Afforest + async variant",
            "pr": "Gauss-Seidel SpMV",
            "bc": "Brandes + async variant",
            "tc": "Order invariant + heuristic relabel",
        },
        unmodelled=(
            "huge pages / NUMA-blocked allocation",
            "work stealing & NUMA-aware load balancing",
        ),
    )

    def _use_async(self, graph: CSRGraph, ctx: RunContext) -> bool:
        """Scheduling choice: heuristic (Baseline) or known diameter (Optimized)."""
        if ctx.optimized and ctx.graph_name:
            return ctx.graph_name in HIGH_DIAMETER_GRAPHS
        return assume_high_diameter(graph, ctx.seed)

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        if self._use_async(graph, ctx):
            return async_bfs(graph, source)
        # Optimized runs also stop each pull row at its first frontier
        # parent (shared early-exit kernel); Baseline keeps the full scan.
        return sync_bfs(graph, source, pull_early_exit=ctx.optimized)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        if self._use_async(graph, ctx):
            return async_delta_stepping(graph, source, delta=ctx.delta)
        return sync_delta_stepping(graph, source, delta=ctx.delta)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return gauss_seidel_pagerank(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        edge_blocking = ctx.optimized and ctx.graph_name == "web"
        return galois_afforest(graph, seed=ctx.seed, edge_blocking=edge_blocking)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        # Same scheduling policy as BFS/SSSP: the Baseline heuristic picks
        # the async variant on assumed-high-diameter graphs (hurting on
        # Urand, as the paper reports); Optimized mode knows the diameters.
        if self._use_async(graph, ctx):
            return galois_bc_async(graph, sources)
        return galois_bc(graph, sources)

    def prepare(self, kernel: str, graph: CSRGraph, ctx: RunContext) -> CSRGraph:
        if kernel == "tc" and ctx.optimized:
            # The Galois team excluded relabel time in the Optimized runs.
            undirected = graph.to_undirected() if graph.directed else graph
            return galois_relabel(undirected, seed=ctx.seed)
        return graph

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        # Under Optimized rules `prepare` already relabelled (untimed).
        return galois_tc(undirected, seed=ctx.seed, skip_relabel=ctx.optimized)
