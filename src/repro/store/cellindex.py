"""Persistent cell-level memoization index for the benchmark service.

The run archive is content-addressed over *whole campaigns*: a run_id only
matches when every cell of a ResultSet matches.  A memoizing server needs
the finer question — "has this one (graph, mode, kernel, framework) cell
been measured under this spec and environment before, and in which run?"
— answered without loading a single results.json.  This index is that
mapping:

* the key is a :func:`cell_digest` — SHA-256 over the campaign's
  *identity* (the spec minus execution topology, exactly the fields
  :func:`repro.resilience.journal.campaign_fingerprint` uses, plus the
  comparability slice of the environment fingerprint) and the cell's
  canonical ``(graph, mode, kernel, framework)`` key;
* the value is the ``run_id`` of an archived run containing that cell,
  so a hit is served by reading the archived ResultSet (or a warm cache
  of it) instead of executing anything;
* storage is an append-only JSONL file beside the archive
  (``<root>/cell_index.jsonl``) with the same crash discipline as the
  checkpoint journal: one flushed+fsynced line per entry, torn trailing
  line discarded on load, header line carrying the schema version.

Execution topology (``jobs``/``pool``/``batch_size``) is deliberately
outside the digest — the executor equivalence matrix guarantees cells are
interchangeable across topologies, so a campaign measured under
``--jobs 4`` must hit for a client submitting the same spec serially.
Likewise ``git_sha`` and wall-clock metadata stay out: only the
:data:`~repro.store.environment.COMPARABILITY_KEYS` slice of the
environment participates, matching what the regression gate considers
"the same machine".

For file-backed datasets (:mod:`repro.graphs.datasets`) the graph element
of the cell key is *normalized to the file's content digest* before
hashing (:func:`normalize_cell_key`): two submissions referencing
byte-identical files share cells regardless of path, while an edited file
is a different measurement and misses.

A lost or corrupt index is a cache, not the source of truth:
:meth:`CellIndex.rebuild_from_archive` re-derives every entry from the
archived manifests + results (dataset provenance travels in the
manifests, so rebuilding never needs the original files).
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import ArchiveError
from ..resilience.iofaults import shim_fsync, shim_write
from .archive import RunArchive, canonical_json
from .environment import COMPARABILITY_KEYS, fingerprint
from .integrity import seal_line, verify_line

__all__ = [
    "CELL_INDEX_VERSION",
    "CellIndex",
    "cell_digest",
    "comparable_environment",
    "derive_index_entries",
    "identity_hasher",
    "normalize_cell_key",
    "spec_identity",
]

CELL_INDEX_VERSION = 1

#: Spec fields that are execution topology, not measurement identity.
TOPOLOGY_KEYS = ("jobs", "pool", "batch_size")

#: Canonical cell key: matches ``RunResult.cell_key``.
CellKey = tuple[str, str, str, str]


def spec_identity(spec) -> dict[str, object]:
    """The measurement-identity slice of a spec (topology stripped).

    Accepts a :class:`~repro.core.spec.BenchmarkSpec` or its dict form.
    Matches the ``spec`` field of
    :func:`repro.resilience.journal.campaign_fingerprint` so journal
    headers and cell digests agree about what "the same campaign" means.
    """
    spec_dict = spec.as_dict() if hasattr(spec, "as_dict") else dict(spec)
    return {
        key: value
        for key, value in spec_dict.items()
        if key not in TOPOLOGY_KEYS
    }


#: Current-process comparability slice, computed once: the slice is
#: process-invariant, and the full fingerprint() behind it shells out
#: for git_sha — far too slow for a per-submission hot path.
_PROCESS_ENVIRONMENT: dict[str, object] | None = None


def comparable_environment(
    environment: dict[str, object] | None = None,
) -> dict[str, object]:
    """The comparability slice of an environment fingerprint.

    ``None`` snapshots the current process (cached after the first
    call).  Only :data:`~repro.store.environment.COMPARABILITY_KEYS`
    participate in cell digests — a new git commit must not cold-start
    the cache, but a different interpreter or NumPy must.
    """
    global _PROCESS_ENVIRONMENT
    if environment is None:
        if _PROCESS_ENVIRONMENT is None:
            env = fingerprint()
            _PROCESS_ENVIRONMENT = {
                key: env.get(key) for key in COMPARABILITY_KEYS
            }
        return dict(_PROCESS_ENVIRONMENT)
    return {key: environment.get(key) for key in COMPARABILITY_KEYS}


def identity_hasher(spec, environment: dict[str, object] | None = None):
    """A SHA-256 pre-seeded with the (spec identity, environment) prefix.

    Hashing the campaign-wide prefix once and ``copy()``-ing per cell is
    the hot-path form: a submission with hundreds of cells pays for the
    spec JSON a single time.  Use with :func:`cell_digest`'s ``hasher=``.
    """
    prefix = canonical_json(
        {
            "environment": comparable_environment(environment),
            "spec": spec_identity(spec),
        }
    )
    return hashlib.sha256(prefix.encode())


def normalize_cell_key(
    cell_key: Iterable[str],
    datasets: dict[str, object] | None = None,
) -> CellKey:
    """Replace a file-backed graph reference with its content identity.

    ``datasets`` is a provenance map (ref -> entry carrying ``digest``),
    as recorded in archive manifests, journal fingerprints, and results
    meta by :func:`repro.graphs.datasets.graph_identities`.  The graph
    element of a cell key is the reference the client submitted
    (``file:/some/path.mtx``); hashing *that* would make cell identity
    path-sensitive — renames would miss and edits would hit.  Mapping it
    to :func:`repro.graphs.datasets.dataset_identity` (``file:sha256:...``)
    before digesting keys the memo on the bytes instead.  Generator graph
    names (and keys with no provenance entry) pass through unchanged.
    """
    key = tuple(str(part) for part in cell_key)
    if datasets:
        entry = datasets.get(key[0])
        digest = entry.get("digest") if isinstance(entry, dict) else entry
        if digest:
            from ..graphs.datasets import dataset_identity

            return (dataset_identity(str(digest)),) + key[1:]
    return key


def cell_digest(
    spec,
    cell_key: Iterable[str],
    environment: dict[str, object] | None = None,
    hasher=None,
) -> str:
    """Digest of one (spec identity, environment, cell) measurement.

    ``cell_key`` is the canonical ``(graph, mode, kernel, framework)``
    tuple.  Pass a pre-built ``hasher`` (:func:`identity_hasher`) to skip
    re-hashing the campaign prefix per cell; ``spec`` is ignored then.
    """
    h = identity_hasher(spec, environment) if hasher is None else hasher.copy()
    h.update(canonical_json(list(cell_key)).encode())
    return h.hexdigest()[:16]


class CellIndex:
    """Append-only digest → run_id map with crash-safe JSONL persistence.

    Thread-safe: the service's HTTP handler threads probe it concurrently
    while the execution engine appends.  Cross-process appends are *not*
    coordinated (one server owns the file); a reader racing a writer sees
    a prefix of the entries, which is always a valid (smaller) cache.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, object]] = {}
        self._lock = threading.Lock()
        self._stream = None
        self._load()

    @classmethod
    def for_archive(cls, archive: RunArchive) -> "CellIndex":
        """The index that lives beside an archive's ``runs/`` directory."""
        return cls(archive.root / "cell_index.jsonl")

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        """Replay the JSONL file, verifying each line's checksum.

        A torn trailing line (no newline) is discarded — the interrupted
        append never became durable.  A *final* line that fails to parse
        or fails its checksum is discarded the same way: the writer died
        between payload and fsync, so the record was never promised.  An
        *interior* bad line is different — later appends succeeded after
        it, so this is corruption (bit rot, two uncoordinated writers),
        and the load fails so self-healing can quarantine and rebuild.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        if raw and not raw.endswith(b"\n"):
            lines = lines[:-1]  # torn tail: the interrupted append
        numbered = [
            (lineno, line.strip())
            for lineno, line in enumerate(lines)
            if line.strip()
        ]
        last = numbered[-1][0] if numbered else -1
        for lineno, line in numbered:
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == last:
                    break  # flushed but garbled tail: treat as torn
                raise ArchiveError(
                    f"cell index {self.path} line {lineno + 1} is corrupt "
                    f"(delete the file to rebuild from the archive): {exc}"
                ) from exc
            if not isinstance(record, dict) or not verify_line(record):
                if lineno == last:
                    break  # checksum-failed tail: never fully durable
                raise ArchiveError(
                    f"cell index {self.path} line {lineno + 1} failed its "
                    "checksum (delete the file to rebuild from the archive)"
                )
            if lineno == 0:
                if record.get("cell_index_version") != CELL_INDEX_VERSION:
                    raise ArchiveError(
                        f"{self.path} is not a version-{CELL_INDEX_VERSION} "
                        "cell index"
                    )
                continue
            digest = record.get("digest")
            if isinstance(digest, str):
                # Later lines win: a re-archived cell points at the
                # freshest run containing it.
                self._entries[digest] = record

    def _open_stream(self):
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._stream = open(self.path, "ab")
            if fresh:
                self._write_line({"cell_index_version": CELL_INDEX_VERSION})
        return self._stream

    def _write_line(self, record: dict[str, object]) -> None:
        data = json.dumps(seal_line(record), default=str).encode() + b"\n"
        shim_write(self._stream, data, self.path)

    def _sync(self) -> None:
        shim_fsync(self._stream, self.path)

    def close(self) -> None:
        """Close the append stream (reopened lazily on next write)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "CellIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def get(self, digest: str) -> dict[str, object] | None:
        """The full entry for a digest (``run_id``, ``cell``), or None."""
        with self._lock:
            entry = self._entries.get(digest)
            return dict(entry) if entry is not None else None

    def run_id_for(self, digest: str) -> str | None:
        """The archived run holding this cell, or None on a miss."""
        with self._lock:
            entry = self._entries.get(digest)
            return str(entry["run_id"]) if entry else None

    def digests(self) -> Iterator[str]:
        """Snapshot iterator over every known cell digest."""
        with self._lock:
            return iter(list(self._entries))

    # -- updates --------------------------------------------------------

    def add(self, digest: str, run_id: str, cell_key: Iterable[str]) -> None:
        """Durably record one cell → run mapping (idempotent)."""
        self.add_many([(digest, run_id, tuple(cell_key))])

    def add_many(
        self, items: Iterable[tuple[str, str, CellKey]]
    ) -> int:
        """Record a batch of mappings with a single fsync; returns count.

        Re-adding an identical mapping is a no-op; a digest remapped to a
        new run_id is appended (replay keeps the latest).
        """
        appended = 0
        with self._lock:
            self._open_stream()
            for digest, run_id, cell_key in items:
                existing = self._entries.get(digest)
                if existing is not None and existing.get("run_id") == run_id:
                    continue
                record = {
                    "digest": digest,
                    "run_id": run_id,
                    "cell": list(cell_key),
                }
                self._write_line(record)
                self._entries[digest] = record
                appended += 1
            if appended:
                self._sync()
        return appended

    # -- recovery -------------------------------------------------------

    def rebuild_from_archive(self, archive: RunArchive) -> int:
        """Re-derive entries from archived runs; returns cells indexed."""
        return self.add_many(derive_index_entries(archive))


def derive_index_entries(
    archive: RunArchive,
) -> Iterator[tuple[str, str, CellKey]]:
    """Every ``(digest, run_id, cell_key)`` an archive can prove.

    Each run's manifest carries the spec and the environment that
    measured it; each results.json carries the cells.  Runs without a
    spec in the manifest (hand-archived payloads) are skipped — they
    cannot be dedup targets because no submission can reproduce their
    identity.  Failed cells (``error``/``timeout``/``skipped`` results)
    are skipped too: the service only indexes and serves *ok* cells, so
    deriving them here would rebuild an index promising hits the server
    must then refuse.  This is both how
    :meth:`CellIndex.rebuild_from_archive` recovers a lost index and the
    ground truth the scrubber compares an existing index against.
    """
    for entry in archive.list_runs():
        run_id = str(entry["run_id"])
        try:
            record = archive.lookup(run_id)
            results = record.load_results()
        except (ArchiveError, OSError, ValueError, KeyError):
            continue
        spec = record.manifest.get("spec")
        environment = record.manifest.get("environment")
        if not isinstance(spec, dict):
            continue
        env = environment if isinstance(environment, dict) else None
        datasets = record.manifest.get("datasets")
        datasets = datasets if isinstance(datasets, dict) else None
        hasher = identity_hasher(spec, env)
        for result in results:
            if not result.ok:
                continue
            key = normalize_cell_key(result.cell_key, datasets)
            digest = cell_digest(spec, key, hasher=hasher)
            yield digest, run_id, result.cell_key
