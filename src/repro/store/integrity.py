"""Storage integrity: line checksums, run digests, scrub, quarantine.

"Measure once, serve forever" is only as good as the bytes under it.  The
archive's crash discipline (staged renames, fsynced appends, torn-tail
discard) protects against *interrupted* writes, but not against *silent*
damage — a bit flipped by bad RAM or a failing disk, a file truncated by
an overeager cleanup, an index line garbled by two uncoordinated writers.
This module makes such damage detectable and recoverable:

* **per-record checksums** — every cell-index and journal line carries a
  ``crc`` (:func:`seal_line`), a short SHA-256 of the record's canonical
  JSON.  Replay verifies each line (:func:`verify_line`): a mismatched
  *final* line is discarded like a torn tail (the record was never fully
  durable), while a mismatched interior line is hard evidence of
  corruption and fails the load so self-healing can kick in.  Lines
  written before this scheme (no ``crc`` field) remain readable.
* **whole-run digests** — archive manifests record the SHA-256 of the
  run's ``results.json`` and ``spans.jsonl`` at archive time
  (:func:`run_file_digests`), so any later mutation of an archived run is
  detectable without trusting the payload's own parseability.
* **scrub** (:func:`scrub`) — verifies every archived run against its
  manifest and every cell-index entry against the archive, moves damaged
  runs into ``<root>/quarantine/`` (never deletes: quarantined bytes are
  forensic evidence, and quarantining is what lets the *rest* of the
  archive stay servable), rebuilds the cell index when it disagrees with
  the surviving runs, and writes a ``last_scrub.json`` verdict that the
  service's ``/health`` endpoint surfaces.
* **self-healing index open** (:func:`open_self_healing_index`) — a
  server whose cell index fails checksum replay quarantines it and
  rebuilds from the archive instead of refusing to start; a lost or
  corrupt index is a cache, never the source of truth.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ArchiveError
from .archive import RunArchive, write_json_atomic

__all__ = [
    "CRC_FIELD",
    "ScrubReport",
    "file_sha256",
    "last_scrub_report",
    "line_crc",
    "open_self_healing_index",
    "quarantine_count",
    "quarantine_run",
    "run_file_digests",
    "scrub",
    "seal_line",
    "verify_line",
    "verify_run",
]

#: Field name carrying a record's checksum inside JSONL lines.
CRC_FIELD = "crc"

#: Digest length kept per line: 12 hex chars = 48 bits, plenty to make an
#: accidental collision on a damaged line implausible while keeping the
#: per-record overhead far below the record itself.
_CRC_HEX_CHARS = 12

#: Files whose digests an archive manifest records, in manifest order.
RUN_DIGEST_FILES = ("results.json", "spans.jsonl")


# -- line checksums -----------------------------------------------------


def line_crc(record: dict[str, object]) -> str:
    """Checksum of a record's canonical JSON, excluding the crc itself.

    Uses ``default=str`` like the JSONL writers do, so a record sealed
    before serialization and the same record re-parsed from disk hash
    identically even when a value was stringified on the way out.
    """
    body = {key: value for key, value in record.items() if key != CRC_FIELD}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:_CRC_HEX_CHARS]


def seal_line(record: dict[str, object]) -> dict[str, object]:
    """A copy of ``record`` carrying its :func:`line_crc`."""
    sealed = dict(record)
    sealed[CRC_FIELD] = line_crc(record)
    return sealed


def verify_line(record: dict[str, object]) -> bool:
    """True when the record's crc matches (or predates the crc scheme).

    Records without a ``crc`` field were written before checksumming and
    are accepted as-is — the scheme must not invalidate every archive in
    existence on upgrade.
    """
    crc = record.get(CRC_FIELD)
    if crc is None:
        return True
    return crc == line_crc(record)


# -- whole-run digests --------------------------------------------------


def file_sha256(path: str | Path) -> str:
    """Streaming SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def run_file_digests(run_dir: str | Path) -> dict[str, str]:
    """Digests of a run directory's payload files (absent files skipped)."""
    run_dir = Path(run_dir)
    digests: dict[str, str] = {}
    for name in RUN_DIGEST_FILES:
        path = run_dir / name
        if path.exists():
            digests[name] = file_sha256(path)
    return digests


def verify_run(run_dir: str | Path) -> list[str]:
    """Problems with one archived run directory (empty = verified).

    Checks, in order of increasing trust: the manifest parses, the
    payload files it digested still hash to the recorded values, and the
    results payload itself parses as a ResultSet.  Runs archived before
    integrity digests (no ``integrity`` block) get the parse checks only.
    """
    run_dir = Path(run_dir)
    problems: list[str] = []
    manifest_path = run_dir / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"manifest unreadable: {exc}"]
    if manifest.get("run_id") not in (None, run_dir.name):
        problems.append(
            f"manifest run_id {manifest.get('run_id')!r} does not match "
            f"directory {run_dir.name!r}"
        )
    recorded = manifest.get("integrity")
    if isinstance(recorded, dict):
        actual = run_file_digests(run_dir)
        for name, digest in recorded.items():
            if actual.get(name) != digest:
                problems.append(
                    f"{name} digest mismatch (recorded {str(digest)[:12]}, "
                    f"actual {str(actual.get(name))[:12]})"
                )
    results_path = run_dir / "results.json"
    try:
        from ..core.results import ResultSet

        ResultSet.load_json(results_path)
    except Exception as exc:  # noqa: BLE001 - any parse failure is damage
        problems.append(f"results.json unparseable: {exc}")
    return problems


# -- quarantine ---------------------------------------------------------


def quarantine_dir(root: str | Path) -> Path:
    """The quarantine area beside an archive's ``runs/``."""
    return Path(root) / "quarantine"


def quarantine_count(root: str | Path) -> int:
    """Artifacts currently held in quarantine (0 when none/absent)."""
    qdir = quarantine_dir(root)
    if not qdir.is_dir():
        return 0
    return sum(1 for entry in qdir.iterdir() if not entry.name.startswith("."))


def _quarantine_target(root: Path, name: str) -> Path:
    qdir = quarantine_dir(root)
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / name
    suffix = 0
    while target.exists():
        suffix += 1
        target = qdir / f"{name}.{suffix}"
    return target


def quarantine_run(archive: RunArchive, run_id: str) -> Path:
    """Move one damaged run directory into quarantine; returns the target."""
    source = archive.runs_dir / run_id
    target = _quarantine_target(archive.root, run_id)
    shutil.move(str(source), str(target))
    return target


# -- scrub --------------------------------------------------------------


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over an archive + its cell index."""

    archive_root: str
    started_at: str
    checked_runs: int = 0
    quarantined: list[dict[str, object]] = field(default_factory=list)
    index_problems: list[str] = field(default_factory=list)
    index_rebuilt: bool = False
    index_entries: int = 0
    unresolved: list[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """``clean`` (nothing wrong), ``healed`` (damage found and
        repaired), or ``failed`` (problems remain after healing)."""
        if self.unresolved:
            return "failed"
        if self.quarantined or self.index_rebuilt:
            return "healed"
        return "clean"

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (what ``last_scrub.json`` persists)."""
        return {
            "archive_root": self.archive_root,
            "started_at": self.started_at,
            "verdict": self.verdict,
            "checked_runs": self.checked_runs,
            "quarantined": list(self.quarantined),
            "index_problems": list(self.index_problems),
            "index_rebuilt": self.index_rebuilt,
            "index_entries": self.index_entries,
            "unresolved": list(self.unresolved),
        }


def last_scrub_path(root: str | Path) -> Path:
    """Where an archive's most recent scrub report is persisted."""
    return Path(root) / "last_scrub.json"


def last_scrub_report(root: str | Path) -> dict[str, object] | None:
    """The most recent scrub verdict for an archive root, or None."""
    try:
        raw = json.loads(last_scrub_path(root).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return raw if isinstance(raw, dict) else None


def _scan_index(path: Path) -> tuple[dict[str, str], list[str]]:
    """Tolerantly read a cell-index file: (digest -> run_id, problems).

    Unlike :class:`CellIndex`, never raises: corrupt lines become
    problem strings, because the scrubber's job is to *report and heal*,
    not to fall over where the server would.
    """
    entries: dict[str, str] = {}
    problems: list[str] = []
    if not path.exists():
        return entries, problems
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"line {len(lines)}: torn trailing line")
        lines = lines[:-1]
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"line {lineno + 1}: unparseable")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno + 1}: not an object")
            continue
        if not verify_line(record):
            problems.append(f"line {lineno + 1}: checksum mismatch")
            continue
        if lineno == 0 and "cell_index_version" in record:
            continue
        digest = record.get("digest")
        run_id = record.get("run_id")
        if isinstance(digest, str) and isinstance(run_id, str):
            entries[digest] = run_id
    return entries, problems


def scrub(
    archive: RunArchive,
    quarantine: bool = True,
) -> ScrubReport:
    """Verify-and-heal pass over an archive and its cell index.

    1. Every run directory is verified (:func:`verify_run`); damaged runs
       move to quarantine (with ``quarantine=False`` they are only
       reported, and the verdict is ``failed`` — the damage persists).
    2. The archive's listing index is rebuilt if any run was quarantined
       (run directories are the source of truth; the listing must not
       keep advertising evicted runs).
    3. The cell index is compared against a fresh derivation from the
       surviving runs: corrupt lines, entries pointing at quarantined or
       unknown runs, or missing entries all trigger a rebuild — after
       which every index entry provably resolves to a verified run.

    The report is persisted to ``<root>/last_scrub.json`` so operators
    (and the service's ``/health``) can see the latest verdict.
    """
    # Imported here, not at module scope: cellindex seals its lines with
    # this module's checksums, so the dependency points that way.
    from .cellindex import CellIndex, derive_index_entries

    report = ScrubReport(
        archive_root=str(archive.root),
        started_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    runs_dir = archive.runs_dir
    damaged: list[str] = []
    if runs_dir.is_dir():
        for run_dir in sorted(runs_dir.iterdir()):
            if run_dir.name.startswith("."):
                continue
            report.checked_runs += 1
            problems = verify_run(run_dir)
            if not problems:
                continue
            entry: dict[str, object] = {
                "run_id": run_dir.name,
                "problems": problems,
            }
            if quarantine:
                try:
                    target = quarantine_run(archive, run_dir.name)
                    entry["quarantined_to"] = str(target)
                    damaged.append(run_dir.name)
                except OSError as exc:
                    report.unresolved.append(
                        f"run {run_dir.name}: quarantine failed: {exc}"
                    )
            else:
                report.unresolved.append(
                    f"run {run_dir.name}: damaged (quarantine disabled): "
                    + "; ".join(problems)
                )
            report.quarantined.append(entry)

    if damaged:
        # The listing index is derived state; regenerate it from the
        # surviving manifests so history/lookup stop naming evicted runs.
        archive.index_path.unlink(missing_ok=True)
        archive._rebuild_index()

    # Cross-check the cell index against what the surviving archive can
    # actually prove: every entry must re-derive from a verified run.
    index_path = archive.root / "cell_index.jsonl"
    on_disk, line_problems = _scan_index(index_path)
    report.index_problems.extend(line_problems)
    expected = {
        digest: run_id for digest, run_id, _ in derive_index_entries(archive)
    }
    stale = {
        digest: run_id
        for digest, run_id in on_disk.items()
        if expected.get(digest) != run_id
    }
    for digest, run_id in sorted(stale.items()):
        report.index_problems.append(
            f"entry {digest} -> {run_id}: not derivable from the archive"
        )
    missing = [digest for digest in expected if digest not in on_disk]
    for digest in sorted(missing):
        report.index_problems.append(
            f"entry {digest} -> {expected[digest]}: archived but not indexed"
        )

    if report.index_problems:
        if index_path.exists():
            try:
                shutil.move(
                    str(index_path),
                    str(_quarantine_target(archive.root, index_path.name)),
                )
            except OSError as exc:
                report.unresolved.append(f"cell index: quarantine failed: {exc}")
        if not report.unresolved:
            with CellIndex(index_path) as index:
                index.rebuild_from_archive(archive)
                report.index_entries = len(index)
            report.index_rebuilt = True
    else:
        report.index_entries = len(on_disk)

    try:
        write_json_atomic(last_scrub_path(archive.root), report.as_dict())
    except OSError as exc:
        report.unresolved.append(f"could not persist scrub report: {exc}")
    return report


# -- self-healing index -------------------------------------------------


def open_self_healing_index(
    archive: RunArchive,
) -> tuple[CellIndex, dict[str, object] | None]:
    """Open an archive's cell index, healing it if replay fails.

    Returns ``(index, heal_report)`` where ``heal_report`` is None when
    the index loaded cleanly, else a record of what was quarantined and
    how many cells were re-derived.  The service uses this at startup so
    a corrupt index (crashed writer, bit rot, concurrent-writer damage)
    degrades to a rebuild instead of refusing to serve.
    """
    from .cellindex import CellIndex

    path = archive.root / "cell_index.jsonl"
    try:
        return CellIndex(path), None
    except ArchiveError as exc:
        reason = str(exc)
    target = _quarantine_target(archive.root, path.name)
    shutil.move(str(path), str(target))
    index = CellIndex(path)
    report: dict[str, object] = {"quarantined": str(target), "error": reason}
    try:
        report["reindexed_cells"] = index.rebuild_from_archive(archive)
    except OSError as exc:
        # The rebuild write itself failed (full disk, failing device).
        # The index is a cache: boot with whatever was re-derived so
        # far — unindexed cells degrade to misses, never to corruption.
        report["reindexed_cells"] = len(index)
        report["reindex_error"] = str(exc)
    return index, report
