"""The regression gate: turn a statistical diff into a pass/fail verdict.

A gate evaluation compares a candidate run against a baseline
(:func:`evaluate_gate`), producing a :class:`GateReport` that names every
regressed cell; ``repro gate --fail-on-regression`` exits non-zero on a
failed report, which is what makes "every PR makes a hot path measurably
faster" enforceable rather than aspirational.  The report serializes to
``BENCH_gate.json`` in the shared bench envelope so the repo's perf
trajectory is one more archive consumer.

Baseline promotion (:func:`promote_baseline`) atomically replaces a
committed baseline file with the candidate's payload — the operator's
explicit act of saying "this is the new normal".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.results import ResultSet
from .archive import bench_payload, write_json_atomic
from .environment import fingerprint_mismatches
from .stats import (
    DEFAULT_NOISE_THRESHOLD,
    CellDelta,
    classify_cells,
    summarize_deltas,
)

__all__ = ["GateReport", "evaluate_gate", "promote_baseline", "write_gate_report"]


@dataclass(frozen=True)
class GateReport:
    """Outcome of gating one candidate run against one baseline."""

    baseline_ref: str
    candidate_ref: str
    threshold: float
    deltas: list[CellDelta]
    environment_mismatches: list[str]

    @property
    def regressions(self) -> list[CellDelta]:
        """Every cell that should fail the gate (regressed or broke)."""
        return [delta for delta in self.deltas if delta.gates]

    @property
    def passed(self) -> bool:
        """True when no cell regressed or broke."""
        return not self.regressions

    def summary(self) -> dict[str, int]:
        """Cell count per classification."""
        return summarize_deltas(self.deltas)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (the ``data`` of ``BENCH_gate.json``)."""
        return {
            "baseline": self.baseline_ref,
            "candidate": self.candidate_ref,
            "threshold": self.threshold,
            "passed": self.passed,
            "summary": self.summary(),
            "environment_mismatches": self.environment_mismatches,
            "regressions": [delta.cell for delta in self.regressions],
            "cells": [delta.as_dict() for delta in self.deltas],
        }


def evaluate_gate(
    baseline: ResultSet,
    candidate: ResultSet,
    threshold: float = DEFAULT_NOISE_THRESHOLD,
    baseline_ref: str = "baseline",
    candidate_ref: str = "candidate",
    baseline_environment: dict[str, object] | None = None,
    candidate_environment: dict[str, object] | None = None,
    seed: int = 0,
) -> GateReport:
    """Classify every cell and assemble the gate verdict.

    The optional environment fingerprints (from run manifests) are only
    compared, never enforced: a mismatch is reported so the reader knows
    the ratio partly measures the hardware, not just the code.
    """
    deltas = classify_cells(baseline, candidate, threshold=threshold, seed=seed)
    return GateReport(
        baseline_ref=baseline_ref,
        candidate_ref=candidate_ref,
        threshold=threshold,
        deltas=deltas,
        environment_mismatches=fingerprint_mismatches(
            baseline_environment, candidate_environment
        ),
    )


def write_gate_report(report: GateReport, path: str | Path) -> None:
    """Persist a gate report as ``BENCH_gate.json`` (atomic write)."""
    write_json_atomic(path, bench_payload("gate", report.as_dict()))


def promote_baseline(candidate: ResultSet, path: str | Path) -> Path:
    """Atomically install the candidate's payload as the new baseline."""
    path = Path(path)
    candidate.save_json(path)
    return path
