"""Append-only, content-addressed archive of benchmark runs.

The GAP rules prescribe *durable* results — fixed trial counts,
per-kernel summary statistics, reproducible specs — yet a campaign that
only writes ``results.json`` in place throws its history away: the next
run overwrites it and no regression is ever detectable.  This archive
keeps every campaign:

* one directory per run under ``<root>/runs/<run_id>/`` holding the full
  results payload (**per-trial** times, never just aggregates), the spec
  that produced it, the telemetry spans (``spans.jsonl``), and a manifest
  with an :func:`~repro.store.environment.fingerprint` of the machine;
* ``run_id`` is content-addressed — a SHA-256 digest of the canonical
  (results, spec) JSON — so re-archiving the same run is idempotent and
  an archived run can never be silently edited without changing identity;
* a small ``index.json`` at the root lists runs for ``repro history`` and
  prefix lookup without touching every run directory.

Writes follow the temp-file + ``os.replace`` pattern (the same crash
discipline as :mod:`repro.graphs.cache`): a run directory is staged under
a temporary name and renamed into place, so a crashed archive operation
leaves either a complete run or no run — never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..core.results import ResultSet
from ..core.telemetry import Span
from ..errors import ArchiveError
from ..resilience.iofaults import shim_fsync, shim_replace, shim_write
from .environment import fingerprint, version_string

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "RunArchive",
    "RunRecord",
    "bench_payload",
    "canonical_json",
    "default_archive_dir",
    "write_json_atomic",
]

ARCHIVE_SCHEMA_VERSION = 1

#: Environment variable overriding the default archive location.
ARCHIVE_DIR_ENV = "REPRO_ARCHIVE_DIR"


def default_archive_dir() -> Path:
    """The archive root: ``$REPRO_ARCHIVE_DIR`` or ``results/archive``."""
    env = os.environ.get(ARCHIVE_DIR_ENV)
    if env:
        return Path(env)
    return Path("results") / "archive"


def canonical_json(payload: object) -> str:
    """Deterministic JSON text (sorted keys, no whitespace) for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json_atomic(path: str | Path, payload: object, indent: int = 2) -> None:
    """Write a JSON file via temp file + ``os.replace``; never torn.

    Every byte goes through the I/O-fault shim, keyed on the
    *destination* path (the temp name is an implementation detail), so a
    fault plan can fail any specific atomic write — and a failed write
    leaves the previous file intact, never a partial one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
    tmp = Path(tmp_name)
    try:
        data = (json.dumps(payload, indent=indent) + "\n").encode()
        with os.fdopen(fd, "wb") as stream:
            shim_write(stream, data, path)
            shim_fsync(stream, path)
        shim_replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def bench_payload(name: str, data: dict[str, object]) -> dict[str, object]:
    """Wrap one benchmark's summary in the shared archive schema.

    ``BENCH_*.json`` trajectory files and gate reports all share this
    envelope, so any consumer can read the environment and schema version
    the same way regardless of which bench produced the numbers.
    """
    return {
        "schema_version": ARCHIVE_SCHEMA_VERSION,
        "bench": name,
        "version": version_string(),
        "environment": fingerprint(),
        "data": data,
    }


def _utc_timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _stage_file(path: Path, data: bytes) -> None:
    """Write + fsync one staged run file through the I/O-fault shim."""
    with path.open("wb") as stream:
        shim_write(stream, data, path)
        shim_fsync(stream, path)


@dataclass(frozen=True)
class RunRecord:
    """Handle to one archived run."""

    run_id: str
    path: Path
    manifest: dict[str, object]

    @property
    def created_at(self) -> str:
        return str(self.manifest.get("created_at", ""))

    def load_results(self) -> ResultSet:
        """The run's full result set, per-trial times included."""
        return ResultSet.load_json(self.path / "results.json")

    def load_spans(self) -> list[dict[str, object]]:
        """The run's persisted telemetry records (empty if none traced)."""
        spans_path = self.path / "spans.jsonl"
        if not spans_path.exists():
            return []
        records = []
        with spans_path.open(encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


class RunArchive:
    """Content-addressed store of campaign runs with a listing index."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_archive_dir()

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    # -- store ----------------------------------------------------------

    def archive_run(
        self,
        results: ResultSet,
        spec: object = None,
        spans: Iterable[Span | dict[str, object]] | None = None,
        source: str | None = None,
    ) -> RunRecord:
        """Archive one campaign; returns the (possibly pre-existing) record.

        ``spec`` may be a :class:`~repro.core.spec.BenchmarkSpec`, a dict,
        or None; ``spans`` the run's telemetry spans (``Telemetry.spans``
        or their dict form); ``source`` a free-form provenance note (the
        CLI stores its argv).  Content addressing makes the call
        idempotent: archiving identical content returns the existing run.
        """
        spec_dict = spec.as_dict() if hasattr(spec, "as_dict") else spec
        payload = results.payload()
        run_id = hashlib.sha256(
            canonical_json({"results": payload, "spec": spec_dict}).encode()
        ).hexdigest()[:12]
        run_dir = self.runs_dir / run_id
        if (run_dir / "manifest.json").exists():
            return self._record(run_id)

        span_records = [
            span.as_dict() if isinstance(span, Span) else dict(span)
            for span in (spans or [])
        ]
        manifest: dict[str, object] = {
            "schema_version": ARCHIVE_SCHEMA_VERSION,
            "run_id": run_id,
            "created_at": _utc_timestamp(),
            "version": version_string(),
            "environment": fingerprint(),
            "spec": spec_dict,
            "source": source,
            "cells": len(results),
            "failures": len(results.failures()),
            "span_count": len(span_records),
        }
        # Resilience lineage: whether this campaign was resumed from a
        # checkpoint journal, retried cells, or skipped combos via the
        # circuit breaker — consumers comparing runs need to know that a
        # resumed campaign's cells span several process lifetimes.
        resilience = results.meta.get("resilience")
        if isinstance(resilience, dict):
            manifest["resilience"] = dict(resilience)
        # Dataset provenance: for file-backed graphs the manifest records
        # ref -> {path, digest, format, bytes}, so cell-index rebuilds and
        # the regression gate can identify cells by content digest long
        # after the original file moved or disappeared.
        datasets = results.meta.get("datasets")
        if isinstance(datasets, dict) and datasets:
            manifest["datasets"] = {
                ref: dict(entry) if isinstance(entry, dict) else entry
                for ref, entry in datasets.items()
            }

        # Stage the whole run directory, then rename into place: a crash
        # mid-archive leaves only a .tmp directory, never a partial run.
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(dir=self.runs_dir, prefix=f".{run_id}.tmp-")
        )
        try:
            results_bytes = (json.dumps(payload, indent=2) + "\n").encode()
            spans_bytes = b"".join(
                json.dumps(record, default=str).encode() + b"\n"
                for record in span_records
            )
            # Whole-run digests are computed from the *intended* bytes,
            # before any file I/O: a payload corrupted on the way to disk
            # (bit flip, partial page) shows up at scrub time as a
            # manifest/file mismatch rather than silently becoming truth.
            integrity = {"results.json": hashlib.sha256(results_bytes).hexdigest()}
            if span_records:
                integrity["spans.jsonl"] = hashlib.sha256(spans_bytes).hexdigest()
            manifest["integrity"] = integrity
            _stage_file(staging / "results.json", results_bytes)
            if span_records:
                _stage_file(staging / "spans.jsonl", spans_bytes)
            _stage_file(
                staging / "manifest.json",
                (json.dumps(manifest, indent=2) + "\n").encode(),
            )
            try:
                shim_replace(staging, run_dir)
            except OSError:
                if (run_dir / "manifest.json").exists():
                    # Concurrent archiver won the rename; same content.
                    return self._record(run_id)
                raise
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)

        self._index_add(
            {
                "run_id": run_id,
                "created_at": manifest["created_at"],
                "cells": manifest["cells"],
                "failures": manifest["failures"],
                "source": source,
            }
        )
        return RunRecord(run_id=run_id, path=run_dir, manifest=manifest)

    # -- index ----------------------------------------------------------

    def _read_index(self) -> list[dict[str, object]]:
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return self._rebuild_index()
        runs = raw.get("runs", []) if isinstance(raw, dict) else []
        return [entry for entry in runs if isinstance(entry, dict)]

    def _rebuild_index(self) -> list[dict[str, object]]:
        """Recover the index from run manifests (a lost index is not a
        lost archive — the run directories are the source of truth)."""
        entries = []
        if not self.runs_dir.is_dir():
            return []
        for run_dir in sorted(self.runs_dir.iterdir()):
            manifest_path = run_dir / "manifest.json"
            if run_dir.name.startswith(".") or not manifest_path.exists():
                continue
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            entries.append(
                {
                    "run_id": manifest.get("run_id", run_dir.name),
                    "created_at": manifest.get("created_at", ""),
                    "cells": manifest.get("cells", 0),
                    "failures": manifest.get("failures", 0),
                    "source": manifest.get("source"),
                }
            )
        entries.sort(key=lambda entry: str(entry.get("created_at", "")))
        if entries:
            self._write_index(entries)
        return entries

    def _write_index(self, entries: list[dict[str, object]]) -> None:
        write_json_atomic(
            self.index_path,
            {"schema_version": ARCHIVE_SCHEMA_VERSION, "runs": entries},
        )

    def _index_add(self, entry: dict[str, object]) -> None:
        entries = self._read_index()
        if not any(e.get("run_id") == entry["run_id"] for e in entries):
            entries.append(entry)
            self._write_index(entries)

    # -- lookup ---------------------------------------------------------

    def list_runs(self) -> list[dict[str, object]]:
        """Index entries, newest first (``repro history`` order)."""
        entries = self._read_index()
        return list(reversed(entries))

    def _record(self, run_id: str) -> RunRecord:
        run_dir = self.runs_dir / run_id
        try:
            manifest = json.loads(
                (run_dir / "manifest.json").read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise ArchiveError(f"run {run_id} has no readable manifest") from exc
        return RunRecord(run_id=run_id, path=run_dir, manifest=manifest)

    def resolve(self, ref: str) -> str:
        """Resolve ``latest`` or a run-id prefix to a unique run id.

        Resolution is deterministic and index-staleness-proof: an exact
        on-disk run id wins outright (even if the index lost it), then a
        unique prefix over the union of indexed and on-disk runs (the
        index can lag a concurrent archiver, so duplicates are collapsed
        and the run directories are consulted as the source of truth).
        An ambiguous prefix always fails the same way: every matching
        run id listed in sorted order, so the caller can add digits.
        """
        entries = self.list_runs()
        if ref == "latest":
            if not entries:
                raise ArchiveError(f"archive at {self.root} has no runs")
            return str(entries[0]["run_id"])
        if (self.runs_dir / ref / "manifest.json").exists():
            return ref
        matches = {
            str(entry["run_id"])
            for entry in entries
            if str(entry["run_id"]).startswith(ref)
        }
        if self.runs_dir.is_dir():
            matches.update(
                run_dir.name
                for run_dir in self.runs_dir.iterdir()
                if not run_dir.name.startswith(".")
                and run_dir.name.startswith(ref)
                and (run_dir / "manifest.json").exists()
            )
        if not matches:
            if not entries:
                raise ArchiveError(f"archive at {self.root} has no runs")
            raise ArchiveError(f"no archived run matches {ref!r}")
        if len(matches) > 1:
            listing = ", ".join(sorted(matches))
            raise ArchiveError(
                f"ambiguous run ref {ref!r}: matches {len(matches)} runs "
                f"[{listing}]; add more digits to disambiguate"
            )
        return next(iter(matches))

    def lookup(self, ref: str) -> RunRecord:
        """Resolve ``latest`` or a unique run-id prefix to a record."""
        return self._record(self.resolve(ref))

    def load_results(self, ref: str) -> ResultSet:
        """The archived :class:`ResultSet` for a run ref."""
        return self.lookup(ref).load_results()
