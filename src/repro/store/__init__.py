"""Results archive and statistical regression gate (``repro.store``).

The durable-data layer under the benchmark harness:

* :mod:`~repro.store.environment` — machine/toolchain fingerprints that
  make archived numbers interpretable later;
* :mod:`~repro.store.archive` — append-only, content-addressed storage of
  complete runs (per-trial results, spec, telemetry spans, manifest);
* :mod:`~repro.store.stats` — best-of-k + bootstrap-CI comparison of two
  runs with improved/regressed/unchanged classification per cell;
* :mod:`~repro.store.gate` — the pass/fail regression verdict, gate
  report serialization, and baseline promotion.

CLI: ``repro archive`` / ``repro history`` / ``repro diff`` /
``repro gate`` (see ``python -m repro --help``).
"""

from .archive import (
    ARCHIVE_SCHEMA_VERSION,
    RunArchive,
    RunRecord,
    bench_payload,
    default_archive_dir,
    write_json_atomic,
)
from .cellindex import (
    CELL_INDEX_VERSION,
    CellIndex,
    cell_digest,
    derive_index_entries,
    identity_hasher,
    spec_identity,
)
from .environment import fingerprint, git_sha, version_string
from .integrity import (
    ScrubReport,
    last_scrub_report,
    open_self_healing_index,
    quarantine_count,
    scrub,
    seal_line,
    verify_line,
    verify_run,
)
from .gate import GateReport, evaluate_gate, promote_baseline, write_gate_report
from .stats import (
    DEFAULT_NOISE_THRESHOLD,
    CellDelta,
    bootstrap_ratio_ci,
    classify_cells,
    summarize_deltas,
)

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "CELL_INDEX_VERSION",
    "DEFAULT_NOISE_THRESHOLD",
    "CellDelta",
    "CellIndex",
    "GateReport",
    "RunArchive",
    "RunRecord",
    "ScrubReport",
    "bench_payload",
    "bootstrap_ratio_ci",
    "cell_digest",
    "classify_cells",
    "default_archive_dir",
    "derive_index_entries",
    "evaluate_gate",
    "fingerprint",
    "git_sha",
    "identity_hasher",
    "last_scrub_report",
    "open_self_healing_index",
    "promote_baseline",
    "quarantine_count",
    "scrub",
    "seal_line",
    "spec_identity",
    "summarize_deltas",
    "verify_line",
    "verify_run",
    "version_string",
    "write_gate_report",
    "write_json_atomic",
]
