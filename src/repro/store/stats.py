"""Statistical comparison of two benchmark runs, cell by cell.

Comparing two campaigns by eyeballing averaged tables is how phantom
regressions (and phantom wins) get shipped.  This engine operates on the
**per-trial** times the archive preserves:

* the point statistic is GAP-style best-of-k — ``min`` over a cell's
  trials, the suite's standard defense against warm-up and interference
  outliers;
* uncertainty comes from a bootstrap confidence interval on the
  candidate/baseline ratio of that statistic (percentile method, fixed
  RNG seed, so a comparison is reproducible);
* a cell is only classified ``regressed`` (or ``improved``) when *both*
  the point ratio and the whole confidence interval clear a configurable
  noise threshold — overlapping trial distributions stay ``unchanged``.

Cells that failed in exactly one run are classified ``broke`` / ``fixed``
(a kernel that stopped finishing is the worst regression of all); cells
present in only one run are ``added`` / ``removed`` and never gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import ResultSet, RunResult

__all__ = [
    "DEFAULT_NOISE_THRESHOLD",
    "CellDelta",
    "bootstrap_ratio_ci",
    "classify_cells",
    "summarize_deltas",
]

#: Relative noise band: a ratio within ``1 +/- threshold`` never gates.
#: 0.25 tolerates the run-to-run jitter of small pure-Python kernels while
#: still catching anything approaching a 2x slowdown decisively.
DEFAULT_NOISE_THRESHOLD = 0.25

_BOOTSTRAP_RESAMPLES = 2000
_CONFIDENCE = 0.95

#: Classifications that should fail a regression gate.
GATING_CLASSIFICATIONS = ("regressed", "broke")


@dataclass(frozen=True)
class CellDelta:
    """One (framework, kernel, graph, mode) cell, baseline vs candidate."""

    framework: str
    kernel: str
    graph: str
    mode: str
    classification: str
    baseline_best: float | None = None
    candidate_best: float | None = None
    ratio: float | None = None
    ci_low: float | None = None
    ci_high: float | None = None
    baseline_trials: int = 0
    candidate_trials: int = 0
    detail: str = ""

    @property
    def cell(self) -> str:
        """Human-readable cell name used in gate output and reports."""
        return f"{self.framework}/{self.kernel}/{self.graph}/{self.mode}"

    @property
    def gates(self) -> bool:
        """True when this delta should fail a regression gate."""
        return self.classification in GATING_CLASSIFICATIONS

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (one row of a gate report)."""
        return {
            "framework": self.framework,
            "kernel": self.kernel,
            "graph": self.graph,
            "mode": self.mode,
            "classification": self.classification,
            "baseline_best": self.baseline_best,
            "candidate_best": self.candidate_best,
            "ratio": self.ratio,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "baseline_trials": self.baseline_trials,
            "candidate_trials": self.candidate_trials,
            "detail": self.detail,
        }


def bootstrap_ratio_ci(
    baseline_trials: list[float],
    candidate_trials: list[float],
    resamples: int = _BOOTSTRAP_RESAMPLES,
    confidence: float = _CONFIDENCE,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI on ``min(candidate) / min(baseline)``.

    Resamples each side's trials with replacement; deterministic for a
    given seed.  Degenerates gracefully: with one trial per side the
    interval collapses to the point ratio.
    """
    base = np.asarray(baseline_trials, dtype=float)
    cand = np.asarray(candidate_trials, dtype=float)
    if base.size == 0 or cand.size == 0:
        return (float("nan"), float("nan"))
    rng = np.random.default_rng(np.random.SeedSequence([0x57A7, seed]))
    base_mins = np.min(
        rng.choice(base, size=(resamples, base.size), replace=True), axis=1
    )
    cand_mins = np.min(
        rng.choice(cand, size=(resamples, cand.size), replace=True), axis=1
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = cand_mins / base_mins
    ratios = ratios[np.isfinite(ratios)]
    if ratios.size == 0:
        return (float("nan"), float("nan"))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(ratios, alpha)),
        float(np.quantile(ratios, 1.0 - alpha)),
    )


def _classify_pair(
    base: RunResult,
    cand: RunResult,
    threshold: float,
    seed: int,
) -> CellDelta:
    identity = {
        "framework": base.framework,
        "kernel": base.kernel,
        "graph": base.graph,
        "mode": base.mode.value,
    }
    if base.ok and not cand.ok:
        return CellDelta(
            classification="broke",
            baseline_best=base.best_seconds,
            baseline_trials=len(base.trial_seconds),
            candidate_trials=len(cand.trial_seconds),
            detail=f"candidate status {cand.status}: {cand.error}",
            **identity,
        )
    if not base.ok and cand.ok:
        return CellDelta(
            classification="fixed",
            candidate_best=cand.best_seconds,
            baseline_trials=len(base.trial_seconds),
            candidate_trials=len(cand.trial_seconds),
            detail=f"baseline status {base.status}",
            **identity,
        )
    if not base.ok and not cand.ok:
        return CellDelta(
            classification="unchanged",
            detail=f"failing in both runs ({base.status}/{cand.status})",
            **identity,
        )

    baseline_best = base.best_seconds
    candidate_best = cand.best_seconds
    ratio = (
        candidate_best / baseline_best if baseline_best > 0 else float("nan")
    )
    ci_low, ci_high = bootstrap_ratio_ci(
        base.trial_seconds, cand.trial_seconds, seed=seed
    )
    # Both the point ratio and the full interval must clear the band:
    # a wide CI (noisy trials) keeps the cell unchanged by construction.
    if np.isfinite(ratio) and ratio > 1.0 + threshold and ci_low > 1.0 + threshold:
        classification = "regressed"
    elif (
        np.isfinite(ratio) and ratio < 1.0 - threshold and ci_high < 1.0 - threshold
    ):
        classification = "improved"
    else:
        classification = "unchanged"
    return CellDelta(
        classification=classification,
        baseline_best=baseline_best,
        candidate_best=candidate_best,
        ratio=ratio if np.isfinite(ratio) else None,
        ci_low=ci_low if np.isfinite(ci_low) else None,
        ci_high=ci_high if np.isfinite(ci_high) else None,
        baseline_trials=len(base.trial_seconds),
        candidate_trials=len(cand.trial_seconds),
        **identity,
    )


def classify_cells(
    baseline: ResultSet,
    candidate: ResultSet,
    threshold: float = DEFAULT_NOISE_THRESHOLD,
    seed: int = 0,
) -> list[CellDelta]:
    """Classify every cell across two runs, in the candidate's cell order.

    Cells only in the candidate come back ``added``; cells only in the
    baseline come last as ``removed``.
    """
    if threshold < 0:
        raise ValueError("noise threshold must be non-negative")
    base_by_key = {result.cell_key: result for result in baseline}
    deltas: list[CellDelta] = []
    seen: set[tuple[str, str, str, str]] = set()
    for cand in candidate:
        seen.add(cand.cell_key)
        base = base_by_key.get(cand.cell_key)
        if base is None:
            deltas.append(
                CellDelta(
                    framework=cand.framework,
                    kernel=cand.kernel,
                    graph=cand.graph,
                    mode=cand.mode.value,
                    classification="added",
                    candidate_best=cand.best_seconds if cand.ok else None,
                    candidate_trials=len(cand.trial_seconds),
                )
            )
            continue
        deltas.append(_classify_pair(base, cand, threshold, seed))
    for base in baseline:
        if base.cell_key not in seen:
            deltas.append(
                CellDelta(
                    framework=base.framework,
                    kernel=base.kernel,
                    graph=base.graph,
                    mode=base.mode.value,
                    classification="removed",
                    baseline_best=base.best_seconds if base.ok else None,
                    baseline_trials=len(base.trial_seconds),
                )
            )
    return deltas


def summarize_deltas(deltas: list[CellDelta]) -> dict[str, int]:
    """Count of cells per classification (zero-filled for the core four)."""
    summary = {"improved": 0, "regressed": 0, "unchanged": 0, "broke": 0}
    for delta in deltas:
        summary[delta.classification] = summary.get(delta.classification, 0) + 1
    return summary
