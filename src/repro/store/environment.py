"""Environment fingerprinting for archived benchmark runs.

Pollard & Norris's comparison methodology ("A Comparison of Parallel
Graph Processing Implementations") makes the case directly: performance
numbers are only comparable when the environment that produced them is
captured alongside them.  Two archived runs whose fingerprints differ in
CPU, Python, or NumPy version are *not* directly comparable, and the
regression gate reports the mismatch instead of silently trusting the
ratio.

The fingerprint is cheap to compute (one ``git rev-parse`` subprocess at
most) and JSON-serializable; it goes into every run manifest
(:mod:`repro.store.archive`), every ``BENCH_*.json`` payload, and the
CLI's ``--version`` string.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = ["fingerprint", "fingerprint_mismatches", "git_sha", "version_string"]

#: Fingerprint keys whose disagreement makes two runs non-comparable.
COMPARABILITY_KEYS = ("python", "implementation", "machine", "numpy", "cpu_count")


def git_sha(short: bool = True) -> str | None:
    """The current git commit SHA, or None outside a work tree.

    ``REPRO_GIT_SHA`` overrides the lookup (for CI environments that
    export the SHA but run from an exported tree without ``.git``).
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override[:12] if short else override
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=5.0, check=False
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def version_string() -> str:
    """``<package version>+g<sha>`` (or just the version without git)."""
    from .. import __version__

    sha = git_sha()
    return f"{__version__}+g{sha}" if sha else __version__


def fingerprint() -> dict[str, object]:
    """One JSON-safe snapshot of everything that shapes a timing."""
    import numpy

    try:
        import scipy

        scipy_version: str | None = scipy.__version__
    except ImportError:  # scipy is a hard dep today, but stay graceful
        scipy_version = None
    from .. import __version__

    return {
        "repro_version": __version__,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "executable": sys.executable,
    }


def fingerprint_mismatches(
    baseline: dict[str, object] | None, candidate: dict[str, object] | None
) -> list[str]:
    """Comparability-relevant keys on which two fingerprints disagree.

    A non-empty list means ratios between the two runs reflect the
    environment as much as the code; the gate surfaces it as a warning
    (the CI gate compensates with a loose threshold, since the committed
    baseline rarely comes from the exact runner hardware).
    """
    if not baseline or not candidate:
        return []
    return [
        key
        for key in COMPARABILITY_KEYS
        if baseline.get(key) is not None
        and candidate.get(key) is not None
        and baseline.get(key) != candidate.get(key)
    ]
