"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run [--scale N] [--graphs a,b] [--kernels x,y]
                        [--frameworks f,g] [--modes baseline,optimized]
                        [--out results.json] [--strict] [--timeout S]
                        [--trace trace.jsonl] [--track-memory]
                        [--jobs N] [--cache-dir DIR] [--no-cache]
    python -m repro tables --results results.json
    python -m repro graphs [--scale N]          # Table I
    python -m repro compare --results results.json
    python -m repro generate road --scale N --out road.el [--weighted]
    python -m repro report --results results.json --out report.md

``run`` executes the benchmark campaign with verification and prints
Tables IV/V; ``compare`` scores the results against the paper's published
Table V (direction agreement / rank correlation); ``generate`` writes a
corpus graph to a GAP-style edge-list file; ``report`` renders a saved
campaign as markdown.
"""

from __future__ import annotations

import argparse
import sys

from .core import BenchmarkSpec, ResultSet, Telemetry, run_suite
from .errors import BenchmarkConfigError
from .core.comparison import agreement_summary, compare_table5, framework_rank_correlation
from .core.report import write_markdown_report
from .core.tables import failure_rows, render, table1_rows, table4_rows, table5_rows
from .frameworks import EXTENDED_FRAMEWORK_NAMES, KERNELS, Mode, get
from .generators import DEFAULT_SCALE, GRAPH_NAMES, build_corpus, build_graph, weighted_version
from .graphs import GraphCache, write_edge_list


def _split(value: str, allowed: tuple[str, ...], label: str) -> list[str]:
    names = [item.strip() for item in value.split(",") if item.strip()]
    unknown = [name for name in names if name not in allowed]
    if unknown:
        raise SystemExit(f"unknown {label}: {unknown} (allowed: {list(allowed)})")
    return names


def _cmd_run(args: argparse.Namespace) -> int:
    frameworks = [
        get(name)
        for name in _split(args.frameworks, EXTENDED_FRAMEWORK_NAMES, "framework")
    ]
    graphs = _split(args.graphs, GRAPH_NAMES, "graph")
    kernels = _split(args.kernels, KERNELS, "kernel")
    modes = [Mode(mode) for mode in args.modes.split(",")]
    try:
        spec = BenchmarkSpec(
            scale=args.scale, trial_timeout=args.timeout, jobs=args.jobs
        )
    except BenchmarkConfigError as exc:
        raise SystemExit(f"invalid run configuration: {exc}")
    if args.no_cache:
        cache = None
    else:
        cache = GraphCache(args.cache_dir)
        try:
            cache.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"cannot use cache directory {cache.root}: {exc}")
    try:
        telemetry = Telemetry(
            sink=args.trace if args.trace else None,
            track_memory=args.track_memory,
        )
    except OSError as exc:
        raise SystemExit(f"cannot open trace file {args.trace}: {exc}")
    try:
        results = run_suite(
            frameworks,
            graphs,
            kernels=kernels,
            modes=modes,
            spec=spec,
            progress=lambda label: print(f"\r  {label:<50}", end="", flush=True),
            telemetry=telemetry,
            strict=args.strict,
            cache=cache,
        )
    except Exception as exc:
        # --strict fail-fast aborts on the first broken cell; without it
        # only infrastructure failures (not cell failures) land here.
        reason = " (--strict)" if args.strict else ""
        print(f"\nsuite aborted{reason}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        telemetry.close()
    failures = results.failures()
    verified_note = "outputs verified" if not failures else "ok cells verified"
    print(
        f"\r{len(results)} cells measured, {len(failures)} failed "
        f"({verified_note})." + " " * 30
    )
    if args.trace:
        print(f"telemetry trace written to {args.trace}")
    if args.out:
        results.save_json(args.out)
        print(f"saved to {args.out}")
    print(render(table4_rows(results, graphs), "Table IV"))
    print(render(table5_rows(results, graphs), "Table V"))
    if failures:
        print(render(failure_rows(results), "Failures"))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    graphs = [g for g in GRAPH_NAMES if results.lookup(graph=g)]
    print(render(table4_rows(results, graphs), "Table IV"))
    print(render(table5_rows(results, graphs), "Table V"))
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    print(render(table1_rows(build_corpus(scale=args.scale)), "Table I"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    comparisons = compare_table5(results)
    summary = agreement_summary(comparisons)
    print(f"cells: {summary['cells']}")
    print(f"direction agreement: {summary['direction_agreement']:.1%}")
    print("per kernel:", {k: round(v, 2) for k, v in summary["per_kernel"].items()})
    print("per framework:", {k: round(v, 2) for k, v in summary["per_framework"].items()})
    print("rank correlation:", {k: round(v, 2) for k, v in framework_rank_correlation(comparisons).items()})
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.graph not in GRAPH_NAMES:
        raise SystemExit(f"unknown graph {args.graph!r} (allowed: {list(GRAPH_NAMES)})")
    graph = build_graph(args.graph, scale=args.scale, seed=args.seed)
    if args.weighted:
        graph = weighted_version(graph, seed=args.seed)
    write_edge_list(graph, args.out)
    kind = "weighted " if args.weighted else ""
    print(
        f"wrote {kind}{args.graph} (n={graph.num_vertices}, m={graph.num_edges}) "
        f"to {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    graphs = [g for g in GRAPH_NAMES if results.lookup(graph=g)]
    write_markdown_report(results, graphs, args.out)
    print(f"markdown report written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the benchmark campaign")
    run_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    run_parser.add_argument("--graphs", default=",".join(GRAPH_NAMES))
    run_parser.add_argument("--kernels", default=",".join(KERNELS))
    run_parser.add_argument("--frameworks", default=",".join(EXTENDED_FRAMEWORK_NAMES[:6]))
    run_parser.add_argument("--modes", default="baseline,optimized")
    run_parser.add_argument("--out", default=None)
    run_parser.add_argument(
        "--strict",
        action="store_true",
        help="abort the campaign on the first failing cell (default: record "
        "the failure and keep going)",
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock deadline; an over-budget trial becomes a "
        "recorded timeout",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream per-cell telemetry spans to this JSONL file",
    )
    run_parser.add_argument(
        "--track-memory",
        action="store_true",
        help="record peak heap allocation of each cell's first trial "
        "(tracemalloc; distorts that trial's timing)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the campaign (default 1 = serial); with "
        "N>1 cells run in a process pool over a shared-memory corpus and "
        "--timeout becomes a hard per-cell kill",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent graph-cache directory (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro/graphs); cached graphs skip generation",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always regenerate graphs; neither read nor write the cache",
    )
    run_parser.set_defaults(fn=_cmd_run)

    tables_parser = sub.add_parser("tables", help="render tables from saved results")
    tables_parser.add_argument("--results", required=True)
    tables_parser.set_defaults(fn=_cmd_tables)

    graphs_parser = sub.add_parser("graphs", help="print Table I for the corpus")
    graphs_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    graphs_parser.set_defaults(fn=_cmd_graphs)

    compare_parser = sub.add_parser("compare", help="score results against the paper")
    compare_parser.add_argument("--results", required=True)
    compare_parser.set_defaults(fn=_cmd_compare)

    generate_parser = sub.add_parser("generate", help="write a corpus graph to disk")
    generate_parser.add_argument("graph")
    generate_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--weighted", action="store_true")
    generate_parser.add_argument("--out", required=True)
    generate_parser.set_defaults(fn=_cmd_generate)

    report_parser = sub.add_parser("report", help="render saved results as markdown")
    report_parser.add_argument("--results", required=True)
    report_parser.add_argument("--out", required=True)
    report_parser.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
