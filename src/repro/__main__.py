"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run [--scale N] [--graphs a,b] [--kernels x,y]
                        [--frameworks f,g] [--modes baseline,optimized]
                        [--out results.json] [--strict] [--timeout S]
                        [--trace trace.jsonl] [--track-memory]
                        [--jobs N] [--pool process|threads] [--batch-size N]
                        [--cache-dir DIR] [--no-cache]
                        [--journal PATH] [--resume] [--retries N]
                        [--breaker-threshold K]
    python -m repro tables --results results.json
    python -m repro graphs [--scale N]          # Table I
    python -m repro datasets [REF ...] [--dataset-dir DIR] [--stats]
    python -m repro compare --results results.json
    python -m repro generate road --scale N --out road.el [--weighted]
    python -m repro report --results results.json --out report.md
    python -m repro archive --results results.json [--trace trace.jsonl]
    python -m repro history [--limit N]
    python -m repro diff --baseline REF [--candidate REF]
    python -m repro gate --baseline REF --results results.json
                         [--fail-on-regression] [--promote] [--out PATH]
    python -m repro serve [--host H] [--port P] [--jobs N] [--resume]
                          [--archive-dir DIR] [--cache-dir DIR]
                          [--journal-dir DIR] [--max-queue N]
    python -m repro submit --graphs a,b --kernels x,y --frameworks f,g
                           [--modes m] [--scale N] [--seed N]
                           [--server HOST:PORT] [--out results.json]
    python -m repro status [--server HOST:PORT]

``run`` executes the benchmark campaign with verification and prints
Tables IV/V; ``compare`` scores the results against the paper's published
Table V (direction agreement / rank correlation); ``generate`` writes a
corpus graph to a GAP-style edge-list file; ``report`` renders a saved
campaign as markdown.  The graphs axis of ``run`` and ``submit`` accepts
generator names *and* dataset references (``file:/path/to/graph.mtx``,
``dataset:NAME`` — see docs/DATASETS.md); ``datasets`` lists the
registered dataset directory (or describes explicit references) with
content digests.  The ``archive`` / ``history`` / ``diff`` / ``gate``
family stores every campaign in an append-only archive and statistically
compares runs — ``gate --fail-on-regression`` exits non-zero when a cell
regresses beyond the noise threshold (see ``repro.store``).

``serve`` starts the memoizing benchmark server: ``submit`` sends it a
campaign and streams per-cell results back, re-using every cell the
archive has already measured (see ``repro.service`` / docs/SERVICE.md).

A REF is a run-id prefix from ``repro history``, the word ``latest``, or
a path to a results JSON file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import BenchmarkSpec, ResultSet, Telemetry, run_suite
from .core.telemetry import read_trace
from .errors import ArchiveError, BenchmarkConfigError, CampaignAborted, JournalError
from .store import (
    DEFAULT_NOISE_THRESHOLD,
    RunArchive,
    evaluate_gate,
    promote_baseline,
    version_string,
    write_gate_report,
)
from .core.comparison import agreement_summary, compare_table5, framework_rank_correlation
from .core.report import write_markdown_report
from .core.tables import failure_rows, render, table1_rows, table4_rows, table5_rows
from .frameworks import EXTENDED_FRAMEWORK_NAMES, KERNELS, Mode, get
from .generators import DEFAULT_SCALE, GRAPH_NAMES, build_corpus, build_graph, weighted_version
from .graphs import GraphCache, write_edge_list


def _positive_int(text: str) -> int:
    """Argparse type: an integer >= 1, with a readable error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type: an integer >= 0, with a readable error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a finite number > 0, with a readable error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0 and finite, got {text}")
    return value


def _split(value: str, allowed: tuple[str, ...], label: str) -> list[str]:
    names = [item.strip() for item in value.split(",") if item.strip()]
    unknown = [name for name in names if name not in allowed]
    if unknown:
        raise SystemExit(f"unknown {label}: {unknown} (allowed: {list(allowed)})")
    return names


def _split_graphs(value: str) -> list[str]:
    """Graphs axis: generator names plus ``file:``/``dataset:`` references.

    References are resolved immediately so a typo'd path dies with a
    one-line error before any generation or measurement starts.
    """
    from .errors import ReproError
    from .graphs.datasets import is_dataset_ref, resolve

    names = [item.strip() for item in value.split(",") if item.strip()]
    unknown = [
        name
        for name in names
        if name not in GRAPH_NAMES and not is_dataset_ref(name)
    ]
    if unknown:
        raise SystemExit(
            f"unknown graph: {unknown} (allowed: {list(GRAPH_NAMES)} "
            "or file:/dataset: references)"
        )
    for name in names:
        if is_dataset_ref(name):
            try:
                resolve(name)
            except ReproError as exc:
                raise SystemExit(f"cannot resolve {name!r}: {exc}")
    return names


def _result_graphs(results: ResultSet) -> list[str]:
    """Graph axis of a saved ResultSet, in canonical order.

    Generator graphs keep Table I order; file-backed graphs (dataset
    references recorded in the cells) follow in order of appearance, so
    tables over ``run --graphs file:...`` output are not silently empty.
    """
    present = {result.graph for result in results}
    graphs = [g for g in GRAPH_NAMES if g in present]
    seen = set(graphs)
    for result in results:
        if result.graph not in seen:
            seen.add(result.graph)
            graphs.append(result.graph)
    return graphs


def _resolve_results(
    ref: str, archive_dir: str | None
) -> tuple[str, ResultSet, dict[str, object] | None]:
    """Resolve a REF (file path, run-id prefix, or ``latest``).

    Returns ``(display ref, results, environment fingerprint or None)``.
    A file path wins over an archive lookup; files produced by
    ``repro run`` carry their environment in the results meta.
    """
    path = Path(ref)
    if path.is_file():
        results = ResultSet.load_json(path)
        env = results.meta.get("environment")
        return str(path), results, env if isinstance(env, dict) else None
    store = RunArchive(archive_dir)
    try:
        record = store.lookup(ref)
    except ArchiveError as exc:
        raise SystemExit(f"cannot resolve {ref!r}: {exc}")
    env = record.manifest.get("environment")
    return record.run_id, record.load_results(), env if isinstance(env, dict) else None


def _abort_note(verb: str, journal: str | None) -> str:
    """Message for an interrupted campaign, pointing at the resume path."""
    note = f"\ncampaign {verb}."
    if journal:
        note += (
            f" completed cells are checkpointed in {journal}; "
            "re-run with --resume to continue"
        )
    return note


def _cmd_run(args: argparse.Namespace) -> int:
    print(f"repro {version_string()}")
    frameworks = [
        get(name)
        for name in _split(args.frameworks, EXTENDED_FRAMEWORK_NAMES, "framework")
    ]
    graphs = _split_graphs(args.graphs)
    kernels = _split(args.kernels, KERNELS, "kernel")
    modes = [Mode(mode) for mode in args.modes.split(",")]
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH (nothing to resume from)")
    try:
        spec = BenchmarkSpec(
            scale=args.scale,
            trial_timeout=args.timeout,
            jobs=args.jobs,
            pool=args.pool,
            batch_size=args.batch_size,
            retries=args.retries,
            breaker_threshold=args.breaker_threshold,
        )
    except BenchmarkConfigError as exc:
        raise SystemExit(f"invalid run configuration: {exc}")
    if args.no_cache:
        cache = None
    else:
        cache = GraphCache(args.cache_dir)
        try:
            cache.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"cannot use cache directory {cache.root}: {exc}")
    try:
        telemetry = Telemetry(
            sink=args.trace if args.trace else None,
            track_memory=args.track_memory,
        )
    except OSError as exc:
        raise SystemExit(f"cannot open trace file {args.trace}: {exc}")
    try:
        results = run_suite(
            frameworks,
            graphs,
            kernels=kernels,
            modes=modes,
            spec=spec,
            progress=lambda label: print(f"\r  {label:<50}", end="", flush=True),
            telemetry=telemetry,
            strict=args.strict,
            cache=cache,
            journal=args.journal,
            resume=args.resume,
        )
    except JournalError as exc:
        print(f"\ncannot resume campaign: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(_abort_note("interrupted", args.journal), file=sys.stderr)
        return 130
    except CampaignAborted:
        print(_abort_note("terminated", args.journal), file=sys.stderr)
        return 143
    except Exception as exc:
        # --strict fail-fast aborts on the first broken cell; without it
        # only infrastructure failures (not cell failures) land here.
        reason = " (--strict)" if args.strict else ""
        print(f"\nsuite aborted{reason}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        telemetry.close()
    failures = results.failures()
    verified_note = "outputs verified" if not failures else "ok cells verified"
    print(
        f"\r{len(results)} cells measured, {len(failures)} failed "
        f"({verified_note})." + " " * 30
    )
    if args.trace:
        print(f"telemetry trace written to {args.trace}")
    if args.out:
        results.save_json(args.out)
        print(f"saved to {args.out}")
    if args.archive:
        store = RunArchive(args.archive_dir)
        record = store.archive_run(
            results,
            spec=spec,
            spans=telemetry.spans,
            source=f"repro run scale={args.scale} graphs={args.graphs} "
            f"kernels={args.kernels} frameworks={args.frameworks}",
        )
        print(f"archived as {record.run_id} under {store.root}")
    print(render(table4_rows(results, graphs), "Table IV"))
    print(render(table5_rows(results, graphs), "Table V"))
    if failures:
        print(render(failure_rows(results), "Failures"))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    graphs = _result_graphs(results)
    print(render(table4_rows(results, graphs), "Table IV"))
    print(render(table5_rows(results, graphs), "Table V"))
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    print(render(table1_rows(build_corpus(scale=args.scale)), "Table I"))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .graphs.datasets import list_datasets, resolve

    if args.refs:
        try:
            infos = [resolve(ref, dataset_dir=args.dataset_dir) for ref in args.refs]
        except ReproError as exc:
            raise SystemExit(str(exc))
    else:
        infos = list_datasets(dataset_dir=args.dataset_dir)
        if not infos:
            print(
                "no registered datasets "
                "(set $REPRO_DATASET_DIR or create ./datasets; "
                "file:/path references work without registration)"
            )
            return 0
    print(f"{'name':<20} {'format':<6} {'bytes':>10}  digest (sha256)")
    for info in infos:
        print(
            f"{info.name:<20} {info.format:<6} {info.size_bytes:>10}  "
            f"{info.digest[:16]}  {info.path}"
        )
    if args.stats:
        from .graphs.statistics import summarize

        for info in infos:
            graph = info.load()
            summary = summarize(graph, name=info.name)
            p50, p90, p99 = summary.degree_percentiles
            print(
                f"\n{info.name}: n={graph.num_vertices} m={graph.num_edges} "
                f"directed={graph.directed}"
            )
            print(
                f"  degree p50/p90/p99: {p50:.0f}/{p90:.0f}/{p99:.0f} "
                f"(max out-degree {summary.max_out_degree})"
            )
            print(
                f"  assortativity={summary.assortativity:.3f} "
                f"reciprocity={summary.reciprocity:.3f} "
                f"clustering={summary.global_clustering:.4f}"
            )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    comparisons = compare_table5(results)
    summary = agreement_summary(comparisons)
    print(f"cells: {summary['cells']}")
    print(f"direction agreement: {summary['direction_agreement']:.1%}")
    print("per kernel:", {k: round(v, 2) for k, v in summary["per_kernel"].items()})
    print("per framework:", {k: round(v, 2) for k, v in summary["per_framework"].items()})
    print("rank correlation:", {k: round(v, 2) for k, v in framework_rank_correlation(comparisons).items()})
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.graph not in GRAPH_NAMES:
        raise SystemExit(f"unknown graph {args.graph!r} (allowed: {list(GRAPH_NAMES)})")
    graph = build_graph(args.graph, scale=args.scale, seed=args.seed)
    if args.weighted:
        graph = weighted_version(graph, seed=args.seed)
    write_edge_list(graph, args.out)
    kind = "weighted " if args.weighted else ""
    print(
        f"wrote {kind}{args.graph} (n={graph.num_vertices}, m={graph.num_edges}) "
        f"to {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    graphs = _result_graphs(results)
    write_markdown_report(results, graphs, args.out)
    print(f"markdown report written to {args.out}")
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    results = ResultSet.load_json(args.results)
    spans = read_trace(args.trace) if args.trace else None
    store = RunArchive(args.archive_dir)
    record = store.archive_run(
        results,
        spec=results.meta.get("spec"),
        spans=spans,
        source=f"repro archive {args.results}",
    )
    print(f"archived {args.results} as {record.run_id} under {store.root}")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    store = RunArchive(args.archive_dir)
    entries = store.list_runs()
    if not entries:
        print(f"no archived runs under {store.root}")
        return 0
    if args.limit is not None:
        entries = entries[: args.limit]
    print(f"{'run':<14} {'created (UTC)':<21} {'cells':>5} {'failed':>6}  source")
    for entry in entries:
        print(
            f"{entry.get('run_id', '?'):<14} "
            f"{str(entry.get('created_at', '')):<21} "
            f"{entry.get('cells', 0):>5} {entry.get('failures', 0):>6}  "
            f"{entry.get('source') or ''}"
        )
    return 0


def _print_deltas(deltas, verbose: bool) -> None:
    def fmt(value: float | None) -> str:
        return f"{value:.3f}" if value is not None else "-"

    print(
        f"{'cell':<40} {'class':<10} {'ratio':>7} {'ci':>15} "
        f"{'base':>9} {'cand':>9}"
    )
    for delta in deltas:
        if not verbose and delta.classification == "unchanged":
            continue
        ci = (
            f"[{delta.ci_low:.2f},{delta.ci_high:.2f}]"
            if delta.ci_low is not None and delta.ci_high is not None
            else "-"
        )
        print(
            f"{delta.cell:<40} {delta.classification:<10} "
            f"{fmt(delta.ratio):>7} {ci:>15} "
            f"{fmt(delta.baseline_best):>9} {fmt(delta.candidate_best):>9}"
        )


def _cmd_diff(args: argparse.Namespace) -> int:
    base_ref, baseline, base_env = _resolve_results(args.baseline, args.archive_dir)
    cand_ref, candidate, cand_env = _resolve_results(args.candidate, args.archive_dir)
    report = evaluate_gate(
        baseline,
        candidate,
        threshold=args.threshold,
        baseline_ref=base_ref,
        candidate_ref=cand_ref,
        baseline_environment=base_env,
        candidate_environment=cand_env,
    )
    summary = report.summary()
    print(f"baseline {base_ref} vs candidate {cand_ref} (threshold {args.threshold:.0%})")
    print(
        ", ".join(f"{name}: {count}" for name, count in sorted(summary.items()))
    )
    if report.environment_mismatches:
        print(
            "warning: environments differ on "
            + ", ".join(report.environment_mismatches)
            + " — ratios partly reflect the machine"
        )
    _print_deltas(report.deltas, verbose=True)
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    cand_source = args.results if args.results else args.candidate
    cand_ref, candidate, cand_env = _resolve_results(cand_source, args.archive_dir)

    baseline_path = Path(args.baseline)
    if args.promote and not baseline_path.is_file():
        if not (args.baseline.endswith(".json") or "/" in args.baseline):
            raise SystemExit(
                "--promote needs a baseline *file path* to write "
                f"(got archive ref {args.baseline!r})"
            )
        # Bootstrapping: no baseline yet — promote the candidate into place.
        promote_baseline(candidate, baseline_path)
        print(f"no baseline at {baseline_path}; promoted {cand_ref} as the baseline")
        return 0
    base_ref, baseline, base_env = _resolve_results(args.baseline, args.archive_dir)

    report = evaluate_gate(
        baseline,
        candidate,
        threshold=args.threshold,
        baseline_ref=base_ref,
        candidate_ref=cand_ref,
        baseline_environment=base_env,
        candidate_environment=cand_env,
    )
    summary = report.summary()
    print(
        f"gate: {cand_ref} vs baseline {base_ref} "
        f"(noise threshold {args.threshold:.0%})"
    )
    print(
        ", ".join(f"{name}: {count}" for name, count in sorted(summary.items()))
    )
    if report.environment_mismatches:
        print(
            "warning: environments differ on "
            + ", ".join(report.environment_mismatches)
            + " — consider --promote to rebaseline on this machine"
        )
    if not report.passed:
        print("regressions:")
        for delta in report.regressions:
            ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else delta.detail
            print(f"  {delta.cell}: {delta.classification} ({ratio})")
    _print_deltas(report.deltas, verbose=args.verbose)
    if args.out:
        write_gate_report(report, args.out)
        print(f"gate report written to {args.out}")
    if args.promote:
        promote_baseline(candidate, baseline_path)
        print(f"promoted {cand_ref} to baseline {baseline_path}")
    if report.passed:
        print("gate: PASS")
        return 0
    print(f"gate: FAIL ({len(report.regressions)} regressed cell(s))")
    return 1 if args.fail_on_regression else 0


def _parse_server(text: str) -> tuple[str, int]:
    """Split a HOST:PORT (or bare PORT) --server value."""
    host, _, port = text.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise SystemExit(f"--server must be HOST:PORT, got {text!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import BenchmarkService
    from .service.server import serve_forever

    service = BenchmarkService(
        archive_dir=args.archive_dir,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        journal_dir=args.journal_dir,
        max_pending_jobs=args.max_queue,
        resume=args.resume,
        min_free_bytes=(
            None
            if args.min_free_mb is None
            else int(args.min_free_mb * 1024 * 1024)
        ),
    )
    for report in service.recovery_report:
        print(f"recovered: {report}")
    if service.index_heal_report:
        print(f"index healed: {service.index_heal_report}")

    def ready(host: str, port: int) -> None:
        print(f"repro service listening on http://{host}:{port}", flush=True)
        print(f"archive: {service.archive.root} ({len(service.index)} cells indexed)", flush=True)

    try:
        serve_forever(service, host=args.host, port=args.port, ready=ready)
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .errors import ServiceError
    from .service import CampaignRequest, ServiceClient

    try:
        request = CampaignRequest.from_dict(
            {
                "graphs": args.graphs,
                "kernels": args.kernels,
                "frameworks": args.frameworks,
                "modes": args.modes,
                "scale": args.scale,
                "seed": args.seed,
                "trial_timeout": args.timeout,
            }
        )
    except ServiceError as exc:
        raise SystemExit(f"invalid campaign: {exc}")
    host, port = _parse_server(args.server)
    cells: list[dict] = []
    try:
        with ServiceClient(host, port, timeout=args.client_timeout) as client:
            for event in client.submit(request):
                kind = event.get("event")
                if kind == "accepted":
                    print(
                        f"campaign {event['campaign']}: {event['cells']} cells "
                        f"({event['hits']} cached, {event['pending']} pending)"
                    )
                elif kind == "cell":
                    cells.append(event)
                    result = event.get("result") or {}
                    tag = "cached" if event.get("cached") else "fresh"
                    best = result.get("trial_seconds") or [None]
                    label = "/".join(event["cell"])
                    status = result.get("status", "error")
                    timing = (
                        f"{min(t for t in best if t is not None):.4f}s"
                        if any(t is not None for t in best)
                        else "-"
                    )
                    print(f"  {label:<44} {status:<8} {timing:>10}  [{tag}]")
                elif kind == "done":
                    note = (
                        f"archived as {event['fresh_run_id']}"
                        if event.get("fresh_run_id")
                        else "fully served from the archive (nothing executed)"
                    )
                    print(
                        f"done: {event['cells']} cells, {event['hits']} cached, "
                        f"{event['executed']} executed; {note}"
                    )
                elif kind == "degraded":
                    reasons = "; ".join(event.get("reasons") or [])
                    print(
                        f"server degraded: {event.get('rejected', 0)} cells "
                        f"rejected ({reasons}); retry in "
                        f"{event.get('retry_after_seconds')}s "
                        f"— {event.get('hits', 0)} cached cells were served",
                        file=sys.stderr,
                    )
                    return 1
                elif kind == "error":
                    print(f"server error: {event.get('message')}", file=sys.stderr)
                    return 1
    except ServiceError as exc:
        raise SystemExit(str(exc))
    if args.out:
        from .core.results import RunResult

        results = ResultSet(
            [
                RunResult.from_dict(event["result"])
                for event in cells
                if event.get("result")
            ],
            meta={"request": request.as_dict(), "service": args.server},
        )
        results.save_json(args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from .errors import ServiceError
    from .service import ServiceClient

    host, port = _parse_server(args.server)
    try:
        with ServiceClient(host, port, timeout=10.0) as client:
            payload = client.health() if args.health else client.status()
            print(_json.dumps(payload, indent=2, default=str))
    except ServiceError as exc:
        raise SystemExit(str(exc))
    if args.health and not payload.get("ok"):
        return 1
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    import json as _json

    from .store.archive import RunArchive
    from .store.integrity import scrub

    archive = RunArchive(args.archive_dir)
    report = scrub(archive, quarantine=not args.no_quarantine)
    payload = report.as_dict()
    if args.json:
        print(_json.dumps(payload, indent=2, default=str))
    else:
        print(f"archive: {report.archive_root}")
        print(f"runs checked: {report.checked_runs}")
        for entry in report.quarantined:
            problems = "; ".join(str(p) for p in entry.get("problems", []))
            where = entry.get("quarantined_to", "(reported only)")
            print(f"  quarantined {entry['run_id']}: {problems} -> {where}")
        for problem in report.index_problems:
            print(f"  index: {problem}")
        if report.index_rebuilt:
            print(f"cell index rebuilt: {report.index_entries} entries")
        else:
            print(f"cell index verified: {report.index_entries} entries")
        for problem in report.unresolved:
            print(f"  UNRESOLVED: {problem}")
        print(f"verdict: {report.verdict}")
    return 1 if report.verdict == "failed" else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {version_string()}",
        help="print package version and git SHA, then exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the benchmark campaign")
    run_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    run_parser.add_argument("--graphs", default=",".join(GRAPH_NAMES))
    run_parser.add_argument("--kernels", default=",".join(KERNELS))
    run_parser.add_argument("--frameworks", default=",".join(EXTENDED_FRAMEWORK_NAMES[:6]))
    run_parser.add_argument("--modes", default="baseline,optimized")
    run_parser.add_argument("--out", default=None)
    run_parser.add_argument(
        "--strict",
        action="store_true",
        help="abort the campaign on the first failing cell (default: record "
        "the failure and keep going)",
    )
    run_parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock deadline; an over-budget trial becomes a "
        "recorded timeout",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream per-cell telemetry spans to this JSONL file",
    )
    run_parser.add_argument(
        "--track-memory",
        action="store_true",
        help="record peak heap allocation of each cell's first trial "
        "(tracemalloc; distorts that trial's timing)",
    )
    run_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the campaign (default 1 = serial); with "
        "N>1 cells run in a process pool over a shared-memory corpus and "
        "--timeout becomes a hard per-cell kill",
    )
    run_parser.add_argument(
        "--pool",
        choices=("process", "threads"),
        default="process",
        help="worker pool flavor for --jobs N>1: 'process' (isolated warm "
        "workers over a shared-memory corpus; hard kills on --timeout) or "
        "'threads' (threads sharing this process's graphs; cheapest "
        "dispatch for GIL-releasing NumPy kernels, soft deadlines)",
    )
    run_parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cells per dispatch message under --jobs N>1 (default: sized "
        "automatically from trial counts; 1 = per-cell dispatch; cells "
        "under a hard --timeout always dispatch alone)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent graph-cache directory (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro/graphs); cached graphs skip generation",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always regenerate graphs; neither read nor write the cache",
    )
    run_parser.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="re-run a cell up to N extra times after a *transient* failure "
        "(worker crash, OOM kill, cache corruption) with exponential "
        "backoff; deterministic failures are never retried",
    )
    run_parser.add_argument(
        "--breaker-threshold",
        type=_nonnegative_int,
        default=0,
        metavar="K",
        help="after K consecutive hard failures of one framework/kernel "
        "combination, skip its remaining cells as structured 'skipped' "
        "results (default 0 = disabled)",
    )
    run_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="checkpoint every completed cell to this crash-safe JSONL "
        "journal; combine with --resume to continue an interrupted campaign",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --journal (validated against "
        "the campaign fingerprint) and measure only the rest",
    )
    run_parser.add_argument(
        "--archive",
        action="store_true",
        help="archive this campaign (results, spec, telemetry spans, and an "
        "environment fingerprint) in the append-only run archive",
    )
    run_parser.add_argument(
        "--archive-dir",
        default=None,
        metavar="DIR",
        help="archive root (default: $REPRO_ARCHIVE_DIR or results/archive)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    tables_parser = sub.add_parser("tables", help="render tables from saved results")
    tables_parser.add_argument("--results", required=True)
    tables_parser.set_defaults(fn=_cmd_tables)

    graphs_parser = sub.add_parser("graphs", help="print Table I for the corpus")
    graphs_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    graphs_parser.set_defaults(fn=_cmd_graphs)

    datasets_parser = sub.add_parser(
        "datasets", help="list or describe file-backed datasets"
    )
    datasets_parser.add_argument(
        "refs", nargs="*", metavar="REF",
        help="dataset references (file:/path or dataset:NAME) to describe; "
        "with none given, lists the registered dataset directory",
    )
    datasets_parser.add_argument(
        "--dataset-dir", default=None, metavar="DIR",
        help="dataset registry directory "
        "(default: $REPRO_DATASET_DIR or ./datasets)",
    )
    datasets_parser.add_argument(
        "--stats", action="store_true",
        help="load each dataset and print topology statistics",
    )
    datasets_parser.set_defaults(fn=_cmd_datasets)

    compare_parser = sub.add_parser("compare", help="score results against the paper")
    compare_parser.add_argument("--results", required=True)
    compare_parser.set_defaults(fn=_cmd_compare)

    generate_parser = sub.add_parser("generate", help="write a corpus graph to disk")
    generate_parser.add_argument("graph")
    generate_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--weighted", action="store_true")
    generate_parser.add_argument("--out", required=True)
    generate_parser.set_defaults(fn=_cmd_generate)

    report_parser = sub.add_parser("report", help="render saved results as markdown")
    report_parser.add_argument("--results", required=True)
    report_parser.add_argument("--out", required=True)
    report_parser.set_defaults(fn=_cmd_report)

    archive_parser = sub.add_parser(
        "archive", help="store a saved results file in the run archive"
    )
    archive_parser.add_argument("--results", required=True)
    archive_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="JSONL telemetry trace to persist alongside the results",
    )
    archive_parser.add_argument("--archive-dir", default=None, metavar="DIR")
    archive_parser.set_defaults(fn=_cmd_archive)

    history_parser = sub.add_parser("history", help="list archived runs")
    history_parser.add_argument("--archive-dir", default=None, metavar="DIR")
    history_parser.add_argument("--limit", type=int, default=None, metavar="N")
    history_parser.set_defaults(fn=_cmd_history)

    diff_parser = sub.add_parser(
        "diff", help="statistically compare two runs, cell by cell"
    )
    diff_parser.add_argument(
        "--baseline", required=True, metavar="REF",
        help="run-id prefix, 'latest', or a results-file path",
    )
    diff_parser.add_argument(
        "--candidate", default="latest", metavar="REF",
        help="run to compare against the baseline (default: latest)",
    )
    diff_parser.add_argument(
        "--threshold", type=float, default=DEFAULT_NOISE_THRESHOLD,
        metavar="FRACTION",
        help="relative noise band within which a cell is 'unchanged' "
        f"(default {DEFAULT_NOISE_THRESHOLD})",
    )
    diff_parser.add_argument("--archive-dir", default=None, metavar="DIR")
    diff_parser.set_defaults(fn=_cmd_diff)

    gate_parser = sub.add_parser(
        "gate", help="fail when the candidate run regresses past the baseline"
    )
    gate_parser.add_argument(
        "--baseline", required=True, metavar="REF",
        help="baseline run: run-id prefix, 'latest', or a results-file path "
        "(a file path is required for --promote)",
    )
    gate_parser.add_argument(
        "--results", default=None, metavar="PATH",
        help="candidate results file (default: the latest archived run)",
    )
    gate_parser.add_argument(
        "--candidate", default="latest", metavar="REF",
        help="candidate run ref when --results is not given",
    )
    gate_parser.add_argument(
        "--threshold", type=float, default=DEFAULT_NOISE_THRESHOLD,
        metavar="FRACTION",
        help="relative regression threshold: a cell gates only when its "
        "best-of-k ratio and its whole bootstrap CI exceed 1+FRACTION "
        f"(default {DEFAULT_NOISE_THRESHOLD})",
    )
    gate_parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any cell regresses (default: report only)",
    )
    gate_parser.add_argument(
        "--promote",
        action="store_true",
        help="install the candidate as the new baseline file (atomic); "
        "with a missing baseline this bootstraps it",
    )
    gate_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the gate report as JSON (e.g. BENCH_gate.json)",
    )
    gate_parser.add_argument(
        "--verbose", action="store_true",
        help="print unchanged cells too, not just movers",
    )
    gate_parser.add_argument("--archive-dir", default=None, metavar="DIR")
    gate_parser.set_defaults(fn=_cmd_gate)

    serve_parser = sub.add_parser(
        "serve", help="start the memoizing benchmark server"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=_nonnegative_int, default=8585,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    serve_parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes in the shared warm pool",
    )
    serve_parser.add_argument(
        "--archive-dir", default=None, metavar="DIR",
        help="archive root backing the cell index "
        "(default: $REPRO_ARCHIVE_DIR or results/archive)",
    )
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR")
    serve_parser.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="where per-campaign crash journals live "
        "(default: ARCHIVE/journals)",
    )
    serve_parser.add_argument(
        "--max-queue", type=_positive_int, default=16, metavar="N",
        help="campaigns allowed to wait for the engine before submissions "
        "are rejected",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="on startup, archive and index completed cells from journals "
        "left behind by a crashed server",
    )
    serve_parser.add_argument(
        "--min-free-mb", type=_positive_float, default=None, metavar="MB",
        help="disk low-watermark at the archive root: below this the "
        "server degrades to hits-only read-only mode "
        "(default: $REPRO_MIN_FREE_BYTES or 64 MiB)",
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a campaign to a running server"
    )
    submit_parser.add_argument("--graphs", required=True)
    submit_parser.add_argument("--kernels", required=True)
    submit_parser.add_argument("--frameworks", required=True)
    submit_parser.add_argument("--modes", default="baseline,optimized")
    submit_parser.add_argument("--scale", type=int, default=10)
    submit_parser.add_argument("--seed", type=int, default=0)
    submit_parser.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-trial deadline, part of the campaign identity",
    )
    submit_parser.add_argument(
        "--server", default="127.0.0.1:8585", metavar="HOST:PORT",
    )
    submit_parser.add_argument(
        "--client-timeout", type=_positive_float, default=3600.0,
        metavar="SECONDS", help="socket timeout while streaming results",
    )
    submit_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the streamed cells as a results JSON file",
    )
    submit_parser.set_defaults(fn=_cmd_submit)

    status_parser = sub.add_parser("status", help="query a running server")
    status_parser.add_argument(
        "--server", default="127.0.0.1:8585", metavar="HOST:PORT",
    )
    status_parser.add_argument(
        "--health", action="store_true",
        help="print the full /health payload (watermarks, degraded "
        "state, engine/pool liveness, last scrub verdict); exit 1 if "
        "the server is degraded",
    )
    status_parser.set_defaults(fn=_cmd_status)

    scrub_parser = sub.add_parser(
        "scrub",
        help="verify every archived run + cell-index entry; quarantine "
        "damage and self-heal the index",
    )
    scrub_parser.add_argument(
        "--archive-dir", default=None, metavar="DIR",
        help="archive root to scrub "
        "(default: $REPRO_ARCHIVE_DIR or results/archive)",
    )
    scrub_parser.add_argument(
        "--no-quarantine", action="store_true",
        help="report damage without moving anything (verdict becomes "
        "'failed' if damage is found)",
    )
    scrub_parser.add_argument(
        "--json", action="store_true",
        help="print the full scrub report as JSON",
    )
    scrub_parser.set_defaults(fn=_cmd_scrub)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
