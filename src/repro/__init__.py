"""Reproduction of "Evaluation of Graph Analytics Frameworks Using the GAP
Benchmark Suite" (Azad et al., IISWC 2020).

The package implements, in pure Python/NumPy:

* the GAP benchmark corpus (five topologically diverse graphs) and its six
  kernels (BFS, SSSP, PR, CC, BC, TC);
* six frameworks' execution models — the GAP reference (`repro.gapbs`),
  SuiteSparse:GraphBLAS + LAGraph (`repro.semiring` + `repro.lagraph`),
  Galois (`repro.worklist` + `repro.galois`), NWGraph (`repro.ranges` +
  `repro.nwgraph`), GraphIt (`repro.graphitc` + `repro.graphit`), and the
  Graph Kernel Collection (`repro.gkc`);
* the benchmarking harness that regenerates the paper's Tables I–V
  (`repro.core`);
* a results archive and statistical regression gate (`repro.store`) that
  keeps every campaign (per-trial times, spec, telemetry, environment
  fingerprint) and compares runs with bootstrap confidence intervals.

Quickstart::

    from repro import build_graph, frameworks
    g = build_graph("kron", scale=10)
    result = frameworks.get("gap").bfs(g, source=0)
"""

from . import frameworks
from .errors import ReproError
from .generators import build_corpus, build_graph, weighted_version
from .graphs import CSRGraph, EdgeList

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "EdgeList",
    "ReproError",
    "build_corpus",
    "build_graph",
    "frameworks",
    "weighted_version",
    "__version__",
]
