"""Machine-independent work counters.

Wall-clock seconds in a pure-Python reproduction are dominated by
interpreter overheads that the paper's C++ systems do not pay, so alongside
timing we count *work*: edges examined, algorithm rounds/iterations, and
vertices touched.  These counters make the paper's work-efficiency claims
(asynchronous scheduling does fewer rounds on Road, Gauss–Seidel converges
in fewer iterations than Jacobi, label propagation scans O(E·D) edges on
Road) directly observable and testable.

Frameworks report into the *active* counter set, enabled with::

    with counting() as counters:
        framework.bfs(graph, 0)
    print(counters.edges_examined, counters.rounds)

When no counter set is active, reporting is a cheap no-op.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "WorkCounters",
    "counting",
    "add_edges",
    "add_round",
    "add_iteration",
    "add_vertices",
    "note",
]


@dataclass
class WorkCounters:
    """Accumulated work metrics for one kernel run."""

    edges_examined: int = 0
    vertices_touched: int = 0
    rounds: int = 0
    iterations: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def note(self, key: str, value: float) -> None:
        """Record a named one-off metric (e.g. direction switches)."""
        self.extras[key] = self.extras.get(key, 0.0) + value


# The active stack is thread-local: the thread-pool executor runs cells
# on concurrent threads, and each trial's counters must accumulate into
# that trial's set only — a shared stack would interleave them.
_local = threading.local()


def _stack() -> list[WorkCounters]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextlib.contextmanager
def counting() -> Iterator[WorkCounters]:
    """Activate a fresh counter set for the duration of the block."""
    counters = WorkCounters()
    stack = _stack()
    stack.append(counters)
    try:
        yield counters
    finally:
        stack.pop()


def add_edges(count: int) -> None:
    """Report edges examined by the running kernel."""
    stack = _stack()
    if stack:
        stack[-1].edges_examined += int(count)


def add_vertices(count: int) -> None:
    """Report vertices touched by the running kernel."""
    stack = _stack()
    if stack:
        stack[-1].vertices_touched += int(count)


def add_round() -> None:
    """Report one synchronization round (frontier step, bucket, ...)."""
    stack = _stack()
    if stack:
        stack[-1].rounds += 1


def add_iteration() -> None:
    """Report one full-sweep iteration (PR iteration, SV pass, ...)."""
    stack = _stack()
    if stack:
        stack[-1].iterations += 1


def note(key: str, value: float = 1.0) -> None:
    """Accumulate a named metric (e.g. 'direction_switches')."""
    stack = _stack()
    if stack:
        stack[-1].note(key, value)
