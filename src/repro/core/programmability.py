"""Programmability measurement: source lines per kernel per framework.

The paper's discussion names "the ever-challenging programmability
problem" as unfinished business: the study compared performance but not
how much code each framework required.  Since every framework here
implements each kernel in its own module, we can measure a simple proxy —
logical source lines (excluding blanks, comments, and docstrings) of each
kernel implementation — giving the comparison the paper deferred.

The numbers measure *this reproduction's* implementations, but the
relative pattern mirrors the real systems: the GraphBLAS formulation of TC
is a few lines of algebra while the direct implementations spell out the
loops, and the DSL splits code between algorithm and schedule.
"""

from __future__ import annotations

import ast
import importlib
import inspect

from ..errors import UnknownFrameworkError, UnknownKernelError
from ..frameworks.base import KERNELS
from ..frameworks.registry import FRAMEWORK_NAMES

__all__ = ["kernel_sloc", "programmability_table"]

# Module implementing each kernel, per framework package.
_PACKAGES: dict[str, str] = {
    "gap": "repro.gapbs",
    "suitesparse": "repro.lagraph",
    "galois": "repro.galois",
    "nwgraph": "repro.nwgraph",
    "graphit": "repro.graphit",
    "gkc": "repro.gkc",
}

_MODULES: dict[str, str] = {
    "bfs": "bfs",
    "sssp": "sssp",
    "cc": "cc",
    "pr": "pagerank",
    "bc": "bc",
    "tc": "tc",
}


def _logical_lines(source: str) -> int:
    """Count source lines that carry code (no blanks/comments/docstrings)."""
    tree = ast.parse(source)
    doc_lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if (
                node.body
                and isinstance(node.body[0], ast.Expr)
                and isinstance(node.body[0].value, ast.Constant)
                and isinstance(node.body[0].value.value, str)
            ):
                expr = node.body[0]
                doc_lines.update(range(expr.lineno, expr.end_lineno + 1))
    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or lineno in doc_lines:
            continue
        count += 1
    return count


def kernel_sloc(framework: str, kernel: str) -> int:
    """Logical source lines of one framework's kernel module."""
    if framework not in _PACKAGES:
        raise UnknownFrameworkError(f"unknown framework {framework!r}")
    if kernel not in _MODULES:
        raise UnknownKernelError(f"unknown kernel {kernel!r}")
    module = importlib.import_module(f"{_PACKAGES[framework]}.{_MODULES[kernel]}")
    return _logical_lines(inspect.getsource(module))


def programmability_table() -> list[dict[str, object]]:
    """One row per kernel: SLOC per framework plus totals."""
    rows = []
    for kernel in KERNELS:
        row: dict[str, object] = {"Kernel": kernel.upper()}
        for framework in FRAMEWORK_NAMES:
            row[framework] = kernel_sloc(framework, kernel)
        rows.append(row)
    totals: dict[str, object] = {"Kernel": "total"}
    for framework in FRAMEWORK_NAMES:
        totals[framework] = sum(row[framework] for row in rows)
    rows.append(totals)
    return rows
