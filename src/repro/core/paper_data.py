"""The paper's published results (Tables IV and V), as data.

Transcribed from Azad et al., IISWC 2020.  Table V values are speedups
over the GAP reference in percent (100 = parity, 50 = twice as slow,
200 = twice as fast); Table IV values are the fastest measured times in
seconds on the paper's 2 x Xeon Platinum 8153 testbed.

These constants feed the shape-agreement comparator in
:mod:`repro.core.comparison` and the EXPERIMENTS.md generator: absolute
numbers cannot transfer to a pure-Python substrate, but the *direction* of
each cell (faster or slower than the reference) and the relative ordering
of cells are the reproduction targets.
"""

from __future__ import annotations

from ..frameworks.base import Mode

__all__ = ["PAPER_GRAPH_ORDER", "paper_table5", "paper_table4", "PAPER_TABLE5", "PAPER_TABLE4"]

# The paper's column order.
PAPER_GRAPH_ORDER: tuple[str, ...] = ("web", "twitter", "road", "kron", "urand")

# {framework: {kernel: {mode: (web, twitter, road, kron, urand)}}}
PAPER_TABLE5: dict[str, dict[str, dict[str, tuple[float, ...]]]] = {
    "suitesparse": {
        "bfs": {
            "baseline": (39.98, 60.50, 13.74, 58.14, 51.09),
            "optimized": (36.38, 54.04, 8.02, 53.71, 46.48),
        },
        "sssp": {
            "baseline": (8.50, 32.23, 0.35, 32.10, 40.51),
            "optimized": (5.84, 31.18, 0.43, 23.95, 32.56),
        },
        "cc": {
            "baseline": (12.66, 18.87, 7.40, 20.13, 43.45),
            "optimized": (11.08, 15.65, 6.30, 15.96, 33.05),
        },
        "pr": {
            "baseline": (92.86, 87.92, 137.50, 91.04, 91.45),
            "optimized": (85.02, 91.21, 173.42, 96.53, 97.81),
        },
        "bc": {
            "baseline": (54.00, 70.93, 3.96, 80.38, 92.40),
            "optimized": (42.69, 69.64, 3.46, 85.74, 84.95),
        },
        "tc": {
            "baseline": (48.76, 31.92, 12.86, 34.01, 61.51),
            "optimized": (55.53, 34.49, 12.47, 37.46, 61.04),
        },
    },
    "galois": {
        "bfs": {
            "baseline": (54.18, 44.77, 351.04, 57.14, 8.93),
            "optimized": (58.55, 41.88, 220.92, 62.16, 77.85),
        },
        "sssp": {
            "baseline": (46.13, 55.94, 54.40, 41.76, 49.47),
            "optimized": (26.62, 45.11, 67.37, 58.06, 53.53),
        },
        "cc": {
            "baseline": (64.43, 114.02, 84.11, 85.22, 66.06),
            "optimized": (113.94, 75.16, 90.16, 85.53, 49.16),
        },
        "pr": {
            "baseline": (157.54, 84.36, 331.66, 106.15, 117.35),
            "optimized": (154.67, 108.96, 456.72, 110.63, 125.71),
        },
        "bc": {
            "baseline": (102.90, 68.88, 54.66, 71.36, 30.88),
            "optimized": (105.52, 73.18, 43.83, 72.87, 75.12),
        },
        "tc": {
            "baseline": (113.14, 108.29, 111.57, 98.02, 81.26),
            "optimized": (235.19, 140.02, 130.04, 106.39, 90.62),
        },
    },
    "graphit": {
        "bfs": {
            "baseline": (64.24, 86.40, 37.14, 84.29, 88.59),
            "optimized": (54.11, 83.92, 74.34, 88.59, 95.14),
        },
        "sssp": {
            "baseline": (106.50, 110.96, 94.74, 112.40, 107.56),
            "optimized": (86.17, 104.35, 93.88, 96.13, 106.48),
        },
        "cc": {
            "baseline": (19.60, 8.86, 0.17, 7.06, 16.92),
            "optimized": (16.10, 19.55, 0.45, 16.45, 27.85),
        },
        "pr": {
            "baseline": (194.40, 109.23, 307.38, 102.72, 101.64),
            "optimized": (149.14, 196.47, 350.03, 211.61, 186.20),
        },
        "bc": {
            "baseline": (73.23, 100.23, 45.98, 224.15, 272.49),
            "optimized": (75.85, 189.21, 34.67, 223.41, 251.01),
        },
        "tc": {
            "baseline": (99.30, 108.45, 67.67, 113.89, 101.73),
            "optimized": (98.72, 107.06, 98.41, 106.97, 104.38),
        },
    },
    "gkc": {
        "bfs": {
            "baseline": (68.68, 67.33, 157.85, 61.20, 67.47),
            "optimized": (74.44, 60.29, 83.29, 56.75, 64.35),
        },
        "sssp": {
            "baseline": (113.22, 89.68, 18.38, 86.72, 119.25),
            "optimized": (115.98, 98.23, 18.53, 77.29, 118.17),
        },
        "cc": {
            "baseline": (31.87, 26.53, 14.29, 32.95, 295.12),
            "optimized": (27.69, 19.76, 10.82, 23.46, 214.27),
        },
        "pr": {
            "baseline": (191.32, 105.56, 358.54, 136.28, 142.03),
            "optimized": (125.03, 104.14, 324.19, 137.15, 150.24),
        },
        "bc": {
            "baseline": (106.98, 100.30, 101.55, 101.60, 102.33),
            "optimized": (106.23, 97.49, 77.15, 101.34, 102.76),
        },
        "tc": {
            "baseline": (107.36, 157.92, 149.43, 197.51, 123.19),
            "optimized": (106.98, 160.46, 176.41, 187.20, 113.98),
        },
    },
    "nwgraph": {
        "bfs": {
            "baseline": (23.78, 65.85, 53.02, 65.34, 42.54),
            "optimized": (26.59, 66.57, 33.97, 67.28, 48.74),
        },
        "sssp": {
            "baseline": (47.62, 85.35, 4.61, 114.69, 54.25),
            "optimized": (46.33, 109.46, 6.58, 102.53, 55.39),
        },
        "cc": {
            "baseline": (59.89, 69.09, 62.36, 61.50, 99.63),
            "optimized": (49.60, 64.33, 60.34, 57.21, 87.41),
        },
        "pr": {
            "baseline": (230.67, 110.38, 373.94, 108.16, 120.65),
            "optimized": (175.33, 119.14, 499.59, 112.20, 124.68),
        },
        "bc": {
            "baseline": (139.07, 135.88, 41.49, 163.21, 92.44),
            "optimized": (117.33, 139.02, 38.15, 151.84, 90.77),
        },
        "tc": {
            "baseline": (249.06, 132.30, 60.61, 108.27, 124.01),
            "optimized": (228.14, 129.97, 51.35, 109.45, 112.77),
        },
    },
}

# Table IV: fastest time in seconds, {kernel: {mode: (web..urand)}}.
PAPER_TABLE4: dict[str, dict[str, tuple[float, ...]]] = {
    "bfs": {
        "baseline": (0.329, 0.248, 0.130, 0.365, 0.570),
        "optimized": (0.300, 0.214, 0.109, 0.308, 0.486),
    },
    "sssp": {
        "baseline": (0.900, 2.217, 0.269, 4.566, 6.438),
        "optimized": (0.603, 2.174, 0.272, 3.810, 5.199),
    },
    "cc": {
        "baseline": (0.219, 0.246, 0.060, 0.691, 0.670),
        "optimized": (0.167, 0.209, 0.045, 0.479, 0.606),
    },
    "pr": {
        "baseline": (2.554, 10.268, 0.338, 11.050, 12.143),
        "optimized": (2.737, 5.405, 0.267, 6.960, 9.499),
    },
    "bc": {
        "baseline": (3.178, 8.237, 2.431, 13.300, 16.389),
        "optimized": (2.978, 5.215, 1.876, 11.240, 14.040),
    },
    "tc": {
        "baseline": (9.358, 62.356, 0.028, 207.627, 24.716),
        "optimized": (8.650, 42.486, 0.021, 160.593, 15.985),
    },
}


def paper_table5(framework: str, kernel: str, graph: str, mode: Mode) -> float:
    """One Table V cell: the paper's speedup-over-reference percentage."""
    column = PAPER_GRAPH_ORDER.index(graph)
    return PAPER_TABLE5[framework][kernel][mode.value][column]


def paper_table4(kernel: str, graph: str, mode: Mode) -> float:
    """One Table IV cell: the paper's fastest time in seconds."""
    column = PAPER_GRAPH_ORDER.index(graph)
    return PAPER_TABLE4[kernel][mode.value][column]
