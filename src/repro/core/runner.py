"""Benchmark runner: executes the 30 GAP tests under both rule sets.

Timing follows the GAP rules as the paper applies them:

* graph loading, weight generation, symmetrization (for TC), and
  transposition are *not* timed — every framework receives the same
  prebuilt :class:`GraphCase`;
* any restructuring/relabeling a kernel performs *is* timed, except where
  a framework's Optimized rules exclude it (the ``prepare`` hook);
* BFS/SSSP rotate through deterministic random sources, identical for all
  frameworks; BC draws 4 roots per trial; the reported time is the
  average over trials;
* every output is verified (once per cell) against the oracles in
  :mod:`repro.core.verify`.

Every cell runs inside a telemetry span (see :mod:`repro.core.telemetry`):
wall time per trial, prepare/kernel/verify phase times, a work-counter
snapshot, optional peak memory, and an outcome status.  ``run_cell``
raises on failure (callers that benchmark a single cell want the
traceback); ``run_suite`` isolates faults by default — a crashing or
hanging framework cell becomes a recorded ``error``/``timeout`` result
and the campaign continues — unless ``strict=True`` restores fail-fast.

On top of isolation, ``run_suite`` layers the resilience machinery
(:mod:`repro.resilience`): every completed cell is durably appended to a
checkpoint ``journal`` (and ``resume=True`` skips cells the journal
already holds), transient failures are retried per ``spec.retries`` with
deterministic backoff, a per-(framework, kernel) circuit breaker converts
the remainder of a persistently failing combo into ``skipped`` results,
and SIGTERM unwinds the campaign cleanly instead of killing it mid-cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..frameworks.base import KERNELS, Framework, Mode, RunContext
from ..generators import build_graph, weighted_version
from ..graphs import CSRGraph
from ..graphs.cache import GraphCache
# Submodule-direct imports: repro.resilience.journal sits above repro.core
# (it needs RunResult), so the journal is imported lazily in run_suite; the
# fault/retry/breaker/signal modules below are layering-free.
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import active_plan, corrupt_cache, fire, transform_output
from ..resilience.retry import RetryPolicy
from ..resilience.signals import graceful_shutdown
from . import counters as counters_mod
from . import verify
from .memory import track_peak_memory
from .results import ResultSet, RunResult
from .spec import BenchmarkSpec, SourcePicker
from .telemetry import STATUS_OK, STATUS_SKIPPED, Span, Telemetry, TrialDeadline

__all__ = ["GraphCase", "build_case", "run_cell", "run_suite"]


@dataclass(frozen=True)
class GraphCase:
    """One benchmark input, with all untimed derived forms prebuilt.

    The three views obey explicit derivation rules (tested in
    ``tests/test_harness.py``):

    * ``weighted`` is ``graph`` plus GAP-style edge weights and always
      preserves ``graph``'s direction; it is ``graph`` itself when the
      input already carries weights.
    * ``undirected`` is ``graph`` itself when the input is already
      undirected (an alias, never a copy), else the symmetrized form.
      It is always unweighted like ``graph`` (TC ignores weights).
    """

    name: str
    graph: CSRGraph
    weighted: CSRGraph
    undirected: CSRGraph

    @classmethod
    def build(cls, name: str, scale: int, seed: int = 0) -> "GraphCase":
        return cls.from_graph(name, build_graph(name, scale=scale, seed=seed), seed=seed)

    @classmethod
    def from_graph(cls, name: str, graph: CSRGraph, seed: int = 0) -> "GraphCase":
        """Derive the weighted/undirected views for an existing graph."""
        weighted = graph if graph.is_weighted else weighted_version(graph, seed=seed)
        undirected = graph.to_undirected() if graph.directed else graph
        return cls(name, graph, weighted, undirected)


def build_case(
    graph_name: str,
    spec: BenchmarkSpec,
    cache: GraphCache | None = None,
    telemetry: Telemetry | None = None,
) -> GraphCase:
    """Build one corpus case, going through the graph cache when given.

    A cache hit skips generation *and* derived-view construction entirely
    (the artifact stores all three views with their aliasing); a miss
    builds the case and persists it for the next campaign.

    ``graph_name`` may be a dataset reference (``file:...`` /
    ``dataset:...``): the file is resolved once here in the parent, its
    case is cached under the file's SHA-256 content digest (renames hit,
    edits miss), and parallel executors publish the built case over shared
    memory — workers never touch the file.

    A *corrupt* cache artifact (checksum/parse failure, torn pair) still
    degrades to a rebuild, but not silently: with ``telemetry`` given,
    each corruption the lookup detected becomes a structured
    ``cache-corruption`` warning span, and the cache's ``corrupt`` /
    ``corrupt_events`` counters record it either way.
    """
    from ..graphs.datasets import is_dataset_ref, resolve

    def _note_corruption(start: int) -> None:
        # Surface damage the load just detected; a plain cold miss adds
        # no events, so warm paths pay one len() comparison.
        if telemetry is None or cache is None:
            return
        for event in cache.corrupt_events[start:]:
            telemetry.ingest(
                Span(
                    name="cache-corruption",
                    attributes={"graph": graph_name},
                    warnings=[{"warning": "graph-cache-corruption", **event}],
                )
            )

    if is_dataset_ref(graph_name):
        info = resolve(graph_name)
        if cache is not None:
            seen = len(cache.corrupt_events)
            views = cache.load_dataset_views(info.digest, spec.seed)
            _note_corruption(seen)
            if views is not None:
                return GraphCase(graph_name, *views)
        case = GraphCase.from_graph(graph_name, info.load(), seed=spec.seed)
        if cache is not None:
            try:
                cache.store_dataset_views(
                    info.digest, spec.seed,
                    case.graph, case.weighted, case.undirected,
                )
            except OSError:
                pass
        return case

    if cache is not None:
        plan = active_plan(spec)
        if plan:
            # Fault-injection point: damage the artifact *before* the load
            # so the checksum-validated degrade-to-miss path is exercised.
            corrupt_cache(plan, cache, graph_name, spec.scale, spec.seed)
        seen = len(cache.corrupt_events)
        views = cache.load_views(graph_name, spec.scale, spec.seed)
        _note_corruption(seen)
        if views is not None:
            return GraphCase(graph_name, *views)
    case = GraphCase.build(graph_name, scale=spec.scale, seed=spec.seed)
    if cache is not None:
        try:
            cache.store_views(
                graph_name, spec.scale, spec.seed,
                case.graph, case.weighted, case.undirected,
            )
        except OSError:
            # The cache is an optimization: a full or unwritable disk must
            # not sink a campaign whose graph is already built.
            pass
    return case


def _kernel_input(case: GraphCase, kernel: str) -> CSRGraph:
    if kernel == "sssp":
        return case.weighted
    if kernel == "tc":
        return case.undirected
    return case.graph


def _verify_output(
    kernel: str,
    case: GraphCase,
    output,
    source: int | None,
    sources: np.ndarray | None,
    spec: BenchmarkSpec,
) -> None:
    if kernel == "bfs":
        verify.verify_bfs(case.graph, source, output)
    elif kernel == "sssp":
        verify.verify_sssp(case.weighted, source, output)
    elif kernel == "cc":
        verify.verify_cc(case.graph, output)
    elif kernel == "pr":
        verify.verify_pr(case.graph, output, tolerance=spec.pr_tolerance)
    elif kernel == "bc":
        # Imported lazily: the gapbs package itself depends on repro.core.
        from ..gapbs import GAPReference

        reference = GAPReference().betweenness(case.graph, sources)
        verify.verify_bc(reference, output)
    elif kernel == "tc":
        verify.verify_tc(case.undirected, int(output))


def _counters_snapshot(work: counters_mod.WorkCounters) -> dict[str, object]:
    snapshot: dict[str, object] = {
        "edges_examined": work.edges_examined,
        "vertices_touched": work.vertices_touched,
        "rounds": work.rounds,
        "iterations": work.iterations,
    }
    if work.extras:
        snapshot["extras"] = dict(work.extras)
    return snapshot


def _attach_cell_detail(
    cell: Span,
    prepare_seconds: float,
    verify_seconds: float | None,
    trial_seconds: list[float],
    trial_sources: list[object],
    planned_trials: int,
    work: counters_mod.WorkCounters,
    peak_bytes: int | None,
) -> None:
    """Materialize the per-trial records and phase sub-spans of one cell.

    Runs *after* the trial loop (and on the failure path), so building the
    trace costs the timed region nothing.  Completed trials are ``ok``;
    when the loop stopped early, the trial the exception interrupted is
    recorded with the cell's failure status and the rest as ``skipped``.
    """
    cell.children.append(Span(name="prepare", wall_seconds=prepare_seconds))
    if verify_seconds is not None:
        cell.children.append(Span(name="verify", wall_seconds=verify_seconds))
    failed = cell.status != STATUS_OK
    for trial in range(planned_trials):
        if trial < len(trial_seconds):
            record: dict[str, object] = {
                "trial": trial,
                "status": "ok",
                "wall_seconds": trial_seconds[trial],
            }
        elif failed and trial == len(trial_seconds):
            record = {"trial": trial, "status": cell.status, "wall_seconds": None}
        else:
            record = {"trial": trial, "status": "skipped", "wall_seconds": None}
        if trial < len(trial_sources) and trial_sources[trial] is not None:
            record["source"] = trial_sources[trial]
        cell.trials.append(record)
    cell.counters = _counters_snapshot(work)
    if peak_bytes is not None:
        cell.peak_mem_bytes = peak_bytes


def run_cell(
    framework: Framework,
    kernel: str,
    case: GraphCase,
    mode: Mode,
    spec: BenchmarkSpec,
    telemetry: Telemetry | None = None,
    attempt: int = 0,
) -> RunResult:
    """Benchmark one (framework, kernel, graph, mode) cell.

    Raises on kernel error, verification failure, or deadline overrun;
    either way the cell's telemetry span records what happened first.
    ``attempt`` is the 0-based execution count under the retry policy;
    re-executions stamp it on the cell span (and it addresses injected
    faults, so "fail on attempt 0 only" plans are expressible).
    """
    tel = telemetry if telemetry is not None else Telemetry()
    plan = active_plan(spec)
    ctx = RunContext(
        mode=mode,
        graph_name=case.name,
        delta=spec.delta_for(case.name),
        seed=spec.seed,
    )
    base_input = _kernel_input(case, kernel)
    planned_trials = spec.num_trials(kernel)
    deadline = TrialDeadline(spec.trial_timeout)

    trial_seconds: list[float] = []
    trial_sources: list[object] = []
    prepare_seconds = 0.0
    verify_seconds: float | None = None
    peak_bytes: int | None = None
    work = counters_mod.WorkCounters()

    with tel.span(
        "cell",
        framework=framework.name,
        kernel=kernel,
        graph=case.name,
        mode=mode.value,
    ) as cell:
        if attempt:
            cell.attributes["attempt"] = attempt
        try:
            cell.attributes["phase"] = "prepare"
            prepare_start = time.perf_counter()
            prepared = framework.prepare(kernel, base_input, ctx)
            prepare_seconds = time.perf_counter() - prepare_start
            picker = SourcePicker(case.graph, spec.seed)

            for trial in range(planned_trials):
                source: int | None = None
                sources: np.ndarray | None = None
                if kernel in ("bfs", "sssp"):
                    source = picker.next_source()
                elif kernel == "bc":
                    sources = picker.next_sources(spec.bc_roots)
                trial_sources.append(source)
                cell.attributes["phase"] = "kernel"
                cell.attributes["trial"] = trial

                def timed_kernel() -> tuple[object, float]:
                    # In-trial fault-injection point: inside the deadline
                    # scope, so an injected hang times out exactly like a
                    # genuinely hung kernel.
                    with deadline:
                        if plan:
                            fire(
                                plan, framework.name, kernel,
                                case.name, mode.value, attempt,
                            )
                        start = time.perf_counter()
                        out = framework.run_kernel(
                            kernel, prepared, ctx,
                            source=source, sources=sources,
                            pr_tolerance=spec.pr_tolerance,
                        )
                        return out, time.perf_counter() - start

                with counters_mod.counting() as trial_work:
                    if tel.track_memory and trial == 0:
                        with track_peak_memory() as tracked:
                            output, elapsed = timed_kernel()
                        peak_bytes = tracked.peak_bytes
                    else:
                        output, elapsed = timed_kernel()
                trial_seconds.append(elapsed)

                if trial == 0:
                    work = trial_work
                    if plan:
                        output = transform_output(
                            plan, framework.name, kernel,
                            case.name, mode.value, attempt, output,
                        )
                    if spec.verify:
                        cell.attributes["phase"] = "verify"
                        verify_start = time.perf_counter()
                        _verify_output(kernel, case, output, source, sources, spec)
                        verify_seconds = time.perf_counter() - verify_start
            cell.attributes.pop("phase", None)
            cell.attributes.pop("trial", None)
        except BaseException as exc:
            # Mark the span before the finally materializes trial records,
            # so the interrupted trial carries the failure status.
            cell.fail(exc)
            overrun = deadline.last_overrun
            if overrun is not None and not overrun.get("interrupted", True):
                # The deadline fired but could not stop the trial (a long
                # C call, or no signal support): the kernel ran to
                # completion and real wall time exceeded the budget.
                cell.warnings.append(
                    {"warning": "deadline-overrun-uninterrupted", **overrun}
                )
            raise
        finally:
            _attach_cell_detail(
                cell, prepare_seconds, verify_seconds, trial_seconds,
                trial_sources, planned_trials, work, peak_bytes,
            )

    return RunResult(
        framework=framework.name,
        kernel=kernel,
        graph=case.name,
        mode=mode,
        trial_seconds=trial_seconds,
        verified=True,
        edges_examined=work.edges_examined,
        rounds=work.rounds,
        iterations=work.iterations,
        extras=dict(work.extras),
    )


def _failed_result(
    framework: Framework,
    kernel: str,
    case: GraphCase,
    mode: Mode,
    status: str,
    exc: BaseException,
) -> RunResult:
    return RunResult(
        framework=framework.name,
        kernel=kernel,
        graph=case.name,
        mode=mode,
        trial_seconds=[],
        verified=False,
        status=status,
        error=f"{type(exc).__name__}: {exc}",
    )


def _skipped_result(
    framework_name: str, kernel: str, graph_name: str, mode: Mode, reason: str
) -> RunResult:
    """A structured ``skipped`` cell (circuit breaker open; never executed)."""
    return RunResult(
        framework=framework_name,
        kernel=kernel,
        graph=graph_name,
        mode=mode,
        trial_seconds=[],
        verified=False,
        status=STATUS_SKIPPED,
        error=reason,
    )


def _skip_span(
    framework_name: str, kernel: str, graph_name: str, mode: Mode, reason: str
) -> Span:
    """The telemetry record of a breaker-skipped cell.

    Built directly (not via ``Telemetry.span``) because nothing executes:
    the span carries zero wall time and the skip reason, keeping the trace
    one-record-per-cell even for cells the breaker short-circuited.
    """
    span = Span(
        name="cell",
        attributes={
            "framework": framework_name,
            "kernel": kernel,
            "graph": graph_name,
            "mode": mode.value,
            "skip_reason": reason,
        },
        status=STATUS_SKIPPED,
    )
    return span


def run_suite(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    progress: Callable[[str], None] | None = None,
    telemetry: Telemetry | None = None,
    strict: bool = False,
    jobs: int | None = None,
    cache: GraphCache | None = None,
    journal: "str | None" = None,
    resume: bool = False,
) -> ResultSet:
    """Run the full campaign; returns all cell results.

    One bad (framework, kernel, graph) cell does not take down the
    campaign: exceptions and deadline overruns become structured
    ``error``/``timeout`` results (traced by ``telemetry``) and every
    other cell still runs.  ``strict=True`` restores fail-fast: the first
    failing cell re-raises.

    ``jobs`` (default ``spec.jobs``) > 1 dispatches to a parallel
    executor (:mod:`repro.core.executor`) selected by ``spec.pool``:
    ``"process"`` shards batches of cells across warm worker processes
    over a shared-memory corpus and turns the per-trial deadline into a
    *hard* kill; ``"threads"`` runs cells on worker threads sharing this
    process's corpus (cheapest dispatch, soft deadlines).  ``jobs=1`` is
    the in-process serial path, where the deadline is soft (see
    :class:`TrialDeadline`).  ``cache`` routes graph building through a
    persistent on-disk cache.

    Resilience layer (both paths):

    * ``journal`` — path of a checkpoint journal; every completed cell is
      durably appended.  With ``resume=True`` an existing journal is
      validated against this campaign's fingerprint and its completed
      cells are *not* re-executed — their recorded results slot into the
      returned set at their canonical positions.
    * ``spec.retries`` — transient cell failures re-execute with
      deterministic backoff; ``RunResult.attempts`` counts executions.
    * ``spec.breaker_threshold`` — after that many consecutive hard
      failures of one (framework, kernel), its remaining cells become
      ``skipped`` results.
    * SIGTERM raises :class:`~repro.errors.CampaignAborted`, so the
      journal is flushed and resources are released on the way out.
    """
    spec = spec or BenchmarkSpec()
    effective_jobs = spec.jobs if jobs is None else int(jobs)
    frameworks = list(frameworks)
    graph_names = list(graph_names)
    kernels = list(kernels)
    modes = list(modes)
    # Lazy: repro.store (and the journal, which needs it) sit above
    # repro.core in the layering.
    from ..resilience.journal import CheckpointJournal, campaign_fingerprint
    from ..store.environment import fingerprint

    mode_values = [mode.value for mode in modes]
    framework_names = [framework.name for framework in frameworks]
    # Resolve any file-backed dataset references up front: an unreadable
    # file fails the campaign before anything executes, and the resulting
    # provenance map (ref -> path/digest/format) rides in the results meta,
    # the archive manifest, and the journal fingerprint so every consumer
    # can identify cells by content digest without touching the file.
    from ..graphs.datasets import graph_identities

    _, dataset_provenance = graph_identities(graph_names)
    campaign_meta: dict[str, object] = {
        "spec": spec.as_dict(),
        "environment": fingerprint(),
        "graphs": graph_names,
        "kernels": kernels,
        "modes": mode_values,
        "frameworks": framework_names,
        "jobs": effective_jobs,
        "pool": spec.pool,
    }
    if dataset_provenance:
        campaign_meta["datasets"] = dataset_provenance

    completed: dict[tuple[str, str, str, str], RunResult] = {}
    journal_obj: CheckpointJournal | None = None
    if journal is not None:
        cell_fingerprint = campaign_fingerprint(
            spec, graph_names, kernels, mode_values, framework_names,
            datasets=dataset_provenance or None,
        )
        if resume:
            journal_obj, completed = CheckpointJournal.resume(
                journal, cell_fingerprint
            )
            # A journal may hold cells outside this campaign's grid only
            # if fingerprints matched yet axes changed — impossible by
            # construction — but filtering keeps the invariant local.
            grid = {
                (graph, mode.value, kernel, name)
                for graph in graph_names
                for mode in modes
                for kernel in kernels
                for name in framework_names
            }
            completed = {key: completed[key] for key in completed if key in grid}
        else:
            journal_obj = CheckpointJournal.create(journal, cell_fingerprint)
    campaign_meta["resilience"] = {
        "retries": spec.retries,
        "breaker_threshold": spec.breaker_threshold,
        "journal": str(journal_obj.path) if journal_obj is not None else None,
        "resumed_cells": len(completed),
    }

    try:
        if effective_jobs > 1:
            from .executor import run_suite_parallel, run_suite_threads

            executor = (
                run_suite_threads if spec.pool == "threads" else run_suite_parallel
            )
            with graceful_shutdown():
                results = executor(
                    frameworks,
                    graph_names,
                    kernels=kernels,
                    modes=modes,
                    spec=spec,
                    jobs=effective_jobs,
                    progress=progress,
                    telemetry=telemetry,
                    strict=strict,
                    cache=cache,
                    journal=journal_obj,
                    completed=completed,
                )
            campaign_meta["resilience"]["skipped_cells"] = len(results.skipped())
            results.meta.update(campaign_meta)
            return results

        tel = telemetry if telemetry is not None else Telemetry()
        results = ResultSet(meta=campaign_meta)
        policy = RetryPolicy(retries=spec.retries)
        breaker = CircuitBreaker(spec.breaker_threshold)
        from ..errors import TrialTimeoutError

        with graceful_shutdown():
            for graph_name in graph_names:
                graph_keys = [
                    (graph_name, mode.value, kernel, name)
                    for mode in modes
                    for kernel in kernels
                    for name in framework_names
                ]
                case: GraphCase | None = None
                if any(key not in completed for key in graph_keys):
                    # A fully resumed graph is never built — resuming the
                    # tail of a campaign costs nothing for finished inputs.
                    case = build_case(graph_name, spec, cache, telemetry=tel)
                for mode in modes:
                    for kernel in kernels:
                        for framework in frameworks:
                            key = (graph_name, mode.value, kernel, framework.name)
                            if key in completed:
                                results.add(completed[key])
                                continue
                            if progress is not None:
                                progress(
                                    f"{mode.value}/{graph_name}/{kernel}/"
                                    f"{framework.name}"
                                )
                            if breaker.is_open(framework.name, kernel):
                                reason = breaker.reason(framework.name, kernel)
                                result = _skipped_result(
                                    framework.name, kernel, graph_name, mode, reason
                                )
                                tel.ingest(
                                    _skip_span(
                                        framework.name, kernel, graph_name,
                                        mode, reason,
                                    )
                                )
                            else:
                                attempt = 0
                                while True:
                                    try:
                                        result = run_cell(
                                            framework, kernel, case, mode, spec,
                                            telemetry=tel, attempt=attempt,
                                        )
                                    except TrialTimeoutError as exc:
                                        if strict:
                                            raise
                                        result = _failed_result(
                                            framework, kernel, case, mode,
                                            "timeout", exc,
                                        )
                                    except Exception as exc:
                                        if strict:
                                            raise
                                        result = _failed_result(
                                            framework, kernel, case, mode,
                                            "error", exc,
                                        )
                                    if result.ok or not policy.should_retry(
                                        result.status, result.error, attempt
                                    ):
                                        break
                                    policy.sleep(attempt)
                                    attempt += 1
                                result.attempts = attempt + 1
                                breaker.record(framework.name, kernel, result.ok)
                            if journal_obj is not None:
                                journal_obj.record(result)
                            results.add(result)
        campaign_meta["resilience"]["skipped_cells"] = len(results.skipped())
        return results
    finally:
        if journal_obj is not None:
            journal_obj.close()
