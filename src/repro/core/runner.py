"""Benchmark runner: executes the 30 GAP tests under both rule sets.

Timing follows the GAP rules as the paper applies them:

* graph loading, weight generation, symmetrization (for TC), and
  transposition are *not* timed — every framework receives the same
  prebuilt :class:`GraphCase`;
* any restructuring/relabeling a kernel performs *is* timed, except where
  a framework's Optimized rules exclude it (the ``prepare`` hook);
* BFS/SSSP rotate through deterministic random sources, identical for all
  frameworks; BC draws 4 roots per trial; the reported time is the
  average over trials;
* every output is verified (once per cell) against the oracles in
  :mod:`repro.core.verify`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..frameworks.base import KERNELS, Framework, Mode, RunContext
from ..generators import build_graph, weighted_version
from ..graphs import CSRGraph
from . import counters as counters_mod
from . import verify
from .results import ResultSet, RunResult
from .spec import BenchmarkSpec, SourcePicker

__all__ = ["GraphCase", "run_cell", "run_suite"]


@dataclass(frozen=True)
class GraphCase:
    """One benchmark input, with all untimed derived forms prebuilt."""

    name: str
    graph: CSRGraph
    weighted: CSRGraph
    undirected: CSRGraph

    @classmethod
    def build(cls, name: str, scale: int, seed: int = 0) -> "GraphCase":
        graph = build_graph(name, scale=scale, seed=seed)
        weighted = weighted_version(graph, seed=seed)
        undirected = graph.to_undirected() if graph.directed else graph
        return cls(name, graph, weighted, undirected)


def _kernel_input(case: GraphCase, kernel: str) -> CSRGraph:
    if kernel == "sssp":
        return case.weighted
    if kernel == "tc":
        return case.undirected
    return case.graph


def _verify_output(
    kernel: str,
    case: GraphCase,
    output,
    source: int | None,
    sources: np.ndarray | None,
    spec: BenchmarkSpec,
) -> None:
    if kernel == "bfs":
        verify.verify_bfs(case.graph, source, output)
    elif kernel == "sssp":
        verify.verify_sssp(case.weighted, source, output)
    elif kernel == "cc":
        verify.verify_cc(case.graph, output)
    elif kernel == "pr":
        verify.verify_pr(case.graph, output, tolerance=spec.pr_tolerance)
    elif kernel == "bc":
        # Imported lazily: the gapbs package itself depends on repro.core.
        from ..gapbs import GAPReference

        reference = GAPReference().betweenness(case.graph, sources)
        verify.verify_bc(reference, output)
    elif kernel == "tc":
        verify.verify_tc(case.undirected, int(output))


def run_cell(
    framework: Framework,
    kernel: str,
    case: GraphCase,
    mode: Mode,
    spec: BenchmarkSpec,
) -> RunResult:
    """Benchmark one (framework, kernel, graph, mode) cell."""
    ctx = RunContext(
        mode=mode,
        graph_name=case.name,
        delta=spec.delta_for(case.name),
        seed=spec.seed,
    )
    base_input = _kernel_input(case, kernel)
    prepared = framework.prepare(kernel, base_input, ctx)
    picker = SourcePicker(case.graph, spec.seed)

    trial_seconds: list[float] = []
    work = counters_mod.WorkCounters()
    verified = True
    for trial in range(spec.num_trials(kernel)):
        source: int | None = None
        sources: np.ndarray | None = None
        if kernel in ("bfs", "sssp"):
            source = picker.next_source()
        elif kernel == "bc":
            sources = picker.next_sources(spec.bc_roots)

        with counters_mod.counting() as trial_work:
            start = time.perf_counter()
            if kernel == "bfs":
                output = framework.bfs(prepared, source, ctx)
            elif kernel == "sssp":
                output = framework.sssp(prepared, source, ctx)
            elif kernel == "cc":
                output = framework.connected_components(prepared, ctx)
            elif kernel == "pr":
                output = framework.pagerank(prepared, ctx, tolerance=spec.pr_tolerance)
            elif kernel == "bc":
                output = framework.betweenness(prepared, sources, ctx)
            elif kernel == "tc":
                output = framework.triangle_count(prepared, ctx)
            else:
                raise ValueError(f"unknown kernel {kernel!r}")
            trial_seconds.append(time.perf_counter() - start)
        if trial == 0:
            work = trial_work
            if spec.verify:
                _verify_output(kernel, case, output, source, sources, spec)

    return RunResult(
        framework=framework.name,
        kernel=kernel,
        graph=case.name,
        mode=mode,
        trial_seconds=trial_seconds,
        verified=verified,
        edges_examined=work.edges_examined,
        rounds=work.rounds,
        iterations=work.iterations,
        extras=dict(work.extras),
    )


def run_suite(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    progress: Callable[[str], None] | None = None,
) -> ResultSet:
    """Run the full campaign; returns all cell results."""
    spec = spec or BenchmarkSpec()
    frameworks = list(frameworks)
    kernels = list(kernels)
    modes = list(modes)
    results = ResultSet()
    for graph_name in graph_names:
        case = GraphCase.build(graph_name, scale=spec.scale, seed=spec.seed)
        for mode in modes:
            for kernel in kernels:
                for framework in frameworks:
                    if progress is not None:
                        progress(
                            f"{mode.value}/{graph_name}/{kernel}/{framework.name}"
                        )
                    results.add(run_cell(framework, kernel, case, mode, spec))
    return results
