"""Markdown report generation from campaign results.

Turns a :class:`ResultSet` into the paper-shaped markdown artifacts:
Table IV / Table V as markdown tables, the paper-vs-measured comparison,
and the work-counter appendix.  Used to keep EXPERIMENTS.md regenerable
from raw results JSON.
"""

from __future__ import annotations

from pathlib import Path

from ..frameworks.base import KERNELS, Mode
from .comparison import agreement_summary, compare_table5, framework_rank_correlation
from .results import ResultSet
from .tables import (
    KERNEL_LABELS,
    failure_rows,
    table4_rows,
    table5_rows,
    trial_statistics_rows,
)

__all__ = ["markdown_table", "results_to_markdown", "write_markdown_report"]


def markdown_table(rows: list[dict[str, object]]) -> str:
    """Render a row-dict list as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)\n"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
        )
    return "\n".join(lines) + "\n"


def _work_appendix(results: ResultSet, graphs: list[str]) -> str:
    """Machine-independent work metrics per kernel on the reference."""
    lines = ["### Work counters (GAP reference, baseline)", ""]
    rows = []
    for kernel in KERNELS:
        row: dict[str, object] = {"Kernel": KERNEL_LABELS[kernel]}
        for graph in graphs:
            cell = results.one("gap", kernel, graph, Mode.BASELINE)
            if cell is None:
                row[graph] = ""
                continue
            row[graph] = (
                f"{cell.edges_examined} edges, "
                f"{cell.rounds} rounds, {cell.iterations} iters"
            )
        rows.append(row)
    lines.append(markdown_table(rows))
    return "\n".join(lines)


def results_to_markdown(results: ResultSet, graphs: list[str]) -> str:
    """The full markdown report for one campaign."""
    sections = ["# Campaign report", ""]

    sections.append("## Table IV — fastest times (seconds) and winners\n")
    sections.append(markdown_table(table4_rows(results, graphs)))

    sections.append("## Table V — speedup over the GAP reference (percent)\n")
    sections.append(markdown_table(table5_rows(results, graphs)))

    failures = failure_rows(results)
    if failures:
        sections.append("## Failures\n")
        sections.append(
            f"{len(failures)} cell(s) did not complete; they are excluded "
            "from the tables above (see docs/TELEMETRY.md for how to read "
            "this table).\n"
        )
        sections.append(markdown_table(failures))

    comparisons = compare_table5(results)
    if comparisons:
        summary = agreement_summary(comparisons)
        sections.append("## Shape agreement with the paper\n")
        sections.append(
            f"- direction agreement: **{summary['direction_agreement']:.1%}** "
            f"of {summary['cells']} cells"
        )
        per_kernel = ", ".join(
            f"{k.upper()} {v:.0%}" for k, v in summary["per_kernel"].items()
        )
        sections.append(f"- per kernel: {per_kernel}")
        correlations = framework_rank_correlation(comparisons)
        per_framework = ", ".join(
            f"{k} {v:+.2f}" for k, v in correlations.items()
        )
        sections.append(f"- Spearman rank correlation: {per_framework}\n")

    stats = trial_statistics_rows(results)
    if stats:
        sections.append("## Trial statistics (p50 / p95 / CV per cell)\n")
        sections.append(markdown_table(stats))

    sections.append(_work_appendix(results, graphs))
    return "\n".join(sections)


def write_markdown_report(
    results: ResultSet, graphs: list[str], path: str | Path
) -> None:
    """Write the campaign report to ``path``."""
    Path(path).write_text(results_to_markdown(results, graphs), encoding="utf-8")
