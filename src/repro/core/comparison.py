"""Shape-agreement analysis: reproduction results vs the paper's tables.

Absolute times cannot transfer from a 32-core Xeon running C++ to
single-process NumPy, so the comparison is structural:

* **direction agreement** — per Table V cell, do the paper and the
  reproduction agree on whether the framework beats the GAP reference
  (>= 100%) or not?  Cells near parity are genuinely ambiguous, so a
  dead-band around 100% is treated as agreeing with either side.
* **rank correlation** — per framework, Spearman correlation between the
  paper's 30 cell values and the reproduction's (does the same kernel x
  graph pattern emerge?).
* **winner overlap** — per Table IV cell, whether the paper's class of
  winner matches (exact winner matching is too strict given how close the
  top frameworks run; the reports list both).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..frameworks.base import KERNELS, Mode
from .paper_data import PAPER_GRAPH_ORDER, PAPER_TABLE5, paper_table5
from .results import ResultSet

__all__ = ["CellComparison", "compare_table5", "agreement_summary", "framework_rank_correlation"]

# Within this band of 100% a cell counts as "parity" and agrees either way.
PARITY_BAND = (85.0, 118.0)


@dataclass(frozen=True)
class CellComparison:
    """One Table V cell, paper vs reproduction."""

    framework: str
    kernel: str
    graph: str
    mode: Mode
    paper_percent: float
    measured_percent: float

    @property
    def paper_direction(self) -> int:
        """-1 slower than reference, 0 parity, +1 faster."""
        return _direction(self.paper_percent)

    @property
    def measured_direction(self) -> int:
        return _direction(self.measured_percent)

    @property
    def agrees(self) -> bool:
        """Direction agreement with a parity dead-band."""
        if self.paper_direction == 0 or self.measured_direction == 0:
            return True
        return self.paper_direction == self.measured_direction


def _direction(percent: float) -> int:
    if percent < PARITY_BAND[0]:
        return -1
    if percent > PARITY_BAND[1]:
        return 1
    return 0


def compare_table5(
    results: ResultSet, reference: str = "gap"
) -> list[CellComparison]:
    """Pair every measured Table V cell with the paper's value."""
    comparisons: list[CellComparison] = []
    for framework in PAPER_TABLE5:
        for kernel in KERNELS:
            for mode in (Mode.BASELINE, Mode.OPTIMIZED):
                for graph in PAPER_GRAPH_ORDER:
                    mine = results.one(framework, kernel, graph, mode)
                    ref = results.one(reference, kernel, graph, mode)
                    if mine is None or ref is None:
                        continue
                    measured = 100.0 * ref.seconds / mine.seconds
                    comparisons.append(
                        CellComparison(
                            framework,
                            kernel,
                            graph,
                            mode,
                            paper_table5(framework, kernel, graph, mode),
                            round(measured, 1),
                        )
                    )
    return comparisons


def agreement_summary(comparisons: list[CellComparison]) -> dict[str, object]:
    """Aggregate agreement statistics over all compared cells."""
    total = len(comparisons)
    agreeing = sum(1 for c in comparisons if c.agrees)
    by_kernel: dict[str, list[CellComparison]] = {}
    by_framework: dict[str, list[CellComparison]] = {}
    for comparison in comparisons:
        by_kernel.setdefault(comparison.kernel, []).append(comparison)
        by_framework.setdefault(comparison.framework, []).append(comparison)
    return {
        "cells": total,
        "direction_agreement": agreeing / total if total else 0.0,
        "per_kernel": {
            kernel: sum(c.agrees for c in cells) / len(cells)
            for kernel, cells in by_kernel.items()
        },
        "per_framework": {
            framework: sum(c.agrees for c in cells) / len(cells)
            for framework, cells in by_framework.items()
        },
        "disagreements": [
            (c.framework, c.kernel, c.graph, c.mode.value, c.paper_percent, c.measured_percent)
            for c in comparisons
            if not c.agrees
        ],
    }


def framework_rank_correlation(
    comparisons: list[CellComparison],
) -> dict[str, float]:
    """Spearman correlation of paper-vs-measured cell patterns per framework."""
    correlations: dict[str, float] = {}
    frameworks = {c.framework for c in comparisons}
    for framework in sorted(frameworks):
        cells = [c for c in comparisons if c.framework == framework]
        paper = np.array([c.paper_percent for c in cells])
        measured = np.array([c.measured_percent for c in cells])
        if paper.size < 3:
            continue
        rho, _ = stats.spearmanr(paper, measured)
        correlations[framework] = float(rho)
    return correlations
