"""Span-based telemetry for the benchmark runner.

The paper's contribution is *consistent, comparable measurements* across
frameworks, and both the GAP suite rules and Pollard & Norris's comparison
methodology ask for per-trial reporting: a cross-framework table is only
trustworthy when the variance and the failures behind each averaged cell
are recorded.  This module provides that substrate:

* :class:`Span` — one traced region (a benchmark cell, a prepare phase, a
  trial) with wall time, an outcome status (``ok`` / ``error`` /
  ``timeout`` / ``skipped``), structured error capture, a work-counter
  snapshot, and optional peak-memory figure.
* :class:`Telemetry` — the collector.  Spans nest; every completed
  top-level span is kept in memory for summarization and streamed as one
  JSON line to an optional :class:`JsonlSink`.
* :class:`TrialDeadline` — a per-trial wall-clock budget.  On the main
  thread it arms ``SIGALRM`` so a hung kernel is interrupted mid-flight;
  off the main thread (or without signals) it degrades to a monotonic
  post-hoc check that still converts an over-budget trial into a
  :class:`~repro.errors.TrialTimeoutError`.

The runner keeps its timed region free of telemetry work: per-trial
records are materialized *after* the trial loop from the measurements the
runner already takes, so tracing does not perturb what it measures (see
``benchmarks/bench_telemetry_overhead.py`` for the enforced bound).

See ``docs/TELEMETRY.md`` for the JSONL schema and how to read traces.
"""

from __future__ import annotations

import json
import signal
import threading
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

from ..errors import TrialTimeoutError

__all__ = [
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "JsonlSink",
    "Span",
    "Telemetry",
    "TrialDeadline",
    "quantile",
    "read_trace",
]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile of a sample (NaN for an empty one)."""
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass
class Span:
    """One traced region.

    ``trials`` holds the lightweight per-trial records of a benchmark
    cell (dicts with ``trial``/``status``/``wall_seconds``/``source``);
    ``children`` holds nested phase spans (``prepare``, ``verify``).
    A failed span carries a structured ``error`` with the exception type,
    message, and traceback, plus the phase/trial it was in (in
    ``attributes``).
    """

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = STATUS_OK
    wall_seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)
    trials: list[dict[str, object]] = field(default_factory=list)
    counters: dict[str, object] | None = None
    peak_mem_bytes: int | None = None
    error: dict[str, str] | None = None
    warnings: list[dict[str, object]] = field(default_factory=list)

    def fail(self, exc: BaseException, status: str | None = None) -> None:
        """Mark this span failed, capturing the exception structurally."""
        self.status = status or (
            STATUS_TIMEOUT if isinstance(exc, TrialTimeoutError) else STATUS_ERROR
        )
        self.error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback_mod.format_exception(type(exc), exc, exc.__traceback__)
            ),
        }

    def child(self, name: str) -> "Span | None":
        """First direct child span with the given name, or None."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (one JSONL record for top-level spans)."""
        record: dict[str, object] = {
            "span": self.name,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
        }
        record.update(self.attributes)
        if self.trials:
            record["trials"] = self.trials
        if self.counters is not None:
            record["counters"] = self.counters
        if self.peak_mem_bytes is not None:
            record["peak_mem_bytes"] = self.peak_mem_bytes
        if self.error is not None:
            record["error"] = self.error
        if self.warnings:
            record["warnings"] = self.warnings
        if self.children:
            record["children"] = [span.as_dict() for span in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "Span":
        """Rebuild a span from its :meth:`as_dict` form.

        The inverse used when merging spans streamed out of worker
        processes; unknown keys are treated as attributes, matching how
        ``as_dict`` flattens them.
        """
        reserved = {
            "span",
            "status",
            "wall_seconds",
            "trials",
            "counters",
            "peak_mem_bytes",
            "error",
            "warnings",
            "children",
        }
        return cls(
            name=str(record.get("span", "span")),
            attributes={k: v for k, v in record.items() if k not in reserved},
            status=str(record.get("status", STATUS_OK)),
            wall_seconds=float(record.get("wall_seconds", 0.0)),
            children=[cls.from_dict(child) for child in record.get("children", [])],
            trials=list(record.get("trials", [])),
            counters=record.get("counters"),
            peak_mem_bytes=record.get("peak_mem_bytes"),
            error=record.get("error"),
            warnings=list(record.get("warnings", [])),
        )


class JsonlSink:
    """Append-only JSONL writer over a path or an open text stream.

    Crash-safe by flushing after every record: a campaign killed mid-run
    leaves a ``--trace`` file complete up to the last finished span
    instead of losing a buffered tail (the same durability contract as
    the checkpoint journal, minus the fsync — a trace is diagnostic, not
    the source of truth for resume).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def write(self, record: dict[str, object]) -> None:
        """Write one record as a single JSON line, flushed immediately."""
        self._stream.write(json.dumps(record, default=str) + "\n")
        self._stream.flush()

    def close(self) -> None:
        """Flush, and close the stream if this sink opened it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


def read_trace(path: str | Path) -> list[dict[str, object]]:
    """Parse a JSONL trace file back into record dicts."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _SpanHandle:
    """Context manager for one span: times it and routes it on exit."""

    __slots__ = ("_telemetry", "span", "_start")

    def __init__(self, telemetry: "Telemetry", span: Span) -> None:
        self._telemetry = telemetry
        self.span = span

    def __enter__(self) -> Span:
        self._telemetry._stack.append(self.span)
        self._start = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.wall_seconds = time.perf_counter() - self._start
        if exc is not None and span.status == STATUS_OK:
            span.fail(exc)
        stack = self._telemetry._stack
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._telemetry._finish(span)
        return False


class Telemetry:
    """Collects spans; streams completed top-level spans to a JSONL sink.

    With no sink, spans are only kept in memory (``.spans``), which is the
    default for programmatic use and keeps the tracing layer cheap enough
    to leave permanently enabled.  ``track_memory`` additionally measures
    peak heap allocation of each cell's first trial via ``tracemalloc``
    (this slows allocation-heavy kernels, so it is opt-in and the measured
    trial's timing should be read with that in mind).
    """

    def __init__(
        self,
        sink: JsonlSink | str | Path | IO[str] | None = None,
        track_memory: bool = False,
    ) -> None:
        if sink is not None and not isinstance(sink, JsonlSink):
            sink = JsonlSink(sink)
        self.sink: JsonlSink | None = sink
        self.track_memory = track_memory
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a (nested) span around a ``with`` block."""
        return _SpanHandle(self, Span(name=name, attributes=dict(attributes)))

    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def ingest(self, span: Span) -> None:
        """Record a span that completed elsewhere (e.g. a worker process).

        The parallel executor rebuilds worker spans with
        :meth:`Span.from_dict` and merges them here, so one collector — and
        one JSONL sink — holds the whole campaign regardless of how many
        processes measured it.
        """
        self._finish(span)

    def _finish(self, span: Span) -> None:
        self.spans.append(span)
        if self.sink is not None:
            self.sink.write(span.as_dict())

    def records(self) -> list[dict[str, object]]:
        """All completed top-level spans in their JSONL-record form.

        This is what the results archive persists as a run's
        ``spans.jsonl`` (see :mod:`repro.store.archive`): the same records
        a sink would have streamed, available after the fact whether or
        not a sink was attached.
        """
        return [span.as_dict() for span in self.spans]

    def summary(self) -> dict[str, object]:
        """Aggregate view of all completed top-level spans.

        Returns status counts, the failure table (one row per non-ok
        span), and p50/p95 of span wall times — the numbers the report's
        telemetry sections are built from.
        """
        counts: dict[str, int] = {}
        failures: list[dict[str, object]] = []
        walls: list[float] = []
        for span in self.spans:
            counts[span.status] = counts.get(span.status, 0) + 1
            walls.append(span.wall_seconds)
            if span.status != STATUS_OK:
                row: dict[str, object] = {"span": span.name, "status": span.status}
                row.update(span.attributes)
                if span.error is not None:
                    row["error"] = f"{span.error['type']}: {span.error['message']}"
                failures.append(row)
        return {
            "spans": len(self.spans),
            "by_status": counts,
            "failures": failures,
            "p50_seconds": quantile(walls, 0.50),
            "p95_seconds": quantile(walls, 0.95),
        }

    def close(self) -> None:
        """Close the sink (a sink-less collector needs no cleanup)."""
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class TrialDeadline:
    """Per-trial wall-clock budget; reusable across trials.

    ``seconds=None`` (or <= 0) disables the deadline and makes the context
    manager nearly free.  On the main thread of the main interpreter the
    deadline arms ``SIGALRM``/``setitimer`` so a hung kernel raises
    :class:`TrialTimeoutError` *inside* the kernel; elsewhere Python
    forbids signal handlers, so the budget degrades to a monotonic check
    after the block — the trial is not interrupted, but it is still
    recorded as a timeout rather than a measurement.

    Even with the signal armed, CPython only delivers it between
    bytecodes: a trial stuck inside one long C call (a big NumPy
    operation) runs to completion and the raise lands at the *next*
    Python instruction.  An in-process deadline is therefore soft by
    construction; ``last_overrun`` records, for the most recent
    over-budget block, whether the trial was actually interrupted near
    its budget or overran uninterrupted (and by how much), so the runner
    can attach a structured warning to the cell span.  A *hard* guarantee
    requires process isolation — the parallel executor
    (:mod:`repro.core.executor`) kills over-budget workers outright.
    """

    #: Overrun classification: a signal-armed trial that ended within
    #: ``budget * (1 + fraction) + slop`` counts as interrupted in-flight.
    _INTERRUPT_SLOP_FRACTION = 0.25
    _INTERRUPT_SLOP_SECONDS = 0.05

    def __init__(self, seconds: float | None) -> None:
        self.seconds = None if seconds is None or seconds <= 0 else float(seconds)
        self._use_signal = False
        self._start = 0.0
        self._previous_handler: object = None
        #: Structured record of the most recent over-budget block, or None.
        self.last_overrun: dict[str, object] | None = None

    def _expire(self, signum, frame) -> None:
        raise TrialTimeoutError(
            f"trial exceeded its {self.seconds:.6g}s deadline"
        )

    def __enter__(self) -> "TrialDeadline":
        if self.seconds is None:
            return self
        self.last_overrun = None
        self._start = time.monotonic()
        self._use_signal = hasattr(signal, "SIGALRM") and (
            threading.current_thread() is threading.main_thread()
        )
        if self._use_signal:
            self._previous_handler = signal.signal(signal.SIGALRM, self._expire)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.seconds is None:
            return False
        elapsed = time.monotonic() - self._start
        if self._use_signal:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous_handler)
        if elapsed > self.seconds:
            interrupted = (
                self._use_signal
                and exc_type is not None
                and issubclass(exc_type, TrialTimeoutError)
                and elapsed
                <= self.seconds * (1.0 + self._INTERRUPT_SLOP_FRACTION)
                + self._INTERRUPT_SLOP_SECONDS
            )
            self.last_overrun = {
                "budget_seconds": self.seconds,
                "elapsed_seconds": elapsed,
                "interrupted": interrupted,
                "mechanism": "signal" if self._use_signal else "posthoc",
            }
        if exc_type is None and elapsed > self.seconds:
            raise TrialTimeoutError(
                f"trial exceeded its {self.seconds:.6g}s deadline "
                "(detected post-hoc: signal interruption unavailable)"
            )
        return False
