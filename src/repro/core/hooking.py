"""Vectorized hooking / pointer-jumping primitives for connectivity kernels.

Afforest (GAP, Galois, NWGraph), Shiloach–Vishkin (GKC), and FastSV
(SuiteSparse) are all built from the same two moves — *hooking* (pointing a
component representative at a smaller label across an edge) and
*compression* (pointer jumping toward the root).  The frameworks differ in
which edges they hook, in what order, and how aggressively they compress;
those policies live in the framework packages, while the shared vectorized
moves live here.
"""

from __future__ import annotations

import numpy as np

from . import counters

__all__ = [
    "compress",
    "hook_pass",
    "converge",
    "majority_component",
]


def compress(comp: np.ndarray) -> None:
    """Full path compression: jump pointers until every label is a root."""
    while True:
        parents = comp[comp]
        if np.array_equal(parents, comp):
            return
        np.copyto(comp, parents)


def hook_pass(comp: np.ndarray, src: np.ndarray, dst: np.ndarray) -> bool:
    """One hooking sweep over an edge set; returns whether anything changed.

    For each edge, the larger of the two endpoint labels is pointed at the
    smaller (via the labels' current representatives), then one round of
    pointer jumping is applied.  Equivalent to the lock-free min-hooking in
    the C++ implementations.
    """
    counters.add_edges(src.size)
    if src.size == 0:
        return False
    cu = comp[src]
    cv = comp[dst]
    low = np.minimum(cu, cv)
    before = comp.copy()
    np.minimum.at(comp, cu, low)
    np.minimum.at(comp, cv, low)
    comp[:] = comp[comp]
    return not np.array_equal(before, comp)


def converge(comp: np.ndarray, src: np.ndarray, dst: np.ndarray) -> int:
    """Repeat hook passes + compression over an edge set until stable.

    Returns the number of passes taken.  On exit every connected component
    of the given edge set carries a single minimum label.
    """
    passes = 0
    while True:
        passes += 1
        counters.add_iteration()
        changed = hook_pass(comp, src, dst)
        compress(comp)
        if not changed:
            return passes


def majority_component(
    comp: np.ndarray, rng: np.random.Generator, num_samples: int = 1024
) -> int:
    """Sample labels to guess the largest component (Afforest's shortcut).

    Mirrors the sampling heuristic of Sutton et al.: look at a fixed number
    of random vertices and return the most frequent label among them.
    """
    if comp.size == 0:
        return 0
    samples = comp[rng.integers(0, comp.size, size=min(num_samples, comp.size))]
    labels, freq = np.unique(samples, return_counts=True)
    return int(labels[np.argmax(freq)])
