"""Batch planner: groups campaign cells into multi-cell dispatch units.

``BENCH_runner_scaling.json`` showed the parallel executor *losing* to
serial (0.41x at ``--jobs 2``): with one queue message per cell, dispatch
latency — pickle, queue wakeup, the supervisor's poll loop — was charged
to every cell, and the paper-scale cells are far too small to amortize
it.  The fix has two halves: warm worker pools (:mod:`repro.core.pool`)
amortize process spawn, and this module amortizes *dispatch* by handing
each worker a batch of cells per message.

The planner obeys three invariants, pinned by ``tests/test_batching.py``:

* **Exact partition** — concatenating the planned batches reproduces the
  input cell list, in order, with no cell duplicated or dropped.  Batches
  are contiguous runs of the canonical cell order, so results still
  assemble deterministically and journal resume maps 1:1 onto batches.
* **Timeout-sensitive cells ride alone** — a cell subject to a hard
  deadline (``spec.trial_timeout`` set) is never packed with neighbors:
  the parent's kill budget stays per-cell, and killing an over-budget
  worker can never destroy sibling cells that were merely queued behind
  the hung one.
* **Degrades to per-cell dispatch** — ``jobs <= 1`` (or an explicit
  ``batch_size=1``) plans singleton batches, reproducing the original
  one-message-per-cell behavior exactly.

Batch size is chosen by a cost model over *trial counts*: each cell's
cost is its planned trial count (``spec.num_trials``), and the planner
packs cells until a batch reaches the target cost — the total cost
divided over ``jobs * BATCHES_PER_WORKER`` batches.  Several batches per
worker keeps the tail short (a worker that drew fast cells picks up more
work) without paying per-cell dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..frameworks.base import Mode
from .spec import BenchmarkSpec

__all__ = ["BATCHES_PER_WORKER", "Cell", "plan_batches"]

#: Load-balancing granularity of the auto cost model: the planner aims for
#: this many batches per worker, so stragglers even out while dispatch
#: overhead stays ~1/batch_size of the per-cell scheme.
BATCHES_PER_WORKER = 4


@dataclass(frozen=True)
class Cell:
    """One schedulable unit: a (graph, mode, kernel, framework) cell.

    ``index`` is the cell's position in the canonical campaign order —
    the executors key their bookkeeping and final ResultSet assembly on
    it, so it must be unique and dense within one campaign.
    """

    index: int
    graph: str
    mode: Mode
    kernel: str
    framework: str

    @property
    def label(self) -> str:
        return f"{self.mode.value}/{self.graph}/{self.kernel}/{self.framework}"


def _default_sensitive(spec: BenchmarkSpec) -> Callable[[Cell], bool]:
    """Timeout sensitivity under the current spec.

    Today a trial deadline is campaign-wide, so every cell of a
    ``trial_timeout`` campaign is sensitive; the predicate is per-cell so
    a future per-kernel timeout only changes this function.
    """
    sensitive = spec.trial_timeout is not None
    return lambda cell: sensitive


def plan_batches(
    cells: Sequence[Cell],
    spec: BenchmarkSpec,
    jobs: int,
    batch_size: int | None = None,
    sensitive: Callable[[Cell], bool] | None = None,
) -> list[list[Cell]]:
    """Partition ``cells`` (in order) into dispatch batches.

    ``batch_size=None`` (the default) sizes batches by the trial-count
    cost model; an explicit value caps batches at that many cells
    (``1`` = per-cell dispatch).  ``sensitive`` overrides the
    timeout-sensitivity predicate (tests use this to mix sensitive and
    batchable cells in one plan).
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if sensitive is None:
        sensitive = _default_sensitive(spec)
    cells = list(cells)
    if not cells:
        return []

    if jobs <= 1 or batch_size == 1:
        return [[cell] for cell in cells]

    cost = lambda cell: max(1, spec.num_trials(cell.kernel))
    if batch_size is None:
        batchable_cost = sum(cost(c) for c in cells if not sensitive(c))
        target_batches = max(1, jobs * BATCHES_PER_WORKER)
        target_cost = max(1, -(-batchable_cost // target_batches))
    else:
        target_cost = None

    batches: list[list[Cell]] = []
    current: list[Cell] = []
    current_cost = 0

    def flush() -> None:
        nonlocal current, current_cost
        if current:
            batches.append(current)
            current, current_cost = [], 0

    for cell in cells:
        if sensitive(cell):
            # Hard-deadline cells are their own batch: the kill budget and
            # any worker kill stay scoped to exactly one cell.
            flush()
            batches.append([cell])
            continue
        current.append(cell)
        current_cost += cost(cell)
        if target_cost is not None:
            if current_cost >= target_cost:
                flush()
        elif len(current) >= batch_size:
            flush()
    flush()
    return batches
