"""Output verification for the six GAP kernels.

The paper's discussion section calls for "more formally specified
verification and validation procedures" for GAP; this module is that, for
the reproduction.  Each verifier checks a kernel's output against an
*independent* oracle (plain reference BFS, SciPy's compiled Dijkstra /
connected-components, the PageRank fixed-point equations, a sparse-matrix
triangle identity) and raises :class:`VerificationError` with a specific
message on the first violated rule.

BC has no cheap independent oracle at benchmark scale; its verifier checks
cross-framework agreement against the reference implementation (which the
test suite separately validates against exact results on small graphs).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..errors import VerificationError
from ..graphs import CSRGraph

__all__ = [
    "verify_bfs",
    "verify_sssp",
    "verify_cc",
    "verify_pr",
    "verify_bc",
    "verify_tc",
    "reference_bfs_depths",
]


def _to_scipy(graph: CSRGraph, weighted: bool) -> sp.csr_matrix:
    data = (
        graph.weights.astype(np.float64)
        if (weighted and graph.weights is not None)
        else np.ones(graph.num_edges)
    )
    return sp.csr_matrix(
        (data, graph.indices, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )


def reference_bfs_depths(graph: CSRGraph, source: int) -> np.ndarray:
    """Oracle BFS depths over out-edges (frontier sweep, no optimizations)."""
    n = graph.num_vertices
    depths = np.full(n, -1, dtype=np.int64)
    depths[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        chunks = [graph.indices[s:e] for s, e in zip(starts, ends) if e > s]
        if not chunks:
            break
        targets = np.unique(np.concatenate(chunks))
        fresh = targets[depths[targets] < 0]
        depths[fresh] = depth
        frontier = fresh
    return depths


def verify_bfs(graph: CSRGraph, source: int, parents: np.ndarray) -> None:
    """GAP BFS rules: valid parent tree covering exactly the reachable set."""
    depths = reference_bfs_depths(graph, source)
    if parents[source] != source:
        raise VerificationError("BFS: parent[source] must be source")
    reached = parents >= 0
    if not np.array_equal(reached, depths >= 0):
        raise VerificationError("BFS: reachable set mismatch with oracle")
    others = np.flatnonzero(reached)
    others = others[others != source]
    if others.size == 0:
        return
    parent_ids = parents[others]
    if not np.array_equal(depths[others], depths[parent_ids] + 1):
        raise VerificationError("BFS: parent not one level above child")
    # Every (parent, child) pair must be a real edge.
    adjacency = _to_scipy(graph, weighted=False)
    present = np.asarray(adjacency[parent_ids, others]).ravel()
    if not (present > 0).all():
        raise VerificationError("BFS: parent edge missing from graph")


def verify_sssp(graph: CSRGraph, source: int, dist: np.ndarray) -> None:
    """Distances must equal Dijkstra's exactly (integer weights)."""
    oracle = csgraph.dijkstra(_to_scipy(graph, weighted=True), indices=source)
    mismatched = ~np.isclose(dist, oracle, rtol=0, atol=1e-9)
    if mismatched.any():
        worst = int(np.flatnonzero(mismatched)[0])
        raise VerificationError(
            f"SSSP: distance mismatch at vertex {worst}: "
            f"{dist[worst]} vs oracle {oracle[worst]}"
        )


def verify_cc(graph: CSRGraph, labels: np.ndarray) -> None:
    """Labels must induce exactly the weak-connectivity partition."""
    _, oracle = csgraph.connected_components(
        _to_scipy(graph, weighted=False), directed=graph.directed, connection="weak"
    )
    # Same partition <=> the label pairs biject.
    seen: dict[tuple[int, int], None] = {}
    ours: dict[int, int] = {}
    theirs: dict[int, int] = {}
    for mine, ref in zip(labels.tolist(), oracle.tolist()):
        if ours.setdefault(mine, ref) != ref:
            raise VerificationError("CC: one label spans two oracle components")
        if theirs.setdefault(ref, mine) != mine:
            raise VerificationError("CC: one oracle component got two labels")
        seen[(mine, ref)] = None


def verify_pr(
    graph: CSRGraph,
    scores: np.ndarray,
    damping: float = 0.85,
    tolerance: float = 1e-4,
) -> None:
    """Scores must satisfy the PageRank equations to ~the run tolerance."""
    if not np.isfinite(scores).all():
        raise VerificationError("PR: non-finite score")
    if (scores < 0).any():
        raise VerificationError("PR: negative score")
    n = graph.num_vertices
    out_degrees = graph.out_degrees.astype(np.float64)
    safe = np.where(out_degrees > 0, out_degrees, 1.0)
    contrib = np.where(out_degrees > 0, scores / safe, 0.0)
    gathered = contrib[graph.in_indices]
    prefix = np.concatenate([[0.0], np.cumsum(gathered)])
    pulled = prefix[graph.in_indptr[1:]] - prefix[graph.in_indptr[:-1]]
    expected = (1.0 - damping) / n + damping * pulled
    residual = float(np.abs(expected - scores).sum())
    if residual > 20.0 * tolerance:
        raise VerificationError(
            f"PR: fixed-point residual {residual:.2e} exceeds bound"
        )


def verify_bc(
    reference_scores: np.ndarray, scores: np.ndarray, rtol: float = 1e-6
) -> None:
    """Cross-framework BC agreement (reference validated separately)."""
    magnitude = max(1.0, float(np.abs(reference_scores).max()))
    worst = float(np.abs(scores - reference_scores).max())
    if worst > rtol * magnitude:
        raise VerificationError(
            f"BC: max deviation {worst:.3e} from reference exceeds tolerance"
        )


def verify_tc(graph: CSRGraph, count: int) -> None:
    """Triangle count must equal trace(A^3)/6 on the undirected graph."""
    undirected = graph.to_undirected() if graph.directed else graph
    adjacency = _to_scipy(undirected, weighted=False)
    closed = (adjacency @ adjacency).multiply(adjacency)
    oracle = int(round(closed.sum() / 6.0))
    if count != oracle:
        raise VerificationError(f"TC: counted {count}, oracle says {oracle}")
