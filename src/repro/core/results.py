"""Result records for benchmark campaigns.

A campaign produces one :class:`RunResult` per (framework, kernel, graph,
mode) cell — the unit of Tables IV and V.  Each record carries per-trial
timings, the machine-independent work counters, and the verification
status, so the table renderers and EXPERIMENTS.md generator need nothing
else.

A cell that crashed or overran its deadline is still a record: ``status``
is ``"error"`` / ``"timeout"`` (with the exception in ``error``) instead
of ``"ok"``, and ``trial_seconds`` holds whatever trials completed.  A
cell that never ran because its (framework, kernel) circuit breaker was
open is ``"skipped"`` (see :mod:`repro.resilience.breaker`), with the
skip reason in ``error``.  The table renderers skip non-ok cells; the
failure table reports them.  ``attempts`` counts executions of the cell
(> 1 when the retry policy re-ran a transient failure).
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..frameworks.base import Mode

__all__ = ["RESULTS_SCHEMA_VERSION", "RunResult", "ResultSet"]

#: Version stamp of the results-file payload.  v1 was a bare list of cell
#: records; v2 wraps it in an envelope with ``schema_version`` and campaign
#: ``meta``.  ``load_json`` reads both.
RESULTS_SCHEMA_VERSION = 2


@dataclass
class RunResult:
    """Measured outcome of one benchmark cell."""

    framework: str
    kernel: str
    graph: str
    mode: Mode
    trial_seconds: list[float]
    verified: bool = True
    edges_examined: int = 0
    rounds: int = 0
    iterations: int = 0
    extras: dict[str, float] = field(default_factory=dict)
    status: str = "ok"
    error: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the cell ran to completion (status ``"ok"``)."""
        return self.status == "ok"

    @property
    def cell_key(self) -> tuple[str, str, str, str]:
        """Canonical cell identity: ``(graph, mode, kernel, framework)``.

        The campaign enumerates cells in this nesting order; serial and
        parallel executions of the same campaign produce result sets whose
        ``cell_key`` sequences are identical (the equivalence tests key on
        it).
        """
        return (self.graph, self.mode.value, self.kernel, self.framework)

    @property
    def seconds(self) -> float:
        """Average trial time — GAP's reported statistic (NaN if no trial)."""
        if not self.trial_seconds:
            return float("nan")
        return statistics.fmean(self.trial_seconds)

    @property
    def best_seconds(self) -> float:
        """Fastest trial (NaN if no trial completed)."""
        if not self.trial_seconds:
            return float("nan")
        return min(self.trial_seconds)

    @property
    def p50_seconds(self) -> float:
        """Median trial time."""
        from .telemetry import quantile

        return quantile(self.trial_seconds, 0.50)

    @property
    def p95_seconds(self) -> float:
        """95th-percentile trial time (interpolated)."""
        from .telemetry import quantile

        return quantile(self.trial_seconds, 0.95)

    @property
    def stddev_seconds(self) -> float:
        """Sample standard deviation across trials (0 for a single trial)."""
        if len(self.trial_seconds) < 2:
            return 0.0
        return statistics.stdev(self.trial_seconds)

    @property
    def variation(self) -> float:
        """Coefficient of variation (stddev / mean) across trials.

        The paper's discussion observes that "timings for algorithms on
        Road were more unstable compared to other cases"; this is the
        statistic that claim is checked with.
        """
        mean = self.seconds
        return self.stddev_seconds / mean if mean > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form of this record."""
        return {
            "framework": self.framework,
            "kernel": self.kernel,
            "graph": self.graph,
            "mode": self.mode.value,
            "trial_seconds": self.trial_seconds,
            "seconds": self.seconds if self.trial_seconds else None,
            "verified": self.verified,
            "edges_examined": self.edges_examined,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "extras": self.extras,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, item: dict[str, object]) -> "RunResult":
        """Rebuild a record from its :meth:`as_dict` form.

        The single deserialization path shared by results files and the
        checkpoint journal, so a journaled cell round-trips to the exact
        record an uninterrupted campaign would hold.
        """
        return cls(
            framework=item["framework"],
            kernel=item["kernel"],
            graph=item["graph"],
            mode=Mode(item["mode"]),
            trial_seconds=list(item["trial_seconds"]),
            verified=bool(item["verified"]),
            edges_examined=int(item["edges_examined"]),
            rounds=int(item["rounds"]),
            iterations=int(item["iterations"]),
            extras=dict(item["extras"]),
            status=str(item.get("status", "ok")),
            error=str(item.get("error", "")),
            attempts=int(item.get("attempts", 1)),
        )


class ResultSet:
    """A queryable collection of run results."""

    def __init__(
        self,
        results: list[RunResult] | None = None,
        meta: dict[str, object] | None = None,
    ) -> None:
        self.results: list[RunResult] = list(results or [])
        #: Campaign-level provenance (spec, graph/kernel/framework lists);
        #: filled by ``run_suite`` and preserved through save/load so an
        #: archived results file is self-describing.
        self.meta: dict[str, object] = dict(meta or {})

    def add(self, result: RunResult) -> None:
        """Append one result."""
        self.results.append(result)

    def extend(self, results: "ResultSet | list[RunResult]") -> None:
        """Append many results (from a list or another set)."""
        if isinstance(results, ResultSet):
            self.results.extend(results.results)
        else:
            self.results.extend(results)

    def lookup(
        self,
        framework: str | None = None,
        kernel: str | None = None,
        graph: str | None = None,
        mode: Mode | None = None,
    ) -> list[RunResult]:
        """All results matching the given filters."""
        out = []
        for result in self.results:
            if framework is not None and result.framework != framework:
                continue
            if kernel is not None and result.kernel != kernel:
                continue
            if graph is not None and result.graph != graph:
                continue
            if mode is not None and result.mode != mode:
                continue
            out.append(result)
        return out

    def one(self, framework: str, kernel: str, graph: str, mode: Mode) -> RunResult | None:
        """The unique matching result, or None."""
        matches = self.lookup(framework, kernel, graph, mode)
        return matches[0] if matches else None

    def failures(self) -> list[RunResult]:
        """All non-ok cells (errors, timeouts, skips), in run order."""
        return [result for result in self.results if not result.ok]

    def skipped(self) -> list[RunResult]:
        """Cells a circuit breaker converted to ``skipped``, in run order."""
        return [result for result in self.results if result.status == "skipped"]

    def frameworks(self) -> list[str]:
        """Framework names present, in first-seen order."""
        seen: dict[str, None] = {}
        for result in self.results:
            seen.setdefault(result.framework, None)
        return list(seen)

    def payload(self) -> dict[str, object]:
        """The versioned on-disk form: envelope + per-cell records.

        Per-trial times travel whole (``trial_seconds`` in each record) —
        the archive and the regression gate depend on them, aggregates
        alone cannot support a statistical comparison.
        """
        out: dict[str, object] = {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "results": [r.as_dict() for r in self.results],
        }
        if self.meta:
            out["meta"] = self.meta
        return out

    def save_json(self, path: str | Path) -> None:
        """Serialize all results to a JSON file.

        Atomic (temp file + ``os.replace``, the same discipline as
        :mod:`repro.graphs.cache`): a campaign killed mid-save leaves the
        previous file intact, never a torn one.
        """
        path = Path(path)
        parent = path.parent if str(path.parent) else Path(".")
        parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=parent, suffix=".json.tmp")
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w", encoding="ascii") as stream:
                json.dump(self.payload(), stream, indent=2)
                stream.write("\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load_json(cls, path: str | Path) -> "ResultSet":
        raw = json.loads(Path(path).read_text(encoding="ascii"))
        if isinstance(raw, dict):
            items = raw.get("results", [])
            meta = dict(raw.get("meta", {}))
        else:  # v1 legacy payload: a bare list of cell records
            items, meta = raw, {}
        return cls([RunResult.from_dict(item) for item in items], meta=meta)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)
