"""Benchmark-suite core: shared primitives, spec, runner, verification, tables.

Submodules:

* ``bitmap`` / ``nputil`` / ``hooking`` — shared vectorized primitives.
* ``counters`` — machine-independent work metrics.
* ``spec`` — the GAP benchmark rules (trials, sources, parameters).
* ``verify`` — per-kernel output verification oracles.
* ``telemetry`` — span tracing, JSONL sinks, per-trial deadlines.
* ``runner`` — executes kernels under the Baseline/Optimized rule sets.
* ``executor`` / ``pool`` / ``batching`` / ``sharedmem`` — parallel
  campaign execution: warm process pools over a shared-memory corpus
  (hard per-cell deadlines) or thread pools sharing the parent's
  corpus, with batched multi-cell dispatch.
* ``results`` / ``tables`` — result records and Table I–V renderers.
"""

from . import counters
from .batching import Cell, plan_batches
from .bitmap import Bitmap
from .executor import run_suite_parallel, run_suite_threads
from .pool import WorkerPool
from .results import ResultSet, RunResult
from .runner import GraphCase, build_case, run_cell, run_suite
from .spec import BenchmarkSpec, SourcePicker
from .sweeps import delta_sweep, direction_threshold_sweep, scale_sweep
from .telemetry import JsonlSink, Span, Telemetry, TrialDeadline, read_trace
from .workload import FrontierTrace, sparkline, trace_bfs

__all__ = [
    "BenchmarkSpec",
    "Bitmap",
    "Cell",
    "FrontierTrace",
    "GraphCase",
    "JsonlSink",
    "ResultSet",
    "RunResult",
    "SourcePicker",
    "Span",
    "Telemetry",
    "TrialDeadline",
    "WorkerPool",
    "build_case",
    "counters",
    "plan_batches",
    "delta_sweep",
    "direction_threshold_sweep",
    "read_trace",
    "run_cell",
    "run_suite",
    "run_suite_parallel",
    "run_suite_threads",
    "scale_sweep",
    "sparkline",
    "trace_bfs",
]
